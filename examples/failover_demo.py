#!/usr/bin/env python
"""Redundancy and failover (§3, §4.3) — experiment E7 as a story.

Two redundant navigation computers provide ``nav.compute``. Mission code
calls it every 200 ms. Mid-run the primary node dies without warning; the
middleware detects the silence via missed heartbeats, invalidates its cache
and redirects the calls to the redundant provider. "This allows the system
to continue its mission, although perhaps in a degraded mode."

Run:  python examples/failover_demo.py
"""

from repro import Service, SimRuntime
from repro.encoding.types import STRING
from repro.faults import FaultInjector


class NavService(Service):
    def __init__(self, name, tag):
        super().__init__(name)
        self.tag = tag

    def on_start(self):
        self.ctx.provide_function(
            "nav.compute", lambda: self.tag, params=[], result=STRING
        )


class MissionLoop(Service):
    def __init__(self):
        super().__init__("mission-loop")
        self.answers = []  # (time, provider-tag or error string)

    def on_start(self):
        self.ctx.every(0.2, self.tick)

    def tick(self):
        t = self.ctx.now()
        self.ctx.call(
            "nav.compute",
            on_result=lambda tag: self.answers.append((t, tag)),
            on_error=lambda exc: self.answers.append((t, f"ERROR {exc}")),
        )


def main():
    runtime = SimRuntime(seed=3)
    primary = runtime.add_container("nav-primary")
    backup = runtime.add_container("nav-backup")
    mission = runtime.add_container("mission")

    primary.install_service(NavService("nav-a", "primary"))
    backup.install_service(NavService("nav-b", "backup"))
    loop = MissionLoop()
    mission.install_service(loop)

    injector = FaultInjector(runtime)
    injector.crash_container(10.0, "nav-primary")  # hard crash, no BYE

    runtime.start()
    runtime.run_for(20.0)
    runtime.stop()

    crash_t = injector.log[0].time
    print(f"primary crashed at t={crash_t:.1f} s\n")
    print("  time   answered by")
    switched = None
    for t, tag in loop.answers:
        marker = ""
        if switched is None and tag == "backup" and t > crash_t:
            switched = t
            marker = "   <-- failover complete"
        if t < crash_t - 1 and loop.answers.index((t, tag)) % 8:
            continue  # thin out the boring steady state
        print(f"  {t:5.1f}  {tag}{marker}")

    errors = [a for a in loop.answers if str(a[1]).startswith("ERROR")]
    print(f"\ncalls: {len(loop.answers)}, failed: {len(errors)}")
    if switched:
        print(f"detection + redirect took {switched - crash_t:.2f} s "
              f"(liveness timeout is 1.0 s)")


if __name__ == "__main__":
    main()
