#!/usr/bin/env python
"""The paper's §5 application example (Figure 3): the image-processing mission.

Three nodes — flight computer, payload computer, ground station — run six
services. The Mission Control follows a survey flight plan, commands photos
at designated waypoints (events), the camera publishes them via multicast
file transfer to Storage and the FPGA-simulating Video Processing service,
and detections flow back to Mission Control and the Ground Station.

Run:  python examples/image_mission.py
"""

from repro import SimRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.services import (
    CameraService,
    GpsService,
    GroundStationService,
    MissionControlService,
    StorageService,
    VideoProcessingService,
)


def main():
    runtime = SimRuntime(seed=2026)

    # A 2-row survey over Castelldefels (the authors' campus), 3 photo
    # points per row. Waypoints 2 and 9 photograph "interesting" terrain.
    plan = survey_plan(
        GeoPoint(41.275, 1.985),
        rows=2,
        row_length_m=800,
        row_spacing_m=250,
        photos_per_row=3,
    )
    print(f"flight plan: {len(plan)} waypoints, "
          f"{len(plan.photo_waypoints)} photos, "
          f"{plan.total_length_m():.0f} m track")

    fcs = runtime.add_container("fcs")  # flight computer
    payload = runtime.add_container("payload")  # payload computer (FPGA here)
    ground = runtime.add_container("ground")  # ground station over the radio

    mission = MissionControlService(plan, detection_threshold=0.3)
    camera = CameraService(
        default_features=0,
        features_at={plan.photo_waypoints[0]: 4, plan.photo_waypoints[-1]: 6},
    )
    storage = StorageService()
    video = VideoProcessingService()
    station = GroundStationService()

    fcs.install_service(GpsService(KinematicUav(plan)))
    fcs.install_service(mission)
    payload.install_service(camera)
    payload.install_service(storage)
    payload.install_service(video)
    ground.install_service(station)

    runtime.start()
    completed = runtime.run_until(lambda: mission.complete, timeout=600.0)
    runtime.run_for(5.0)  # let the tail of the pipeline drain
    runtime.stop()

    print(f"\nmission {'completed' if completed else 'DID NOT complete'} "
          f"at t={runtime.sim.now():.1f} s (virtual)")
    print(f"photos taken: {camera.photos_taken}")
    print(f"stored objects: {storage.stored_names()}")
    print(f"frames processed: {video.frames_processed}, "
          f"detections: {video.detections}")
    print(f"position samples logged: "
          f"{len(storage.variable_log('gps.position'))}")

    stats = runtime.network.stats.snapshot()
    print(f"\nwire: {stats['emissions']} emissions / "
          f"{stats['emitted_bytes']} B emitted, "
          f"{stats['deliveries']} deliveries")

    print("\n=== ground station terminal (last 20 lines) ===")
    for t, line in station.terminal()[-20:]:
        print(f"{t:7.2f}  {line}")


if __name__ == "__main__":
    main()
