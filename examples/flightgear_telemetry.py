#!/usr/bin/env python
"""The §6 FlightGear integration, reproduced (experiment E9).

The paper highlights that "the telemetry interface with FlightGear simulator
has been done by a person without previous knowledge of the architecture in
only 2 days" — the integration touches nothing but the public service API.
This example runs the bridge against a simulated flight and prints the
generic-protocol frames a FlightGear ``--generic=socket,in,...`` endpoint
would consume.

Run:  python examples/flightgear_telemetry.py
"""

from repro import SimRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.services import GpsService
from repro.telemetry import InMemoryTelemetrySink, TelemetryService
from repro.telemetry.generic import FLIGHTGEAR_POSITION_PROTOCOL


def main():
    runtime = SimRuntime(seed=11)
    plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)

    fcs = runtime.add_container("fcs")
    gcs = runtime.add_container("gcs")

    fcs.install_service(GpsService(KinematicUav(plan), rate_hz=10.0))
    sink = InMemoryTelemetrySink()
    bridge = TelemetryService(sink, max_rate_hz=4.0)
    gcs.install_service(bridge)

    runtime.start()
    runtime.run_for(20.0)
    runtime.stop()

    print(f"{bridge.frames_sent} telemetry frames emitted "
          f"(GPS at 10 Hz, feed throttled to 4 Hz)\n")
    print("last 8 frames on the FlightGear feed:")
    for frame in sink.frames[-8:]:
        print(" ", frame.decode().strip())
    decoded = FLIGHTGEAR_POSITION_PROTOCOL.decode(sink.frames[-1])
    print("\ndecoded:", decoded)


if __name__ == "__main__":
    main()
