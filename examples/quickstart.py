#!/usr/bin/env python
"""Quickstart: two services on two nodes, all four primitives in ~80 lines.

A sensor node publishes a temperature *variable* and raises an *event* when
it crosses a limit; a monitor node reads it, calls a *remote function* to
reset the sensor, and receives the calibration table as a *file*.

Run:  python examples/quickstart.py
"""

from repro import Service, SimRuntime
from repro.encoding.schema import parse_type
from repro.encoding.types import BOOL, FLOAT64

TEMPERATURE = parse_type("struct Temperature { float64 celsius; uint32 sample; }")


class SensorService(Service):
    """Publishes temperature, raises an over-limit alarm, exposes reset()."""

    def __init__(self):
        super().__init__("sensor")
        self.sample = 0

    def on_start(self):
        self.temperature = self.ctx.provide_variable(
            "sensor.temperature", TEMPERATURE, validity=2.0, period=0.5
        )
        self.alarm = self.ctx.provide_event("sensor.overheat", FLOAT64)
        self.ctx.provide_function("sensor.reset", self.reset, params=[], result=BOOL)
        self.ctx.publish_file(
            "sensor.calibration", b"offset=0.15\ngain=1.002\n"
        )
        self.ctx.every(0.5, self.measure)

    def measure(self):
        self.sample += 1
        celsius = 20.0 + self.sample * 1.5  # steadily heating up
        self.temperature.publish({"celsius": celsius, "sample": self.sample})
        if celsius > 45.0:
            self.alarm.raise_event(celsius)

    def reset(self) -> bool:
        self.ctx.log(f"reset after {self.sample} samples")
        self.sample = 0
        return True


class MonitorService(Service):
    """Watches the temperature and reacts to the alarm."""

    def __init__(self):
        super().__init__("monitor")

    def on_start(self):
        self.ctx.subscribe_variable("sensor.temperature", self.on_temperature)
        self.ctx.subscribe_event("sensor.overheat", self.on_alarm)
        self.ctx.subscribe_file("sensor.calibration", self.on_calibration)

    def on_temperature(self, value, timestamp):
        self.ctx.log(f"T = {value['celsius']:.1f} °C (sample {value['sample']})")

    def on_alarm(self, celsius, timestamp):
        self.ctx.log(f"ALARM at {celsius:.1f} °C — calling sensor.reset()")
        self.ctx.call(
            "sensor.reset",
            on_result=lambda ok: self.ctx.log(f"reset acknowledged: {ok}"),
        )

    def on_calibration(self, data, revision):
        self.ctx.log(f"calibration file rev {revision}: {data.decode().strip()!r}")


def main():
    runtime = SimRuntime(seed=1)
    sensor_node = runtime.add_container("sensor-node")
    monitor_node = runtime.add_container("monitor-node")
    sensor = SensorService()
    monitor = MonitorService()
    sensor_node.install_service(sensor)
    monitor_node.install_service(monitor)

    runtime.start()
    runtime.run_for(15.0)  # fifteen virtual seconds
    runtime.stop()

    print("=== monitor log ===")
    for t, line in monitor.ctx.log_lines:
        print(f"{t:6.2f}  {line}")
    print("=== sensor log ===")
    for t, line in sensor.ctx.log_lines:
        print(f"{t:6.2f}  {line}")


if __name__ == "__main__":
    main()
