#!/usr/bin/env python
"""Code upload and hot upgrade — the §4.4 deployment use case.

"This continuous media includes generated photography images, configuration
files or services program code to be uploaded to the service containers."

The ground station uploads a new payload service to the flying UAV through
the multicast file primitive, then replaces it mid-flight with revision 2 —
no restart, no reconfiguration beyond the upload itself.

Run:  python examples/code_upload.py
"""

from repro import SimRuntime
from repro.services import DeploymentService, Service
from repro.services.deploy import deployment_resource

SPECTROMETER_V1 = b'''
from repro.services import Service
from repro.encoding.schema import parse_type

READING = parse_type("struct Reading { float64 ppm; uint32 sample; }")

class Spectrometer(Service):
    """Rev 1: raw methane readings at 1 Hz."""
    def __init__(self):
        super().__init__("spectrometer")
        self.sample = 0
    def on_start(self):
        self.reading = self.ctx.provide_variable(
            "spectrometer.methane", READING, validity=3.0, period=1.0)
        self.ctx.every(1.0, self.measure)
    def measure(self):
        self.sample += 1
        self.reading.publish({"ppm": 1.9 + 0.01 * self.sample,
                              "sample": self.sample})

def create_service():
    return Spectrometer()
'''

# Revision 2 adds an alarm event — new functionality, uploaded in flight.
SPECTROMETER_V2 = b'''
from repro.services import Service
from repro.encoding.schema import parse_type
from repro.encoding.types import FLOAT64

READING = parse_type("struct Reading { float64 ppm; uint32 sample; }")

class Spectrometer(Service):
    """Rev 2: readings plus a threshold alarm."""
    def __init__(self):
        super().__init__("spectrometer")
        self.sample = 0
    def on_start(self):
        self.reading = self.ctx.provide_variable(
            "spectrometer.methane", READING, validity=3.0, period=1.0)
        self.alarm = self.ctx.provide_event("spectrometer.alarm", FLOAT64)
        self.ctx.every(1.0, self.measure)
    def measure(self):
        self.sample += 1
        ppm = 2.2 + 0.05 * self.sample
        self.reading.publish({"ppm": ppm, "sample": self.sample})
        if ppm > 2.5:
            self.alarm.raise_event(ppm)

def create_service():
    return Spectrometer()
'''


class OperatorConsole(Service):
    def __init__(self):
        super().__init__("console")
        self.readings = 0

    def on_start(self):
        self.ctx.subscribe_variable(
            "spectrometer.methane",
            on_sample=lambda v, t: self._show(v),
        )
        self.ctx.subscribe_event(
            "spectrometer.alarm",
            lambda ppm, t: self.ctx.log(f"ALARM methane at {ppm:.2f} ppm"),
        )

    def _show(self, value):
        self.readings += 1
        if value["sample"] % 5 == 0:
            self.ctx.log(f"CH4 {value['ppm']:.2f} ppm (sample {value['sample']})")


def main():
    runtime = SimRuntime(seed=8)
    uav = runtime.add_container("uav")
    ground = runtime.add_container("ground")

    uav.install_service(DeploymentService())
    console = OperatorConsole()
    ground.install_service(console)

    class Uploader(Service):
        def __init__(self):
            super().__init__("uploader")

    uploader = Uploader()
    ground.install_service(uploader)

    runtime.start()
    runtime.run_for(3.0)

    print("uploading spectrometer rev 1 ...")
    uploader.ctx.publish_file(deployment_resource("uav"), SPECTROMETER_V1)
    runtime.run_for(12.0)

    print("uploading spectrometer rev 2 (adds the alarm) ...")
    uploader.ctx.publish_file(deployment_resource("uav"), SPECTROMETER_V2)
    runtime.run_for(12.0)
    runtime.stop()

    print(f"\nconsole received {console.readings} readings\n")
    print("=== operator console ===")
    for t, line in console.ctx.log_lines:
        print(f"{t:6.1f}  {line}")
    print("\nuav services:", [f"{r.name}({r.state.value})" for r in uav.services()])


if __name__ == "__main__":
    main()
