#!/usr/bin/env python
"""Wildfire patrol — a second civil mission (§7: "more civil UAV
applications to verify the characteristics of the provided communication
tools").

A UAV loiters over a ridge line with a thermal camera. The patrol service
commands a frame every few seconds (events); frames stream to the ground
over the multicast file primitive as *revisions of one resource* (the §4.4
revision mechanism); a hotspot detector raises alarms; the ground station
can retask the patrol by remote invocation mid-flight.

Everything here is written against the public API only — no middleware
internals — which is the §6 productivity claim in action.

Run:  python examples/wildfire_patrol.py
"""


from repro import Service, SimRuntime
from repro.encoding.schema import parse_type
from repro.encoding.types import BOOL, FLOAT64
from repro.flight import FlightPlan, GeoPoint, KinematicUav, Waypoint, destination_point
from repro.imaging import decode_pgm, detect_features, encode_pgm, generate_image
from repro.services import GpsService

HOTSPOT = parse_type(
    "struct Hotspot { uint32 frame; uint32 count; float64 score; }"
)


def loiter_plan(center: GeoPoint, radius_m: float = 400.0, points: int = 8) -> FlightPlan:
    """A circular loiter approximated by waypoints."""
    waypoints = [
        Waypoint(destination_point(center, i * 360.0 / points, radius_m),
                 capture_radius_m=40.0, name=f"loiter{i}")
        for i in range(points)
    ]
    # Repeat the circle a few times.
    return FlightPlan(waypoints=waypoints * 3, name="loiter")


class ThermalCameraService(Service):
    """Publishes thermal frames as revisions of one file resource."""

    def __init__(self, fire_after_frame: int = 4):
        super().__init__("thermal")
        self.fire_after_frame = fire_after_frame
        self.frames = 0

    def on_start(self):
        self.ctx.acquire_device("thermal0")
        self.ctx.subscribe_event("patrol.frame_request", self._snap)

    def on_stop(self):
        self.ctx.release_device("thermal0")

    def _snap(self, _value, _timestamp):
        self.frames += 1
        # A fire ignites mid-patrol: later frames grow hot spots.
        hotspots = 3 if self.frames >= self.fire_after_frame else 0
        image = generate_image(seed=self.frames, width=96, height=96,
                               features=hotspots, feature_intensity=190.0)
        # One resource, rising revision — §4.4 revision semantics.
        self.ctx.publish_file("thermal.frame", encode_pgm(image))
        self.ctx.log(f"frame {self.frames} published ({hotspots} hot spots)")


class HotspotDetectorService(Service):
    """Watches the thermal stream; raises an alarm event per hot frame."""

    def __init__(self):
        super().__init__("hotspot")
        self.alarms = 0

    def on_start(self):
        self.alarm = self.ctx.provide_event("hotspot.alarm", HOTSPOT)
        self.ctx.subscribe_file("thermal.frame", self._analyze)

    def _analyze(self, data, revision):
        result = detect_features(decode_pgm(data))
        if result.feature_count > 0:
            self.alarms += 1
            self.alarm.raise_event(
                {"frame": revision, "count": result.feature_count,
                 "score": result.score}
            )
            self.ctx.log(f"ALARM frame {revision}: {result.feature_count} hot spots")


class PatrolService(Service):
    """Commands frames on a timer; retaskable via remote invocation."""

    def __init__(self, frame_period: float = 5.0):
        super().__init__("patrol")
        self.frame_period = frame_period
        self._ticker = None

    def on_start(self):
        self.frame_request = self.ctx.provide_event("patrol.frame_request")
        self.ctx.provide_function(
            "patrol.set_rate", self._set_rate, params=[FLOAT64], result=BOOL
        )
        self._arm()

    def _arm(self):
        if self._ticker is not None:
            self._ticker.cancel()
        self._ticker = self.ctx.every(
            self.frame_period, lambda: self.frame_request.raise_event(None)
        )

    def _set_rate(self, period: float) -> bool:
        if period <= 0:
            return False
        self.frame_period = period
        self._arm()
        self.ctx.log(f"retasked: one frame every {period:.1f} s")
        return True


class FireWatchGround(Service):
    """Ground side: on the first alarm, retask the patrol to a fast rate."""

    def __init__(self):
        super().__init__("firewatch")
        self.alarms = []
        self.retasked = False

    def on_start(self):
        self.ctx.subscribe_event("hotspot.alarm", self._on_alarm)

    def _on_alarm(self, payload, _timestamp):
        self.alarms.append(payload)
        self.ctx.log(
            f"alarm: frame {payload['frame']} with {payload['count']} hot spots"
        )
        if not self.retasked:
            self.retasked = True
            self.ctx.call("patrol.set_rate", (1.0,),
                          on_result=lambda ok: self.ctx.log("patrol retasked to 1 Hz"))


def main():
    runtime = SimRuntime(seed=5)
    ridge = GeoPoint(41.32, 1.95, 500.0)
    plan = loiter_plan(ridge)

    uav = runtime.add_container("uav")
    ground = runtime.add_container("ground")

    uav.install_service(GpsService(KinematicUav(plan, cruise_speed=22.0)))
    patrol = PatrolService(frame_period=5.0)
    thermal = ThermalCameraService(fire_after_frame=4)
    uav.install_service(patrol)
    uav.install_service(thermal)
    detector = HotspotDetectorService()
    uav.install_service(detector)
    watch = FireWatchGround()
    ground.install_service(watch)

    runtime.start()
    runtime.run_for(60.0)
    runtime.stop()

    print(f"frames captured: {thermal.frames}")
    print(f"alarms raised:   {detector.alarms}")
    print(f"ground alarms:   {len(watch.alarms)} (retasked: {watch.retasked})")
    print(f"final frame period: {patrol.frame_period:.1f} s\n")
    print("=== firewatch terminal ===")
    for t, line in watch.ctx.log_lines[:10]:
        print(f"{t:6.1f}  {line}")


if __name__ == "__main__":
    main()
