#!/usr/bin/env python
"""The threaded runtime: same services, real UDP sockets, wall-clock time.

Everything in the other examples runs on the deterministic simulator; this
one swaps the PEPt Transport plug-in for loopback UDP sockets and the
virtual clock for real threads — the configuration the paper's C# prototype
actually ran in. Runs for ~4 wall seconds.

Run:  python examples/realtime_udp.py
"""

import time

from repro import ThreadedRuntime
from repro.flight import GeoPoint, KinematicUav, survey_plan
from repro.services import GpsService, GroundStationService

FAST_DISCOVERY = dict(
    announce_interval=0.2,
    heartbeat_interval=0.05,
    liveness_timeout=0.5,
    housekeeping_interval=0.1,
)


def main():
    runtime = ThreadedRuntime()
    plan = survey_plan(GeoPoint(41.275, 1.985), rows=1, photos_per_row=0)

    fcs = runtime.add_container("fcs", **FAST_DISCOVERY)
    ground = runtime.add_container("ground", **FAST_DISCOVERY)

    gps = GpsService(KinematicUav(plan), rate_hz=20.0)
    station = GroundStationService(position_print_period=0.5)
    fcs.install_service(gps)
    ground.install_service(station)

    print("running on real UDP sockets for 4 seconds...")
    started = time.monotonic()
    runtime.start()
    runtime.run_for(4.0)
    received = runtime.on_reactor(lambda: station.positions_received)
    last = runtime.on_reactor(lambda: dict(station.last_position or {}))
    terminal = runtime.on_reactor(lambda: list(station.terminal()))
    runtime.stop()
    elapsed = time.monotonic() - started

    print(f"\n{received} position samples crossed the wire "
          f"in {elapsed:.1f} s (20 Hz GPS)")
    print(f"last fix: lat={last.get('lat', 0):.5f} lon={last.get('lon', 0):.5f}")
    print("\nground station terminal:")
    for t, line in terminal[-8:]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
