#!/usr/bin/env python
"""Supervised restart, escalation and chaos — the robustness story.

Act 1: a flaky sensor service crashes twice; its container's supervisor
heals it each time after an exponential backoff, and the domain barely
notices.

Act 2: the sensor breaks permanently (every restart attempt fails). The
supervisor exhausts its restart budget, escalates — permanent FAILED,
emergency procedure, announced to the domain — and the mission continues
on the redundant sensor.

Act 3: a seeded ChaosCampaign throws crash storms, a container outage,
link flaps and a rolling partition at the same domain, and the
InvariantChecker confirms the §3 contracts held throughout.

Run:  python examples/supervision_demo.py
"""

from repro import RestartPolicy, Service, SimRuntime
from repro.encoding.types import FLOAT64, StructType
from repro.faults import ChaosCampaign, ChaosProfile, FaultInjector, InvariantChecker

SAMPLE = StructType("Sample", [("value", FLOAT64), ("t", FLOAT64)])


class Sensor(Service):
    def __init__(self, name, value):
        super().__init__(name)
        self.value = value
        self.broken = False

    def on_start(self):
        if self.broken:
            raise RuntimeError("sensor hardware fault")
        handle = self.ctx.provide_variable(
            "air.temperature", SAMPLE, validity=2.0, period=0.5
        )
        self.ctx.every(
            0.5, lambda: handle.publish({"value": self.value, "t": self.ctx.now()})
        )


class Monitor(Service):
    def __init__(self):
        super().__init__("monitor")
        self.samples = 0

    def on_start(self):
        self.ctx.subscribe_variable(
            "air.temperature", on_sample=self._on_sample,
            on_timeout=lambda name: print(
                f"  [{self.ctx.now():6.2f}s] monitor: {name} went quiet!"
            ),
        )

    def _on_sample(self, value, t):
        self.samples += 1


def build(seed=4):
    runtime = SimRuntime(seed=seed)
    policy = RestartPolicy(
        mode="on-failure", backoff_initial=0.5, backoff_factor=2.0,
        jitter=0.1, max_restarts=3, restart_window=30.0,
    )
    main = runtime.add_container("sensors-main", restart_policy=policy)
    spare = runtime.add_container("sensors-spare")
    ground = runtime.add_container("ground")
    flaky = Sensor("temp-main", 21.5)
    main.install_service(flaky)
    spare.install_service(Sensor("temp-spare", 21.7))
    monitor = Monitor()
    ground.install_service(monitor)
    return runtime, main, flaky, monitor


def act1():
    print("== Act 1: transient crashes are healed by the supervisor ==")
    runtime, main, flaky, monitor = build()
    injector = FaultInjector(runtime)
    injector.crash_service(4.0, "sensors-main", "temp-main")
    injector.crash_service(9.0, "sensors-main", "temp-main")
    runtime.start()
    runtime.run_for(15.0)
    stats = main.supervisor.stats
    print(f"  crashes injected : 2")
    print(f"  restarts         : {stats.count('restarts_succeeded')} succeeded "
          f"/ {main.supervisor.restarts_attempted} attempted")
    print(f"  backoff delays   : "
          f"{[round(d, 2) for d in stats.series('backoff_delay')]}")
    print(f"  recovery times   : "
          f"{[round(d, 2) for d in stats.series('recovery_time')]}")
    print(f"  state now        : {main.service_state('temp-main').value}")
    print(f"  samples at ground: {monitor.samples}\n")


def act2():
    print("== Act 2: a permanent fault exhausts the budget and escalates ==")
    runtime, main, flaky, monitor = build()

    def break_it():
        flaky.broken = True
        main.service_failed("temp-main", "hardware fault")

    runtime.sim.schedule(4.0, break_it)
    runtime.start()
    runtime.run_for(20.0)
    record = main.service_record("temp-main")
    print(f"  restart attempts : {main.supervisor.restarts_attempted}")
    print(f"  escalated        : {record.escalated} "
          f"(state {record.state.value})")
    print(f"  emergencies      : {main.emergencies}")
    peers = runtime.container("ground").directory.record("sensors-main")
    print(f"  announced failed : {peers.failed_services}")
    print(f"  samples at ground: {monitor.samples} "
          f"(spare sensor kept publishing)\n")


def act3():
    print("== Act 3: seeded chaos campaign + invariant checker ==")
    runtime, main, flaky, monitor = build()
    campaign = ChaosCampaign(
        runtime,
        profile=ChaosProfile(start=2.0, duration=12.0, crash_storms=2,
                             container_crashes=1, link_flaps=2, partitions=1),
        protected=("ground",),
    )
    checker = InvariantChecker(runtime)
    runtime.start()
    campaign.schedule()
    for line in campaign.plan:
        print(f"  plan: {line}")
    campaign.run(settle=8.0)
    violations = checker.check()
    print(f"  faults fired     : {len(campaign.injector.log)}")
    print(f"  transitions seen : {len(checker.transitions)}")
    print(f"  violations       : {violations or 'none'}")
    print(f"  samples at ground: {monitor.samples}")


if __name__ == "__main__":
    act1()
    act2()
    act3()
