"""The four communication primitives (§4).

- :mod:`repro.primitives.variables` — best-effort multicast samples with
  validity QoS and guaranteed initial value (§4.1);
- :mod:`repro.primitives.events` — guaranteed-delivery publish/subscribe
  (§4.2);
- :mod:`repro.primitives.invocation` — remote invocation with redundancy,
  load balancing and failover (§4.3);
- :mod:`repro.primitives.filetransfer` — MFTP-style multicast file
  transmission with announce/transfer/completion phases (§4.4).

Each manager is owned by a :class:`~repro.container.ServiceContainer`;
services reach them through :class:`repro.services.ServiceContext`.
"""

from repro.primitives.events import EventManager, EventPublication, EventSubscription
from repro.primitives.filetransfer import FileTransferManager, FileResource
from repro.primitives.invocation import CallHandle, InvocationManager
from repro.primitives.variables import (
    VariableManager,
    VariablePublication,
    VariableSubscription,
)

__all__ = [
    "VariableManager",
    "VariablePublication",
    "VariableSubscription",
    "EventManager",
    "EventPublication",
    "EventSubscription",
    "InvocationManager",
    "CallHandle",
    "FileTransferManager",
    "FileResource",
]
