"""The Variable primitive (§4.1).

Best-effort transmission of structured samples over multicast. Properties
reproduced from the paper:

- publication/subscription by name, locations resolved by the container;
- loss tolerance: samples ride unreliable multicast, subscribers must cope;
- **validity QoS**: "the subscribed services can receive previous values as
  long as they are still valid" — :meth:`VariableSubscription.latest`
  returns the cached sample until its validity window closes;
- **timeout warning**: "the service container will warn of this timeout
  circumstance to the affected services" — ``on_timeout`` fires after
  ``variable_timeout_periods`` nominal periods without a sample;
- **guaranteed initial value**: "the middleware has a mechanism that
  guarantees an initial exact value for the services that need it" — a
  unicast request/response retried until the first sample arrives;
- same-node fast path: local subscribers are served directly, the multicast
  emission still feeds remote ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.encoding.schema import parse_type
from repro.encoding.types import DataType
from repro.primitives import wire
from repro.primitives.host import PrimitiveHost
from repro.protocol.frames import Frame, MessageKind
from repro.simnet.addressing import variable_group
from repro.util.errors import ConfigurationError

OnSample = Callable[[Any, float], None]  # (value, publisher timestamp)
OnTimeout = Callable[[str], None]  # (variable name)


def _changed_substantially(old: Any, new: Any, deadband: float) -> bool:
    """True when ``new`` differs from ``old`` beyond the numeric deadband.

    Numeric leaves compare with ``abs(new - old) > deadband``; anything
    else (strings, bools, tags, shape changes) counts as changed on any
    inequality.
    """
    if isinstance(old, bool) or isinstance(new, bool):
        return old != new
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        return abs(new - old) > deadband
    if isinstance(old, dict) and isinstance(new, dict):
        if old.keys() != new.keys():
            return True
        return any(
            _changed_substantially(old[k], new[k], deadband) for k in old
        )
    if isinstance(old, (list, tuple)) and isinstance(new, (list, tuple)):
        if len(old) != len(new):
            return True
        return any(
            _changed_substantially(a, b, deadband) for a, b in zip(old, new)
        )
    return old != new


@dataclass
class VariablePublication:
    """Publisher-side handle returned by :meth:`VariableManager.provide`."""

    name: str
    datatype: DataType
    validity: float
    period: float
    service: str
    _manager: "VariableManager" = field(repr=False, default=None)
    last_value: Any = None
    last_timestamp: float = 0.0
    published_samples: int = 0

    def publish(self, value: Any) -> None:
        """Send one sample to every subscriber, local and remote."""
        self._manager._publish(self, value)

    def publish_on_change(self, value: Any, deadband: float = 0.0) -> bool:
        """Publish only on a *substantial change* (§4.1).

        With ``deadband == 0`` any inequality counts. A positive deadband
        applies to every numeric leaf of the value (recursively through
        structs/vectors): the sample is suppressed unless at least one
        numeric field moved by more than ``deadband``, or any non-numeric
        field changed at all. Returns whether a sample went out.

        The very first value always publishes.
        """
        if self.published_samples > 0 and not _changed_substantially(
            self.last_value, value, deadband
        ):
            return False
        self._manager._publish(self, value)
        return True

    def withdraw(self) -> None:
        self._manager.withdraw(self.name)


@dataclass
class VariableSubscription:
    """Subscriber-side handle returned by :meth:`VariableManager.subscribe`."""

    name: str
    on_sample: Optional[OnSample]
    on_timeout: Optional[OnTimeout]
    service: str
    _manager: "VariableManager" = field(repr=False, default=None)
    last_value: Any = None
    last_timestamp: float = 0.0  # publisher clock
    last_arrival: float = -1.0  # local clock; <0 = never
    received_samples: int = 0
    timeout_warnings: int = 0
    last_warning_at: float = -1.0
    got_initial: bool = False
    active: bool = True

    def latest(self) -> Optional[Any]:
        """The most recent sample, or None once it outlives its validity."""
        return self._manager._latest(self)

    def cancel(self) -> None:
        self._manager.unsubscribe(self)


class VariableManager:
    """Owns both sides of the variable primitive for one container."""

    def __init__(self, host: PrimitiveHost):
        self._host = host
        self._publications: Dict[str, VariablePublication] = {}
        self._subscriptions: Dict[str, List[VariableSubscription]] = {}
        self._timeout_timers: Dict[str, object] = {}
        self._initial_timers: Dict[str, object] = {}
        # Hot-path instruments, resolved once (registry lookups per sample
        # show up at high rates).
        self._publishes_counter = host.metrics.counter("var_publishes")
        self._deliveries_counter = host.metrics.counter("var_deliveries")
        # (name, provider) -> resolved DataType for the rx path; valid only
        # while the directory revision is unchanged and no local publication
        # has been (re)provided or withdrawn since.
        self._datatype_cache: Dict[tuple, DataType] = {}
        self._datatype_cache_rev = -1

    # -- publisher side -----------------------------------------------------
    def provide(
        self,
        name: str,
        datatype: DataType,
        validity: float = 0.0,
        period: float = 0.0,
        service: str = "",
    ) -> VariablePublication:
        """Announce a variable this node will publish."""
        if name in self._publications:
            raise ConfigurationError(f"variable {name!r} already provided here")
        publication = VariablePublication(
            name=name,
            datatype=datatype,
            validity=validity,
            period=period,
            service=service,
            _manager=self,
        )
        self._publications[name] = publication
        self._datatype_cache.clear()
        self._host.announce_soon()
        return publication

    def withdraw(self, name: str) -> None:
        if self._publications.pop(name, None) is not None:
            self._datatype_cache.clear()
            self._host.announce_soon()

    def withdraw_service(self, service: str) -> None:
        """Drop every publication owned by a stopped/failed service."""
        for name in [n for n, p in self._publications.items() if p.service == service]:
            del self._publications[name]
        self._datatype_cache.clear()
        self._host.announce_soon()

    def offers(self) -> List[dict]:
        """VarOffer documents for the container announce."""
        return [
            {
                "name": p.name,
                "datatype": p.datatype.describe(),
                "validity": p.validity,
                "period": p.period,
            }
            for p in sorted(self._publications.values(), key=lambda p: p.name)
        ]

    def _publish(self, publication: VariablePublication, value: Any) -> None:
        tracer = self._host.tracer
        now = self._host.clock.now()
        sanitizer = self._host.payload_sanitizer
        if sanitizer.enabled:
            # Aliasing guard: checkpoint the previous sample and (in freeze
            # mode) swap in a frozen copy for the cache and local delivery.
            value = sanitizer.on_publish("var", publication.name, value)
        publication.last_value = value
        publication.last_timestamp = now
        publication.published_samples += 1
        self._publishes_counter.inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "var.publish", publication.name, attrs={"timestamp": now}
            )
        if tracer.enabled:
            span = tracer.start_span(f"var:{publication.name}", "var.publish")
            context = tracer.context_of(span)
        else:
            span = context = None  # skip span-name formatting on the hot path
        encoded_value = self._host.codec.encode(publication.datatype, value)
        payload = wire.encode(
            wire.VAR_SAMPLE_SCHEMA,
            {"name": publication.name, "timestamp": now, "value": encoded_value},
            trace=context,
        )
        with tracer.activate(context):
            # Local subscribers: direct delivery, no network round trip.
            for sub in self._subscriptions.get(publication.name, []):
                self._deliver_local(sub, value, now)
            # Remote subscribers: one multicast emission for all of them.
            self._host.send_group(
                variable_group(publication.name),
                Frame(
                    kind=MessageKind.VAR_SAMPLE,
                    source=self._host.id,
                    payload=payload,
                ),
            )
        tracer.finish(span)

    # -- subscriber side ----------------------------------------------------
    def subscribe(
        self,
        name: str,
        on_sample: Optional[OnSample] = None,
        on_timeout: Optional[OnTimeout] = None,
        initial: bool = False,
        service: str = "",
    ) -> VariableSubscription:
        """Subscribe to a variable by name.

        ``initial=True`` requests the guaranteed initial exact value: the
        manager polls the provider until either a response or a live sample
        arrives.
        """
        subscription = VariableSubscription(
            name=name,
            on_sample=on_sample,
            on_timeout=on_timeout,
            service=service,
            _manager=self,
        )
        self._subscriptions.setdefault(name, []).append(subscription)
        self._host.join_group(variable_group(name))
        # Serve the initial value locally when we are the publisher.
        local = self._publications.get(name)
        if local is not None and local.published_samples > 0:
            subscription.got_initial = True
            self._deliver_local(subscription, local.last_value, local.last_timestamp)
        elif initial:
            self._request_initial(subscription)
        self._arm_timeout_watch(name)
        return subscription

    def unsubscribe(self, subscription: VariableSubscription) -> None:
        subscription.active = False
        subs = self._subscriptions.get(subscription.name, [])
        if subscription in subs:
            subs.remove(subscription)
        if not subs:
            self._subscriptions.pop(subscription.name, None)
            self._host.leave_group(variable_group(subscription.name))
            timer = self._timeout_timers.pop(subscription.name, None)
            if timer is not None and hasattr(timer, "cancel"):
                timer.cancel()

    def unsubscribe_service(self, service: str) -> None:
        for subs in list(self._subscriptions.values()):
            for sub in [s for s in subs if s.service == service]:
                self.unsubscribe(sub)

    # -- frame input (called by the container dispatcher) ---------------------
    def on_sample_frame(self, frame: Frame) -> None:
        doc, trace = wire.decode_traced(wire.VAR_SAMPLE_SCHEMA, frame.payload)
        self._ingest(
            doc["name"], doc["value"], doc["timestamp"], frame.source, trace
        )

    def on_initial_request(self, frame: Frame) -> None:
        doc = wire.decode(wire.VAR_INITIAL_REQUEST_SCHEMA, frame.payload)
        publication = self._publications.get(doc["name"])
        has_value = publication is not None and publication.published_samples > 0
        response = wire.encode(
            wire.VAR_INITIAL_RESPONSE_SCHEMA,
            {
                "name": doc["name"],
                "timestamp": publication.last_timestamp if has_value else 0.0,
                "has_value": has_value,
                "value": (
                    self._host.codec.encode(publication.datatype, publication.last_value)
                    if has_value
                    else b""
                ),
            },
        )
        self._host.send_unicast(
            doc["subscriber"],
            Frame(
                kind=MessageKind.VAR_INITIAL_RESPONSE,
                source=self._host.id,
                payload=response,
            ),
        )

    def on_initial_response(self, frame: Frame) -> None:
        doc = wire.decode(wire.VAR_INITIAL_RESPONSE_SCHEMA, frame.payload)
        if not doc["has_value"]:
            return  # provider has nothing yet; the retry timer keeps polling
        self._ingest(doc["name"], doc["value"], doc["timestamp"], frame.source)

    # -- internals ---------------------------------------------------------------
    def _ingest(
        self, name: str, encoded: bytes, timestamp: float, provider: str, trace=None
    ) -> None:
        live = self._subscriptions.get(name)
        if not live:
            return
        # Copy before delivering: an on_sample callback may unsubscribe.
        subs = [s for s in live if s.active]
        if not subs:
            return
        revision = self._host.directory.revision
        if revision != self._datatype_cache_rev:
            self._datatype_cache.clear()
            self._datatype_cache_rev = revision
        key = (name, provider)
        datatype = self._datatype_cache.get(key)
        if datatype is None:
            datatype = self._datatype_of(name, provider)
            if datatype is None:
                return  # no schema known yet; drop (best-effort semantics)
            self._datatype_cache[key] = datatype
        value = self._host.codec.decode(datatype, encoded)
        tracer = self._host.tracer
        if not tracer.enabled:
            # Hot path at telemetry rates: no span bookkeeping at all.
            for sub in subs:
                if timestamp < sub.last_timestamp:
                    continue  # stale sample overtaken by a newer one
                self._deliver_local(sub, value, timestamp)
            return
        span = tracer.start_span(
            f"var:{name}", "var.deliver", parent=trace, provider=provider
        )
        with tracer.activate(tracer.context_of(span)):
            for sub in subs:
                if timestamp < sub.last_timestamp:
                    continue  # stale sample overtaken by a newer one
                self._deliver_local(sub, value, timestamp)
        tracer.finish(span)

    def _deliver_local(self, sub: VariableSubscription, value: Any, timestamp: float) -> None:
        sub.last_value = value
        sub.last_timestamp = timestamp
        sub.last_arrival = self._host.clock.now()
        sub.received_samples += 1
        sub.got_initial = True
        self._deliveries_counter.inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit("var.deliver", sub.name, attrs={"timestamp": timestamp})
        if sub.on_sample is not None:
            self._host.submit("variable", lambda: sub.on_sample(value, timestamp))

    def _latest(self, sub: VariableSubscription) -> Optional[Any]:
        if sub.last_arrival < 0:
            return None
        validity = self._validity_of(sub.name)
        age = self._host.clock.now() - sub.last_arrival
        if not self._fresh(sub, validity, age):
            return None
        probes = self._host.probes
        if probes.enabled:
            # The probe reports the *measured* age and window, independent of
            # what _fresh decided — the validity spec re-derives freshness
            # from these, so a broken predicate cannot hide its own serves.
            probes.emit(
                "var.serve", sub.name, attrs={"age": age, "validity": validity}
            )
        return sub.last_value

    def _fresh(
        self, sub: VariableSubscription, validity: float, age: float
    ) -> bool:
        """May a cached sample of this age still be served? A publisher
        validity of 0 means never-expiring."""
        return validity <= 0 or age <= validity

    def _datatype_of(self, name: str, provider: str = "") -> Optional[DataType]:
        local = self._publications.get(name)
        if local is not None:
            return local.datatype
        record = self._host.directory.record(provider) if provider else None
        offer = record.variables.get(name) if record else None
        if offer is None:
            for candidate in self._host.directory.providers_of_variable(name):
                offer = candidate.variables.get(name)
                if offer:
                    break
        if offer is None:
            return None
        return parse_type(offer["datatype"])

    def _validity_of(self, name: str) -> float:
        local = self._publications.get(name)
        if local is not None:
            return local.validity
        for record in self._host.directory.providers_of_variable(name):
            return record.variables[name]["validity"]
        return 0.0

    def _period_of(self, name: str) -> float:
        local = self._publications.get(name)
        if local is not None:
            return local.period
        for record in self._host.directory.providers_of_variable(name):
            return record.variables[name]["period"]
        return 0.0

    def _request_initial(self, sub: VariableSubscription) -> None:
        if not sub.active or sub.got_initial:
            return
        providers = self._host.directory.providers_of_variable(sub.name)
        if providers:
            payload = wire.encode(
                wire.VAR_INITIAL_REQUEST_SCHEMA,
                {"name": sub.name, "subscriber": self._host.id},
            )
            self._host.send_unicast(
                providers[0].container,
                Frame(
                    kind=MessageKind.VAR_INITIAL_REQUEST,
                    source=self._host.id,
                    payload=payload,
                ),
            )
        # Retry until the first value lands (request or provider may be lost,
        # or no provider is known yet).
        retry = max(self._host.config.heartbeat_interval, 0.05)
        self._initial_timers[id(sub)] = self._host.timers.schedule(
            retry, lambda: self._request_initial(sub)
        )

    def _arm_timeout_watch(self, name: str) -> None:
        """Periodically check sample freshness for every subscriber of
        ``name`` and raise the §4.1 timeout warning."""
        if name in self._timeout_timers:
            return

        def check():
            subs = [s for s in self._subscriptions.get(name, []) if s.active]
            if not subs:
                self._timeout_timers.pop(name, None)
                return
            period = self._period_of(name)
            if period > 0:
                now = self._host.clock.now()
                limit = period * self._host.config.variable_timeout_periods
                for sub in subs:
                    reference = max(sub.last_arrival, sub.last_warning_at)
                    if sub.last_arrival >= 0 and now - reference > limit:
                        sub.timeout_warnings += 1
                        sub.last_warning_at = now  # warn once per quiet window
                        if sub.on_timeout is not None:
                            self._host.submit(
                                "variable", lambda s=sub: s.on_timeout(name)
                            )
            interval = period if period > 0 else self._host.config.housekeeping_interval
            self._timeout_timers[name] = self._host.timers.schedule(interval, check)

        self._timeout_timers[name] = self._host.timers.schedule(
            self._host.config.housekeeping_interval, check
        )


__all__ = ["VariableManager", "VariablePublication", "VariableSubscription"]
