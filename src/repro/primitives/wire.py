"""Payload schemas for the four primitives.

Application values are encoded with the container's configured codec; these
wrappers (name, timestamps, chunk numbers) always use the binary codec so
the protocol stays parseable regardless of the application-data plug-in.

Every primitive payload may carry an optional **trace-context tail**: one
tag byte (:data:`TRACE_TAIL_TAG`) followed by an encoded
:data:`TRACE_CONTEXT_SCHEMA` struct, appended *after* the payload struct.
Untraced frames are byte-identical to the pre-tracing format, and
:func:`decode` accepts both shapes — so old and new containers interoperate
and tracing costs nothing when disabled.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.encoding.compiled import CompiledCodec
from repro.encoding.types import (
    BOOL,
    BYTES,
    FLOAT64,
    STRING,
    UINT32,
    UINT64,
    StructType,
    VectorType,
)
from repro.observability.trace import TraceContext
from repro.util.errors import EncodingError

# The protocol wrappers always speak the binary wire format; the compiled
# codec emits byte-identical frames from flat precompiled plans (the
# differential suites in tests/property machine-check the equivalence).
_CODEC = CompiledCodec()

# -- variables (§4.1) -----------------------------------------------------------

VAR_SAMPLE_SCHEMA = StructType(
    "VarSample",
    [("name", STRING), ("timestamp", FLOAT64), ("value", BYTES)],
)

VAR_INITIAL_REQUEST_SCHEMA = StructType(
    "VarInitialRequest",
    [("name", STRING), ("subscriber", STRING)],
)

VAR_INITIAL_RESPONSE_SCHEMA = StructType(
    "VarInitialResponse",
    [("name", STRING), ("timestamp", FLOAT64), ("has_value", BOOL), ("value", BYTES)],
)

# -- events (§4.2) ---------------------------------------------------------------

EVENT_MESSAGE_SCHEMA = StructType(
    "EventMessage",
    [("name", STRING), ("timestamp", FLOAT64), ("value", BYTES)],
)

EVENT_SUBSCRIBE_SCHEMA = StructType(
    "EventSubscribe",
    [("name", STRING), ("subscriber", STRING), ("subscribe", BOOL)],
)

# -- remote invocation (§4.3) -------------------------------------------------------

RPC_REQUEST_SCHEMA = StructType(
    "RpcRequest",
    [("call_id", STRING), ("function", STRING), ("args", BYTES)],
)

RPC_RESPONSE_SCHEMA = StructType(
    "RpcResponse",
    [("call_id", STRING), ("ok", BOOL), ("error", STRING), ("result", BYTES)],
)

# -- file transmission (§4.4) --------------------------------------------------------

FILE_ANNOUNCE_SCHEMA = StructType(
    "FileAnnounce",
    [
        ("name", STRING),
        ("revision", UINT32),
        ("size", UINT64),
        ("chunk_size", UINT32),
        ("total_chunks", UINT32),
    ],
)

FILE_SUBSCRIBE_SCHEMA = StructType(
    "FileSubscribe",
    [("name", STRING), ("subscriber", STRING), ("revision", UINT32)],
)

FILE_CHUNK_SCHEMA = StructType(
    "FileChunk",
    [
        ("name", STRING),
        ("revision", UINT32),
        ("index", UINT32),
        ("total", UINT32),
        ("data", BYTES),
    ],
)

FILE_STATUS_REQUEST_SCHEMA = StructType(
    "FileStatusRequest",
    [("name", STRING), ("revision", UINT32)],
)

FILE_ACK_SCHEMA = StructType(
    "FileAck",
    [("name", STRING), ("subscriber", STRING), ("revision", UINT32)],
)

#: Missing chunks are reported as inclusive [start, end] ranges — the
#: "compressed list of the chunks it lacks" from §4.4.
CHUNK_RANGE_SCHEMA = StructType("ChunkRange", [("start", UINT32), ("end", UINT32)])

FILE_NACK_SCHEMA = StructType(
    "FileNack",
    [
        ("name", STRING),
        ("subscriber", STRING),
        ("revision", UINT32),
        ("missing", VectorType(CHUNK_RANGE_SCHEMA)),
    ],
)

FILE_DONE_SCHEMA = StructType(
    "FileDone",
    [("name", STRING), ("revision", UINT32)],
)


# -- trace-context tail ---------------------------------------------------------

#: Rides after the payload struct when a frame carries tracing context.
TRACE_CONTEXT_SCHEMA = StructType(
    "TraceContext",
    [("trace_id", STRING), ("span_id", STRING)],
)

#: Tag byte introducing the trace tail (ASCII 'T'). A payload struct decode
#: consumes exact lengths, so the byte after it is unambiguous.
TRACE_TAIL_TAG = 0x54


def encode(schema: StructType, doc: dict, trace: Optional[TraceContext] = None) -> bytes:
    """Encode ``doc``; with ``trace`` set, append the trace-context tail.

    ``trace=None`` produces exactly the historical untraced bytes."""
    payload = _CODEC.encode(schema, doc)
    if trace is None:
        return payload
    tail = _CODEC.encode(TRACE_CONTEXT_SCHEMA, trace.to_doc())
    return payload + bytes((TRACE_TAIL_TAG,)) + tail


def decode_traced(
    schema: StructType, payload: bytes
) -> Tuple[dict, Optional[TraceContext]]:
    """Decode a payload that may carry a trace tail; (doc, context-or-None)."""
    doc, consumed = _CODEC.decode_prefix(schema, payload)
    if consumed == len(payload):
        return doc, None
    if payload[consumed] != TRACE_TAIL_TAG:
        raise EncodingError(
            f"{len(payload) - consumed} trailing bytes after decoding "
            f"{schema.describe()} (not a trace tail)"
        )
    tail = _CODEC.decode(TRACE_CONTEXT_SCHEMA, payload[consumed + 1 :])
    return doc, TraceContext.from_doc(tail)


def decode(schema: StructType, payload: bytes) -> dict:
    """Decode a payload, tolerating (and dropping) a trace tail."""
    return decode_traced(schema, payload)[0]


def ranges_from_indices(indices) -> list:
    """Run-length-compress a set of chunk indices into [start, end] ranges."""
    out = []
    for index in sorted(indices):
        if out and index == out[-1]["end"] + 1:
            out[-1]["end"] = index
        else:
            out.append({"start": index, "end": index})
    return out


def indices_from_ranges(ranges) -> list:
    """Expand [start, end] ranges back into a sorted index list."""
    out = []
    for r in ranges:
        if r["end"] < r["start"]:
            raise ValueError(f"bad chunk range {r}")
        out.extend(range(r["start"], r["end"] + 1))
    return out


__all__ = [
    "VAR_SAMPLE_SCHEMA",
    "VAR_INITIAL_REQUEST_SCHEMA",
    "VAR_INITIAL_RESPONSE_SCHEMA",
    "EVENT_MESSAGE_SCHEMA",
    "EVENT_SUBSCRIBE_SCHEMA",
    "RPC_REQUEST_SCHEMA",
    "RPC_RESPONSE_SCHEMA",
    "FILE_ANNOUNCE_SCHEMA",
    "FILE_SUBSCRIBE_SCHEMA",
    "FILE_CHUNK_SCHEMA",
    "FILE_STATUS_REQUEST_SCHEMA",
    "FILE_ACK_SCHEMA",
    "FILE_NACK_SCHEMA",
    "FILE_DONE_SCHEMA",
    "CHUNK_RANGE_SCHEMA",
    "TRACE_CONTEXT_SCHEMA",
    "TRACE_TAIL_TAG",
    "encode",
    "decode",
    "decode_traced",
    "ranges_from_indices",
    "indices_from_ranges",
]
