"""The Remote Invocation primitive (§4.3).

Two-way point-to-point calls between services, with the server's location
fully abstracted by the middleware:

- functions are exposed with typed parameters and an optional return value;
- clients "check that all the functions they need … are provided by one or
  more services available in the network" (:meth:`InvocationManager.check_required`);
- binding is **static** (pre-allocated provider), **round-robin**, or
  **least-loaded** (heartbeat load field) — the paper's static/dynamic
  redirection;
- on provider failure "the middleware will detect the situation and redirect
  requests to the redundant service" — pending calls are re-issued to the
  next provider, up to ``call_max_redirects`` times;
- "if no service provides the requested function the middleware will warn
  the system to take the programmed emergency procedure" — the container's
  emergency hook fires and the call errors with
  :class:`~repro.util.errors.NameResolutionError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.encoding.types import DataType, StructType
from repro.primitives import wire
from repro.primitives.host import PrimitiveHost
from repro.protocol.frames import Frame, MessageKind
from repro.util.errors import (
    ConfigurationError,
    InvocationError,
    NameResolutionError,
)
from repro.util.ids import make_uid

OnResult = Callable[[Any], None]
OnError = Callable[[Exception], None]


def _args_schema(name: str, params: Sequence[DataType]) -> Optional[StructType]:
    """Build the struct carrying a call's arguments (None for zero-arg)."""
    if not params:
        return None
    return StructType(
        f"Args_{name.replace('.', '_')}",
        [(f"p{i}", t) for i, t in enumerate(params)],
    )


@dataclass
class FunctionProvision:
    """Server-side registration of one callable function."""

    name: str
    params: List[DataType]
    result: Optional[DataType]
    fn: Callable[..., Any]
    service: str
    calls_served: int = 0

    @property
    def args_schema(self) -> Optional[StructType]:
        return _args_schema(self.name, self.params)


@dataclass
class CallHandle:
    """Client-side handle for one in-flight invocation."""

    call_id: str
    function: str
    args: tuple
    on_result: Optional[OnResult]
    on_error: Optional[OnError]
    deadline: float
    binding: str
    issued_at: float = 0.0
    provider: Optional[str] = None
    redirects: int = 0
    done: bool = False
    result: Any = None
    error: Optional[Exception] = None
    _timer: object = field(default=None, repr=False)
    _span: object = field(default=None, repr=False)

    @property
    def pending(self) -> bool:
        return not self.done


class InvocationManager:
    """Owns both sides of the remote-invocation primitive."""

    def __init__(self, host: PrimitiveHost):
        self._host = host
        self._provisions: Dict[str, FunctionProvision] = {}
        self._calls: Dict[str, CallHandle] = {}
        self._rr_counters: Dict[str, int] = {}
        self._static_bindings: Dict[str, str] = {}  # function -> container

    # -- server side ----------------------------------------------------------
    def provide(
        self,
        name: str,
        fn: Callable[..., Any],
        params: Optional[Sequence[DataType]] = None,
        result: Optional[DataType] = None,
        service: str = "",
    ) -> FunctionProvision:
        if name in self._provisions:
            raise ConfigurationError(f"function {name!r} already provided here")
        provision = FunctionProvision(
            name=name,
            params=list(params or []),
            result=result,
            fn=fn,
            service=service,
        )
        self._provisions[name] = provision
        self._host.announce_soon()
        return provision

    def withdraw(self, name: str) -> None:
        if self._provisions.pop(name, None) is not None:
            self._host.announce_soon()

    def withdraw_service(self, service: str) -> None:
        for name in [n for n, p in self._provisions.items() if p.service == service]:
            del self._provisions[name]
        self._host.announce_soon()

    def offers(self) -> List[dict]:
        return [
            {
                "name": p.name,
                "params": [t.describe() for t in p.params],
                "result": p.result.describe() if p.result else "",
            }
            for p in sorted(self._provisions.values(), key=lambda p: p.name)
        ]

    # -- client side -------------------------------------------------------------
    def check_required(self, functions: Sequence[str]) -> List[str]:
        """The §4.3 startup check: which required functions have no provider
        anywhere (locally or in the directory)? Empty list = all satisfied."""
        missing = []
        for name in functions:
            if name in self._provisions:
                continue
            if self._host.directory.providers_of_function(name):
                continue
            missing.append(name)
        return missing

    def bind_static(self, function: str, container: str) -> None:
        """Pin ``function`` to a provider container (§4.3 static allocation,
        "useful in critical services where resources … are pre-allocated")."""
        self._static_bindings[function] = container

    def call(
        self,
        function: str,
        args: tuple = (),
        on_result: Optional[OnResult] = None,
        on_error: Optional[OnError] = None,
        timeout: Optional[float] = None,
        binding: Optional[str] = None,
    ) -> CallHandle:
        """Invoke ``function`` wherever it lives. Completion is reported via
        callbacks; the returned handle tracks progress."""
        timeout = timeout if timeout is not None else self._host.config.call_timeout
        handle = CallHandle(
            call_id=make_uid("call"),
            function=function,
            args=tuple(args),
            on_result=on_result,
            on_error=on_error,
            deadline=self._host.clock.now() + timeout,
            binding=binding or self._host.config.call_binding,
            issued_at=self._host.clock.now(),
        )
        self._host.metrics.counter("rpc_calls").inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "rpc.call", function, key=handle.call_id,
                attrs={"function": function},
            )
        handle._span = self._host.tracer.start_span(
            f"rpc:{function}", "rpc.call", call_id=handle.call_id
        )
        self._calls[handle.call_id] = handle
        self._dispatch(handle)
        return handle

    def pending_calls(self) -> List[CallHandle]:
        """In-flight invocations — empty once every call has terminated
        with a result or a defined error (the chaos invariant)."""
        return [h for h in self._calls.values() if h.pending]

    # -- directory hooks ------------------------------------------------------
    def on_provider_down(self, container: str) -> None:
        """Redirect every pending call bound to a dead provider (§4.3)."""
        for handle in [
            h for h in self._calls.values() if h.pending and h.provider == container
        ]:
            self._redirect(handle, reason=f"provider {container} failed")

    # -- frame input ----------------------------------------------------------
    def on_request_frame(self, frame: Frame) -> None:
        doc, trace = wire.decode_traced(wire.RPC_REQUEST_SCHEMA, frame.payload)
        caller = frame.source
        provision = self._provisions.get(doc["function"])
        if provision is None:
            self._respond(caller, doc["call_id"], ok=False,
                          error=f"function {doc['function']!r} not provided here")
            return
        try:
            args = self._decode_args(provision, doc["args"])
        except Exception as exc:  # noqa: BLE001 — bad args are a caller error
            self._respond(caller, doc["call_id"], ok=False, error=f"bad arguments: {exc}")
            return
        tracer = self._host.tracer
        span = tracer.start_span(
            f"rpc:{doc['function']}", "rpc.server", parent=trace, caller=caller
        )

        def execute():
            provision.calls_served += 1
            self._host.metrics.counter("rpc_served").inc()
            try:
                result = provision.fn(*args)
                encoded = b""
                if provision.result is not None:
                    encoded = self._host.codec.encode(provision.result, result)
                self._respond(caller, doc["call_id"], ok=True, result=encoded)
            except Exception as exc:  # noqa: BLE001 — server fault, reported back
                self._respond(caller, doc["call_id"], ok=False, error=str(exc))
            tracer.finish(span)

        with tracer.activate(tracer.context_of(span)):
            self._host.submit("invocation", execute)

    def on_response_frame(self, frame: Frame) -> None:
        doc = wire.decode(wire.RPC_RESPONSE_SCHEMA, frame.payload)  # tail-tolerant
        handle = self._calls.get(doc["call_id"])
        if handle is None or handle.done:
            return  # late or duplicate response
        if not doc["ok"]:
            self._finish_error(handle, InvocationError(handle.function, doc["error"]))
            return
        result = None
        provision_type = self._result_type_of(handle.function, frame.source)
        if provision_type is not None and doc["result"]:
            result = self._host.codec.decode(provision_type, doc["result"])
        self._finish_ok(handle, result)

    # -- internals -----------------------------------------------------------
    def _dispatch(self, handle: CallHandle) -> None:
        tracer = self._host.tracer
        context = tracer.context_of(handle._span)
        # Local fast path: the function lives in this container.
        local = self._provisions.get(handle.function)
        if local is not None:
            handle.provider = self._host.id
            self._arm_timeout(handle)

            def execute():
                local.calls_served += 1
                try:
                    self._finish_ok(handle, local.fn(*handle.args))
                except Exception as exc:  # noqa: BLE001
                    self._finish_error(handle, InvocationError(handle.function, str(exc)))

            with tracer.activate(context):
                self._host.submit("invocation", execute)
            return

        provider = self._select_provider(handle)
        if provider is None:
            message = f"no provider for function {handle.function!r}"
            self._host.emergency(message)
            self._finish_error(handle, NameResolutionError(message))
            return
        handle.provider = provider
        record = self._host.directory.record(provider)
        offer = record.functions.get(handle.function) if record else None
        try:
            encoded_args = self._encode_args(handle.function, offer, handle.args)
        except Exception as exc:  # noqa: BLE001
            self._finish_error(handle, InvocationError(handle.function, f"bad arguments: {exc}"))
            return
        payload = wire.encode(
            wire.RPC_REQUEST_SCHEMA,
            {"call_id": handle.call_id, "function": handle.function, "args": encoded_args},
            trace=context,
        )
        self._host.send_reliable(provider, MessageKind.RPC_REQUEST, payload)
        self._arm_timeout(handle)

    def _select_provider(self, handle: CallHandle) -> Optional[str]:
        if handle.binding == "static":
            pinned = self._static_bindings.get(handle.function)
            if pinned is not None:
                record = self._host.directory.record(pinned)
                if record is not None and record.alive and handle.function in record.functions:
                    return pinned
                return None  # static binding down: no silent re-route
        providers = [
            r
            for r in self._host.directory.providers_of_function(handle.function)
            if r.container != handle.provider  # skip the one that just failed
        ]
        if not providers:
            # Allow retrying the same provider if it is the only one alive.
            providers = self._host.directory.providers_of_function(handle.function)
        if not providers:
            return None
        if handle.binding == "least_loaded":
            return min(providers, key=lambda r: (r.load, r.container)).container
        # round_robin (default)
        counter = self._rr_counters.get(handle.function, 0)
        self._rr_counters[handle.function] = counter + 1
        return providers[counter % len(providers)].container

    def _redirect(self, handle: CallHandle, reason: str) -> None:
        if handle.redirects >= self._host.config.call_max_redirects:
            self._finish_error(
                handle,
                InvocationError(handle.function, f"{reason}; redirect limit reached"),
            )
            return
        handle.redirects += 1
        self._cancel_timer(handle)
        self._dispatch(handle)

    def _arm_timeout(self, handle: CallHandle) -> None:
        self._cancel_timer(handle)
        delay = max(0.0, handle.deadline - self._host.clock.now())

        def expire():
            if handle.done:
                return
            # A timeout usually means the provider died between heartbeats;
            # treat it like a failure and try a redundant provider.
            self._host.metrics.counter("rpc_timeouts").inc()
            self._redirect(handle, reason="call timed out")
            if not handle.done and handle.pending:
                # Redirected: extend the deadline by one timeout window.
                handle.deadline = self._host.clock.now() + self._host.config.call_timeout
                self._arm_timeout(handle)

        handle._timer = self._host.timers.schedule(delay, expire)

    def _cancel_timer(self, handle: CallHandle) -> None:
        if handle._timer is not None and hasattr(handle._timer, "cancel"):
            handle._timer.cancel()
        handle._timer = None

    def _finish_ok(self, handle: CallHandle, result: Any) -> None:
        handle.done = True
        handle.result = result
        self._cancel_timer(handle)
        self._calls.pop(handle.call_id, None)
        self._host.metrics.counter("rpc_completed").inc()
        self._host.metrics.histogram("rpc_latency").observe(
            self._host.clock.now() - handle.issued_at
        )
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "rpc.done", handle.function, key=handle.call_id,
                attrs={"function": handle.function, "outcome": "ok"},
            )
        tracer = self._host.tracer
        if handle._span is not None:
            handle._span.attrs["redirects"] = handle.redirects
        tracer.finish(handle._span)
        if handle.on_result is not None:
            with tracer.activate(tracer.context_of(handle._span)):
                self._host.submit("invocation", lambda: handle.on_result(result))

    def _finish_error(self, handle: CallHandle, error: Exception) -> None:
        handle.done = True
        handle.error = error
        self._cancel_timer(handle)
        self._calls.pop(handle.call_id, None)
        self._host.metrics.counter("rpc_errors").inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "rpc.done", handle.function, key=handle.call_id,
                attrs={"function": handle.function, "outcome": "error"},
            )
        tracer = self._host.tracer
        if handle._span is not None:
            handle._span.attrs["redirects"] = handle.redirects
            handle._span.attrs["error"] = str(error)
        tracer.finish(handle._span)
        if handle.on_error is not None:
            with tracer.activate(tracer.context_of(handle._span)):
                self._host.submit("invocation", lambda: handle.on_error(error))

    def _respond(
        self, caller: str, call_id: str, ok: bool, error: str = "", result: bytes = b""
    ) -> None:
        payload = wire.encode(
            wire.RPC_RESPONSE_SCHEMA,
            {"call_id": call_id, "ok": ok, "error": error, "result": result},
            # Responses carry the server-side context (the ambient one while
            # the function executed); the caller correlates by call_id.
            trace=self._host.tracer.current,
        )
        if caller == self._host.id:
            # Local caller of a local function; deliver without the network.
            self.on_response_frame(
                Frame(kind=MessageKind.RPC_RESPONSE, source=self._host.id, payload=payload)
            )
            return
        self._host.send_reliable(caller, MessageKind.RPC_RESPONSE, payload)

    def _decode_args(self, provision: FunctionProvision, encoded: bytes) -> tuple:
        schema = provision.args_schema
        if schema is None:
            return ()
        doc = self._host.codec.decode(schema, encoded)
        return tuple(doc[f"p{i}"] for i in range(len(provision.params)))

    def _encode_args(self, function: str, offer: Optional[dict], args: tuple) -> bytes:
        from repro.encoding.schema import parse_type

        if offer is None:
            raise InvocationError(function, "provider offer unknown")
        params = [parse_type(p) for p in offer["params"]]
        if len(params) != len(args):
            raise InvocationError(
                function, f"expected {len(params)} arguments, got {len(args)}"
            )
        schema = _args_schema(function, params)
        if schema is None:
            return b""
        return self._host.codec.encode(
            schema, {f"p{i}": a for i, a in enumerate(args)}
        )

    def _result_type_of(self, function: str, provider: str) -> Optional[DataType]:
        from repro.encoding.schema import parse_type

        local = self._provisions.get(function)
        if local is not None:
            return local.result
        record = self._host.directory.record(provider)
        offer = record.functions.get(function) if record else None
        if offer is None or not offer["result"]:
            return None
        return parse_type(offer["result"])


__all__ = ["InvocationManager", "CallHandle", "FunctionProvision"]
