"""The Event primitive (§4.2).

Like variables, events follow publish/subscribe — but delivery to every
subscriber is **guaranteed**. The publisher's container tracks subscribers
explicitly and pushes each event down a per-subscriber reliable stream
(UDP + application-layer ack/retransmit by default, or the TCP-modelled
stream when ``event_mapping="tcp"`` — the §4.2 comparison).

Latency is the design driver: event dispatch runs at the highest
application priority in the pluggable scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.encoding.schema import parse_type
from repro.encoding.types import DataType
from repro.primitives import wire
from repro.primitives.host import PrimitiveHost
from repro.protocol.frames import Frame, MessageKind
from repro.util.errors import ConfigurationError

OnEvent = Callable[[Any, float], None]  # (value, publisher timestamp)


@dataclass
class EventPublication:
    """Publisher-side handle for one named event."""

    name: str
    datatype: Optional[DataType]  # None for pure signals without payload
    service: str
    _manager: "EventManager" = field(repr=False, default=None)
    #: container ids subscribed to this event
    subscribers: Set[str] = field(default_factory=set)
    raised_events: int = 0

    def raise_event(self, value: Any = None) -> None:
        """Publish one occurrence to every subscriber, reliably."""
        self._manager._raise(self, value)

    def withdraw(self) -> None:
        self._manager.withdraw(self.name)


@dataclass
class EventSubscription:
    """Subscriber-side handle for one named event."""

    name: str
    on_event: OnEvent
    service: str
    _manager: "EventManager" = field(repr=False, default=None)
    received_events: int = 0
    active: bool = True

    def cancel(self) -> None:
        self._manager.unsubscribe(self)


class EventManager:
    """Owns both sides of the event primitive for one container."""

    def __init__(self, host: PrimitiveHost):
        self._host = host
        self._publications: Dict[str, EventPublication] = {}
        self._subscriptions: Dict[str, List[EventSubscription]] = {}
        #: remote event names we are subscribed to (sent EVENT_SUBSCRIBE for)
        self._remote_subscribed: Set[str] = set()
        #: Remote interest per event name, owned by the *container* so a
        #: service restart or hot upgrade does not lose its subscribers —
        #: the subscription is between containers (§3), not service
        #: instances. Seeds each (re-)publication's subscriber set.
        self._remote_interest: Dict[str, Set[str]] = {}
        # Hot-path instruments, resolved once (registry lookups per event
        # show up at high rates).
        self._publishes_counter = host.metrics.counter("event_publishes")
        self._deliveries_counter = host.metrics.counter("event_deliveries")
        # (name, provider) -> resolved DataType for the rx path; valid only
        # while the directory revision is unchanged and no local publication
        # has been (re)provided or withdrawn since.
        self._datatype_cache: Dict[tuple, DataType] = {}
        self._datatype_cache_rev = -1

    # -- publisher side -----------------------------------------------------
    def provide(
        self, name: str, datatype: Optional[DataType] = None, service: str = ""
    ) -> EventPublication:
        if name in self._publications:
            raise ConfigurationError(f"event {name!r} already provided here")
        publication = EventPublication(
            name=name, datatype=datatype, service=service, _manager=self
        )
        # Restore interest recorded before (or between) provisions.
        publication.subscribers = set(self._remote_interest.get(name, set()))
        if self._subscriptions.get(name):
            publication.subscribers.add(self._host.id)
        self._publications[name] = publication
        self._datatype_cache.clear()
        self._host.announce_soon()
        return publication

    def withdraw(self, name: str) -> None:
        if self._publications.pop(name, None) is not None:
            self._datatype_cache.clear()
            self._host.announce_soon()

    def withdraw_service(self, service: str) -> None:
        for name in [n for n, p in self._publications.items() if p.service == service]:
            del self._publications[name]
        self._datatype_cache.clear()
        self._host.announce_soon()

    def offers(self) -> List[dict]:
        return [
            {
                "name": p.name,
                "datatype": p.datatype.describe() if p.datatype else "",
            }
            for p in sorted(self._publications.values(), key=lambda p: p.name)
        ]

    def _raise(self, publication: EventPublication, value: Any) -> None:
        tracer = self._host.tracer
        now = self._host.clock.now()
        sanitizer = self._host.payload_sanitizer
        if sanitizer.enabled:
            value = sanitizer.on_publish("event", publication.name, value)
        publication.raised_events += 1
        self._publishes_counter.inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "event.publish", publication.name, attrs={"timestamp": now}
            )
        if tracer.enabled:
            span = tracer.start_span(
                f"event:{publication.name}", "event.publish",
                subscribers=len(publication.subscribers),
            )
            context = tracer.context_of(span)
        else:
            span = context = None  # skip span-name formatting on the hot path
        if publication.datatype is not None:
            encoded_value = self._host.codec.encode(publication.datatype, value)
        else:
            encoded_value = b""
        payload = wire.encode(
            wire.EVENT_MESSAGE_SCHEMA,
            {"name": publication.name, "timestamp": now, "value": encoded_value},
            trace=context,
        )
        with tracer.activate(context):
            # Local subscribers first: same-container delivery never hits
            # the wire.
            self._dispatch_local(publication.name, value, now)
            for peer in sorted(publication.subscribers):
                if peer == self._host.id:
                    continue
                if self._host.config.event_mapping == "tcp":
                    self._host.send_tcp_stream(peer, payload)
                else:
                    self._host.send_reliable(peer, MessageKind.EVENT, payload)
        tracer.finish(span)

    # -- subscriber side ----------------------------------------------------
    def subscribe(
        self, name: str, on_event: OnEvent, service: str = ""
    ) -> EventSubscription:
        subscription = EventSubscription(
            name=name, on_event=on_event, service=service, _manager=self
        )
        self._subscriptions.setdefault(name, []).append(subscription)
        # Local publisher: nothing to negotiate.
        local = self._publications.get(name)
        if local is not None:
            local.subscribers.add(self._host.id)
        self._sync_remote_subscription(name)
        return subscription

    def unsubscribe(self, subscription: EventSubscription) -> None:
        subscription.active = False
        subs = self._subscriptions.get(subscription.name, [])
        if subscription in subs:
            subs.remove(subscription)
        if not subs:
            self._subscriptions.pop(subscription.name, None)
            local = self._publications.get(subscription.name)
            if local is not None:
                local.subscribers.discard(self._host.id)
            if subscription.name in self._remote_subscribed:
                self._remote_subscribed.discard(subscription.name)
                self._send_subscribe_message(subscription.name, subscribe=False)

    def unsubscribe_service(self, service: str) -> None:
        for subs in list(self._subscriptions.values()):
            for sub in [s for s in subs if s.service == service]:
                self.unsubscribe(sub)

    # -- directory hooks ------------------------------------------------------
    def on_provider_up(self, container: str) -> None:
        """A container (re)appeared: (re)issue subscriptions it provides."""
        record = self._host.directory.record(container)
        if record is None:
            return
        for name in self._subscriptions:
            if name in record.events:
                self._send_subscribe_to(container, name)

    def on_subscriber_down(self, container: str) -> None:
        """Remove a dead container from every publication's subscriber set."""
        for publication in self._publications.values():
            publication.subscribers.discard(container)
        for interested in self._remote_interest.values():
            interested.discard(container)

    def evict_subscriber(self, container: str) -> bool:
        """Drop a *live* but too-slow subscriber from every publication.

        The backpressure hook: guaranteed delivery means the publisher may
        never silently drop an event, so when the reliable backlog to a
        peer overflows, the peer loses its subscription instead. It learns
        about the provider again from the next announce and can
        re-subscribe once healthy. Returns True when anything was removed.
        """
        evicted = False
        for publication in self._publications.values():
            if container in publication.subscribers:
                publication.subscribers.discard(container)
                evicted = True
        for interested in self._remote_interest.values():
            if container in interested:
                interested.discard(container)
                evicted = True
        if evicted:
            self._host.metrics.counter("slow_subscriber_evictions").inc()
        return evicted

    # -- frame input -----------------------------------------------------------
    def on_event_frame(self, frame: Frame) -> None:
        doc, trace = wire.decode_traced(wire.EVENT_MESSAGE_SCHEMA, frame.payload)
        self.on_event_payload(frame.source, doc, trace)

    def on_event_payload(self, provider: str, doc: dict, trace=None) -> None:
        name = doc["name"]
        revision = self._host.directory.revision
        if revision != self._datatype_cache_rev:
            self._datatype_cache.clear()
            self._datatype_cache_rev = revision
        key = (name, provider)
        datatype = self._datatype_cache.get(key)
        if datatype is None:
            datatype = self._datatype_of(name, provider)
            if datatype is not None:
                self._datatype_cache[key] = datatype
        value = None
        if datatype is not None and doc["value"]:
            value = self._host.codec.decode(datatype, doc["value"])
        tracer = self._host.tracer
        span = (
            tracer.start_span(
                f"event:{name}", "event.deliver", parent=trace, provider=provider
            )
            if tracer.enabled
            else None
        )
        with tracer.activate(tracer.context_of(span)):
            self._dispatch_local(name, value, doc["timestamp"])
        tracer.finish(span)

    def on_subscribe_frame(self, frame: Frame) -> None:
        doc = wire.decode(wire.EVENT_SUBSCRIBE_SCHEMA, frame.payload)
        name, subscriber = doc["name"], doc["subscriber"]
        # Interest is container-level state: record it even while no
        # publication exists (the provider service may be restarting).
        if doc["subscribe"]:
            self._remote_interest.setdefault(name, set()).add(subscriber)
        else:
            self._remote_interest.get(name, set()).discard(subscriber)
        publication = self._publications.get(name)
        if publication is None:
            return
        if doc["subscribe"]:
            publication.subscribers.add(subscriber)
        else:
            publication.subscribers.discard(subscriber)

    # -- internals ---------------------------------------------------------------
    def _dispatch_local(self, name: str, value: Any, timestamp: float) -> None:
        subs = [s for s in self._subscriptions.get(name, []) if s.active]
        if subs:
            self._deliveries_counter.inc(len(subs))
            probes = self._host.probes
            if probes.enabled:
                probes.emit(
                    "event.deliver",
                    name,
                    attrs={"timestamp": timestamp, "subscribers": len(subs)},
                )
        for sub in subs:
            sub.received_events += 1
            self._host.submit("event", lambda s=sub: s.on_event(value, timestamp))

    def _datatype_of(self, name: str, provider: str) -> Optional[DataType]:
        local = self._publications.get(name)
        if local is not None:
            return local.datatype
        record = self._host.directory.record(provider)
        offer = record.events.get(name) if record else None
        if offer is None:
            for candidate in self._host.directory.providers_of_event(name):
                offer = candidate.events.get(name)
                if offer:
                    break
        if offer is None or not offer["datatype"]:
            return None
        return parse_type(offer["datatype"])

    def _sync_remote_subscription(self, name: str) -> None:
        providers = self._host.directory.providers_of_event(name)
        if not providers:
            return  # on_provider_up will catch the provider when it announces
        self._send_subscribe_message(name, subscribe=True)

    def _send_subscribe_message(self, name: str, subscribe: bool) -> None:
        for record in self._host.directory.providers_of_event(name):
            self._send_subscribe_to(record.container, name, subscribe)

    def _send_subscribe_to(self, container: str, name: str, subscribe: bool = True) -> None:
        if subscribe:
            self._remote_subscribed.add(name)
        payload = wire.encode(
            wire.EVENT_SUBSCRIBE_SCHEMA,
            {"name": name, "subscriber": self._host.id, "subscribe": subscribe},
        )
        self._host.send_reliable(container, MessageKind.EVENT_SUBSCRIBE, payload)


__all__ = ["EventManager", "EventPublication", "EventSubscription"]
