"""The narrow interface primitive managers use to reach their container.

Keeping this a Protocol (instead of importing ServiceContainer) breaks the
import cycle and documents exactly what a primitive may do: classify work
for the scheduler, move frames, and consult the name directory.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.container.config import ContainerConfig
from repro.container.directory import Directory
from repro.encoding.codec import Codec
from repro.analysis.sanitizers.payload import PayloadSanitizer
from repro.observability.metrics import MetricsRegistry
from repro.observability.probes import ProbeBus
from repro.observability.recorder import FlightRecorder
from repro.observability.trace import Tracer
from repro.protocol.frames import Frame, MessageKind
from repro.simnet.addressing import GroupName
from repro.util.clock import Clock


class PrimitiveHost(Protocol):
    """What a :class:`ServiceContainer` provides to its primitive managers."""

    @property
    def id(self) -> str:
        """The local container id."""
        ...

    @property
    def clock(self) -> Clock:
        ...

    @property
    def timers(self):
        """Anything with ``schedule(delay, fn) -> cancellable handle``."""
        ...

    @property
    def codec(self) -> Codec:
        """The application-data codec (PEPt Encoding plug-in)."""
        ...

    @property
    def config(self) -> ContainerConfig:
        ...

    @property
    def directory(self) -> Directory:
        ...

    @property
    def tracer(self) -> Tracer:
        """The container's causal tracer (no-op unless enabled)."""
        ...

    @property
    def metrics(self) -> MetricsRegistry:
        """The container's unified metrics registry."""
        ...

    @property
    def recorder(self) -> FlightRecorder:
        """The container's bounded flight recorder."""
        ...

    @property
    def probes(self) -> ProbeBus:
        """The monitor-probe stream (emit only behind ``probes.enabled``)."""
        ...

    @property
    def payload_sanitizer(self) -> PayloadSanitizer:
        """The payload-aliasing sanitizer (no-op unless enabled)."""
        ...

    def submit(self, label: str, fn: Callable[[], None]) -> None:
        """Hand work to the pluggable scheduler under a primitive label."""
        ...

    def send_unicast(self, peer: str, frame: Frame) -> bool:
        """Best-effort unicast to a container by id. False if unresolvable."""
        ...

    def send_reliable(self, peer: str, kind: MessageKind, payload: bytes) -> None:
        """Send on the per-peer ordered reliable stream."""
        ...

    def send_tcp_stream(self, peer: str, payload: bytes) -> None:
        """Send an event payload on the TCP-modelled stream (E5 baseline)."""
        ...

    def send_group(self, group: GroupName, frame: Frame) -> None:
        ...

    def join_group(self, group: GroupName) -> None:
        ...

    def leave_group(self, group: GroupName) -> None:
        ...

    def announce_soon(self) -> None:
        """Ask the container to re-announce (our offers changed)."""
        ...

    def emergency(self, reason: str) -> None:
        """Trigger the programmed emergency procedure (§4.3)."""
        ...


__all__ = ["PrimitiveHost"]
