"""The File-based Transmission primitive (§4.4).

"A protocol loosely based on Starburst MFTP" with three phases:

1. **announce** — the publisher advertises ``(name, revision, size,
   chunk_size, total_chunks)`` on the control group; interested services
   subscribe with a reliable unicast message;
2. **transfer** — the publisher multicasts numbered chunks to the file's
   group, paced by ``file_chunk_interval`` (or unicasts them per subscriber
   when ``multicast=False``, the baseline of experiment E4);
3. **completion** — the publisher polls subscribers; complete ones ACK and
   are removed, incomplete ones NACK with a *compressed* (run-length)
   missing-chunk list; the next round retransmits only the union of missing
   chunks, iterating "until the subscribers list is empty".

Phases overlap per subscriber: a service subscribing mid-transfer receives
the remaining chunks live and NACKs the ones it missed. Revision bumps
restart collection. Same-container subscribers are served by the **bypass**:
"the transfer is bypassed by the container as direct access to the
resource".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.primitives import wire
from repro.primitives.host import PrimitiveHost
from repro.protocol.frames import Frame, MessageKind
from repro.simnet.addressing import file_group
from repro.util.errors import ConfigurationError

OnComplete = Callable[[bytes, int], None]  # (data, revision)
OnProgress = Callable[[int, int], None]  # (chunks received, total)
OnRevision = Callable[[int], str]  # new revision -> "restart" | "ignore"


@dataclass
class FileResource:
    """A published file: the unit the announce phase advertises."""

    name: str
    data: bytes
    revision: int
    chunk_size: int
    service: str = ""
    #: Trace context of the publish; rides every announce/chunk frame.
    trace: object = None

    @property
    def total_chunks(self) -> int:
        if not self.data:
            return 1  # an empty file still needs one (empty) chunk
        return (len(self.data) + self.chunk_size - 1) // self.chunk_size

    def chunk(self, index: int) -> bytes:
        start = index * self.chunk_size
        return self.data[start : start + self.chunk_size]

    def announce_doc(self) -> dict:
        return {
            "name": self.name,
            "revision": self.revision,
            "size": len(self.data),
            "chunk_size": self.chunk_size,
            "total_chunks": self.total_chunks,
        }


@dataclass
class _Session:
    """Publisher-side transfer state for one resource."""

    resource: FileResource
    pending: Set[str] = field(default_factory=set)  # incomplete subscribers
    queue: List[int] = field(default_factory=list)  # chunks left this round
    missing: Set[int] = field(default_factory=set)  # NACK union for next round
    answered: Set[str] = field(default_factory=set)  # replied this poll
    round: int = 0
    in_transfer: bool = False
    awaiting_status: bool = False
    silent_polls: int = 0
    timer: object = None
    chunks_sent: int = 0


@dataclass
class FileSubscription:
    """Subscriber-side state for one resource."""

    name: str
    on_complete: OnComplete
    on_progress: Optional[OnProgress]
    on_revision: Optional[OnRevision]
    service: str
    _manager: "FileTransferManager" = field(repr=False, default=None)
    revision: int = 0
    total: Optional[int] = None
    size: Optional[int] = None
    chunks: Dict[int, bytes] = field(default_factory=dict)
    provider: Optional[str] = None
    #: Trace context learned from the publisher's announce/chunk frames.
    trace: object = None
    subscribed_to: Set[str] = field(default_factory=set)
    completed_revision: int = 0
    active: bool = True
    bypassed: bool = False

    @property
    def complete(self) -> bool:
        return self.total is not None and len(self.chunks) == self.total

    def cancel(self) -> None:
        self._manager.unsubscribe(self)


class FileTransferManager:
    """Owns both sides of the file primitive for one container."""

    def __init__(self, host: PrimitiveHost):
        self._host = host
        self._resources: Dict[str, FileResource] = {}
        self._sessions: Dict[str, _Session] = {}
        self._subscriptions: Dict[str, List[FileSubscription]] = {}
        self.bypassed_transfers = 0
        self.completed_transfers = 0
        self.dropped_stragglers = 0

    # -- publisher side -----------------------------------------------------
    def publish(
        self,
        name: str,
        data: bytes,
        revision: Optional[int] = None,
        service: str = "",
    ) -> FileResource:
        """Publish (or re-publish with a new revision) a file resource."""
        existing = self._resources.get(name)
        if revision is None:
            revision = existing.revision + 1 if existing else 1
        elif existing and revision <= existing.revision:
            raise ConfigurationError(
                f"revision {revision} of {name!r} is not newer than "
                f"{existing.revision}"
            )
        resource = FileResource(
            name=name,
            data=bytes(data),
            revision=revision,
            chunk_size=self._host.config.file_chunk_size,
            service=service,
        )
        self._host.metrics.counter("file_publishes").inc()
        span = self._host.tracer.start_span(
            f"file:{name}", "file.publish", revision=revision, size=len(resource.data)
        )
        resource.trace = self._host.tracer.context_of(span)
        self._host.tracer.finish(span)
        self._resources[name] = resource
        self._host.announce_soon()
        self._broadcast_announce(resource)
        # Local subscribers: the §4.4 bypass — direct access, no transfer.
        for sub in list(self._subscriptions.get(name, [])):
            self._bypass_deliver(sub, resource)
        session = self._sessions.get(name)
        if session is not None and session.pending:
            # Revision changed mid-transfer: restart the round with the new
            # content for everyone still pending.
            session.resource = resource
            session.queue = list(range(resource.total_chunks))
            session.missing.clear()
            session.round = 0
            self._continue_transfer(session)
        return resource

    def withdraw(self, name: str) -> None:
        self._resources.pop(name, None)
        session = self._sessions.pop(name, None)
        if session is not None and session.timer is not None:
            if hasattr(session.timer, "cancel"):
                session.timer.cancel()
        self._host.announce_soon()

    def withdraw_service(self, service: str) -> None:
        for name in [n for n, r in self._resources.items() if r.service == service]:
            self.withdraw(name)

    def offers(self) -> List[dict]:
        return [
            {
                "name": r.name,
                "revision": r.revision,
                "size": len(r.data),
                "chunk_size": r.chunk_size,
            }
            for r in sorted(self._resources.values(), key=lambda r: r.name)
        ]

    def resource(self, name: str) -> Optional[FileResource]:
        return self._resources.get(name)

    # -- subscriber side ----------------------------------------------------
    def subscribe(
        self,
        name: str,
        on_complete: OnComplete,
        on_progress: Optional[OnProgress] = None,
        on_revision: Optional[OnRevision] = None,
        service: str = "",
    ) -> FileSubscription:
        """Subscribe to a file resource by name.

        ``on_complete`` fires for the current revision and every later one
        while the subscription stays active.
        """
        subscription = FileSubscription(
            name=name,
            on_complete=on_complete,
            on_progress=on_progress,
            on_revision=on_revision,
            service=service,
            _manager=self,
        )
        self._subscriptions.setdefault(name, []).append(subscription)
        local = self._resources.get(name)
        if local is not None:
            self._bypass_deliver(subscription, local)
            return subscription
        self._host.join_group(file_group(name))
        self._request_from_providers(subscription)
        return subscription

    def unsubscribe(self, subscription: FileSubscription) -> None:
        subscription.active = False
        subs = self._subscriptions.get(subscription.name, [])
        if subscription in subs:
            subs.remove(subscription)
        if not subs:
            self._subscriptions.pop(subscription.name, None)
            if subscription.name not in self._resources:
                self._host.leave_group(file_group(subscription.name))

    def unsubscribe_service(self, service: str) -> None:
        for subs in list(self._subscriptions.values()):
            for sub in [s for s in subs if s.service == service]:
                self.unsubscribe(sub)

    # -- directory hooks ------------------------------------------------------
    def on_provider_up(self, container: str) -> None:
        record = self._host.directory.record(container)
        if record is None:
            return
        for name, subs in self._subscriptions.items():
            if name in record.files:
                for sub in subs:
                    if sub.active and not sub.complete:
                        self._send_subscribe(sub, container)

    def on_subscriber_down(self, container: str) -> None:
        for session in self._sessions.values():
            session.pending.discard(container)

    # -- frame input -----------------------------------------------------------
    def on_announce_frame(self, frame: Frame) -> None:
        doc, trace = wire.decode_traced(wire.FILE_ANNOUNCE_SCHEMA, frame.payload)
        for sub in list(self._subscriptions.get(doc["name"], [])):
            if not sub.active:
                continue
            if doc["revision"] > sub.revision:
                action = "restart"
                if sub.on_revision is not None and sub.revision > 0:
                    action = sub.on_revision(doc["revision"])
                if action == "restart":
                    sub.revision = doc["revision"]
                    sub.total = doc["total_chunks"]
                    sub.size = doc["size"]
                    sub.chunks.clear()
                    sub.trace = trace
                    self._send_subscribe(sub, frame.source)
            elif doc["revision"] == sub.revision and sub.total is None:
                sub.total = doc["total_chunks"]
                sub.size = doc["size"]

    def on_subscribe_frame(self, frame: Frame) -> None:
        doc = wire.decode(wire.FILE_SUBSCRIBE_SCHEMA, frame.payload)
        resource = self._resources.get(doc["name"])
        if resource is None:
            return
        session = self._sessions.get(doc["name"])
        if session is None or session.resource.revision != resource.revision:
            session = _Session(resource=resource)
            self._sessions[doc["name"]] = session
        session.pending.add(doc["subscriber"])
        if not session.in_transfer and not session.awaiting_status:
            session.queue = list(range(resource.total_chunks))
            session.round = 0
            self._continue_transfer(session)
        # else: late join (§4.4) — it catches up at the completion phase.

    def on_chunk_frame(self, frame: Frame) -> None:
        doc, trace = wire.decode_traced(wire.FILE_CHUNK_SCHEMA, frame.payload)
        for sub in list(self._subscriptions.get(doc["name"], [])):
            if not sub.active or sub.complete:
                continue
            if doc["revision"] < sub.revision:
                continue  # stale revision still in flight
            if doc["revision"] > sub.revision:
                action = "restart"
                if sub.on_revision is not None and sub.revision > 0:
                    action = sub.on_revision(doc["revision"])
                if action != "restart":
                    continue
                sub.revision = doc["revision"]
                sub.chunks.clear()
            sub.total = doc["total"]
            sub.provider = frame.source
            if trace is not None:
                sub.trace = trace
            if doc["index"] not in sub.chunks:
                sub.chunks[doc["index"]] = doc["data"]
                if sub.on_progress is not None:
                    self._host.submit(
                        "file", lambda s=sub: s.on_progress(len(s.chunks), s.total)
                    )
            if sub.complete:
                self._complete_subscription(sub, frame.source)

    def on_status_request_frame(self, frame: Frame) -> None:
        doc = wire.decode(wire.FILE_STATUS_REQUEST_SCHEMA, frame.payload)
        for sub in list(self._subscriptions.get(doc["name"], [])):
            if not sub.active:
                continue
            if sub.revision != doc["revision"]:
                continue
            if sub.complete:
                self._send_ack(sub, frame.source)
            else:
                self._send_nack(sub, frame.source)

    def on_completion_ack_frame(self, frame: Frame) -> None:
        doc = wire.decode(wire.FILE_ACK_SCHEMA, frame.payload)
        session = self._sessions.get(doc["name"])
        if session is None or session.resource.revision != doc["revision"]:
            return
        session.pending.discard(doc["subscriber"])
        session.answered.add(doc["subscriber"])

    def on_completion_nack_frame(self, frame: Frame) -> None:
        doc = wire.decode(wire.FILE_NACK_SCHEMA, frame.payload)
        session = self._sessions.get(doc["name"])
        if session is None or session.resource.revision != doc["revision"]:
            return
        session.answered.add(doc["subscriber"])
        session.missing.update(wire.indices_from_ranges(doc["missing"]))

    # -- publisher transfer machinery -------------------------------------------
    def _broadcast_announce(self, resource: FileResource) -> None:
        from repro.simnet.addressing import CONTROL_GROUP

        payload = wire.encode(
            wire.FILE_ANNOUNCE_SCHEMA, resource.announce_doc(), trace=resource.trace
        )
        self._host.send_group(
            CONTROL_GROUP,
            Frame(kind=MessageKind.FILE_ANNOUNCE, source=self._host.id, payload=payload),
        )

    def _continue_transfer(self, session: _Session) -> None:
        session.in_transfer = True
        session.awaiting_status = False
        if session.timer is not None and hasattr(session.timer, "cancel"):
            session.timer.cancel()
        if not session.pending:
            session.in_transfer = False
            return
        if not session.queue:
            self._start_completion_poll(session)
            return
        index = session.queue.pop(0)
        resource = session.resource
        payload = wire.encode(
            wire.FILE_CHUNK_SCHEMA,
            {
                "name": resource.name,
                "revision": resource.revision,
                "index": index,
                "total": resource.total_chunks,
                "data": resource.chunk(index),
            },
            trace=resource.trace,
        )
        frame = Frame(kind=MessageKind.FILE_CHUNK, source=self._host.id, payload=payload)
        if getattr(self._host.config, "file_multicast", True):
            self._host.send_group(file_group(resource.name), frame)
            session.chunks_sent += 1
        else:
            # Unicast baseline: one copy per pending subscriber (E4).
            for peer in sorted(session.pending):
                self._host.send_unicast(peer, frame)
                session.chunks_sent += 1
        session.timer = self._host.timers.schedule(
            self._host.config.file_chunk_interval, lambda: self._continue_transfer(session)
        )

    def _start_completion_poll(self, session: _Session) -> None:
        session.in_transfer = False
        session.awaiting_status = True
        session.answered.clear()
        session.missing.clear()
        resource = session.resource
        payload = wire.encode(
            wire.FILE_STATUS_REQUEST_SCHEMA,
            {"name": resource.name, "revision": resource.revision},
        )
        frame = Frame(
            kind=MessageKind.FILE_STATUS_REQUEST, source=self._host.id, payload=payload
        )
        if getattr(self._host.config, "file_multicast", True):
            self._host.send_group(file_group(resource.name), frame)
        else:
            for peer in sorted(session.pending):
                self._host.send_unicast(peer, frame)
        session.timer = self._host.timers.schedule(
            self._host.config.file_status_timeout, lambda: self._finish_poll(session)
        )

    def _finish_poll(self, session: _Session) -> None:
        session.awaiting_status = False
        if not session.pending:
            session.silent_polls = 0
            return  # everyone ACKed — "the subscribers list is empty"
        session.round += 1
        if session.round > self._host.config.file_max_rounds:
            # Stragglers hold the session hostage; drop them and report.
            self.dropped_stragglers += len(session.pending)
            self._host.emergency(
                f"file {session.resource.name!r} rev {session.resource.revision}: "
                f"dropping {len(session.pending)} unreachable subscribers"
            )
            session.pending.clear()
            return
        if session.missing:
            session.silent_polls = 0
            session.queue = sorted(session.missing)
            session.missing = set()
            self._continue_transfer(session)
            return
        # Nobody NACKed but some subscribers stayed silent (lost status
        # request or lost replies): poll again.
        session.silent_polls += 1
        self._start_completion_poll(session)

    # -- subscriber helpers ---------------------------------------------------
    def _request_from_providers(self, sub: FileSubscription) -> None:
        for record in self._host.directory.providers_of_file(sub.name):
            offer = record.files[sub.name]
            if offer["revision"] > sub.revision:
                sub.revision = offer["revision"]
                sub.size = offer["size"]
                sub.total = None  # chunk frames carry the definitive total
                sub.chunks.clear()
            self._send_subscribe(sub, record.container)

    def _send_subscribe(self, sub: FileSubscription, provider: str) -> None:
        key = (provider, sub.revision)
        if key in sub.subscribed_to:
            return
        sub.subscribed_to.add(key)
        payload = wire.encode(
            wire.FILE_SUBSCRIBE_SCHEMA,
            {"name": sub.name, "subscriber": self._host.id, "revision": sub.revision},
        )
        self._host.send_reliable(provider, MessageKind.FILE_SUBSCRIBE, payload)

    def _send_ack(self, sub: FileSubscription, provider: str) -> None:
        payload = wire.encode(
            wire.FILE_ACK_SCHEMA,
            {"name": sub.name, "subscriber": self._host.id, "revision": sub.revision},
        )
        self._host.send_reliable(provider, MessageKind.FILE_COMPLETION_ACK, payload)

    def _send_nack(self, sub: FileSubscription, provider: str) -> None:
        total = sub.total if sub.total is not None else 0
        missing = [i for i in range(total) if i not in sub.chunks] if total else []
        payload = wire.encode(
            wire.FILE_NACK_SCHEMA,
            {
                "name": sub.name,
                "subscriber": self._host.id,
                "revision": sub.revision,
                "missing": wire.ranges_from_indices(missing),
            },
        )
        self._host.send_reliable(provider, MessageKind.FILE_COMPLETION_NACK, payload)

    def _complete_subscription(self, sub: FileSubscription, provider: str) -> None:
        data = b"".join(sub.chunks[i] for i in range(sub.total))
        if sub.size is not None and len(data) > sub.size:
            data = data[: sub.size]  # final chunk padding guard
        sub.completed_revision = sub.revision
        self.completed_transfers += 1
        self._host.metrics.counter("file_completions").inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "ft.complete", sub.name, attrs={"revision": sub.revision}
            )
        tracer = self._host.tracer
        span = tracer.start_span(
            f"file:{sub.name}", "file.complete", parent=sub.trace,
            revision=sub.revision, provider=provider,
        )
        with tracer.activate(tracer.context_of(span)):
            self._host.submit("file", lambda: sub.on_complete(data, sub.revision))
            # Proactively ACK so the publisher can drop us before its next poll.
            self._send_ack(sub, provider)
        tracer.finish(span)

    def _bypass_deliver(self, sub: FileSubscription, resource: FileResource) -> None:
        if not sub.active or sub.completed_revision >= resource.revision:
            return
        sub.revision = resource.revision
        sub.total = resource.total_chunks
        sub.size = len(resource.data)
        sub.completed_revision = resource.revision
        sub.bypassed = True
        self.bypassed_transfers += 1
        self.completed_transfers += 1
        self._host.metrics.counter("file_completions").inc()
        probes = self._host.probes
        if probes.enabled:
            probes.emit(
                "ft.complete", sub.name, attrs={"revision": resource.revision}
            )
        data = resource.data
        tracer = self._host.tracer
        span = tracer.start_span(
            f"file:{sub.name}", "file.complete", parent=resource.trace,
            revision=resource.revision, bypass=True,
        )
        with tracer.activate(tracer.context_of(span)):
            self._host.submit("file", lambda: sub.on_complete(data, resource.revision))
        tracer.finish(span)


__all__ = ["FileTransferManager", "FileResource", "FileSubscription"]
