"""Kinematic UAV model.

A turn-rate-limited point mass: enough fidelity to generate realistic
position/heading telemetry and waypoint-capture timing for the middleware
experiments, without pretending to be an aerodynamics simulator (the paper's
FCS is out of scope — it navigates, we observe).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.flight.geodesy import (
    GeoPoint,
    angle_diff_deg,
    bearing_deg,
    destination_point,
    distance_m,
)
from repro.flight.plan import FlightPlan, Waypoint


@dataclass(frozen=True)
class UavState:
    """Instantaneous aircraft state."""

    position: GeoPoint
    heading: float  # degrees, 0 = north
    ground_speed: float  # m/s
    time: float  # seconds since mission start


class KinematicUav:
    """Point-mass aircraft following a flight plan.

    Parameters
    ----------
    plan:
        The flight plan to fly, leg by leg.
    start:
        Initial position (defaults to the first waypoint).
    cruise_speed:
        Ground speed in m/s; the paper's mini-UAV class cruises ~20-30 m/s.
    max_turn_rate:
        Degrees per second of heading change.
    """

    def __init__(
        self,
        plan: FlightPlan,
        start: Optional[GeoPoint] = None,
        cruise_speed: float = 25.0,
        max_turn_rate: float = 15.0,
    ):
        if cruise_speed <= 0:
            raise ValueError("cruise speed must be positive")
        self.plan = plan
        self.cruise_speed = cruise_speed
        self.max_turn_rate = max_turn_rate
        origin = start or plan.waypoint(0).point
        first_target = plan.waypoint(0).point
        self._state = UavState(
            position=origin,
            heading=bearing_deg(origin, first_target) if origin != first_target else 0.0,
            ground_speed=cruise_speed,
            time=0.0,
        )
        self._target_index = 0
        self.completed = False

    # -- observation ------------------------------------------------------------
    @property
    def state(self) -> UavState:
        return self._state

    @property
    def target_index(self) -> int:
        return self._target_index

    @property
    def current_target(self) -> Optional[Waypoint]:
        if self.completed:
            return None
        return self.plan.waypoint(self._target_index)

    # -- integration ------------------------------------------------------------
    def step(self, dt: float) -> list:
        """Advance ``dt`` seconds. Returns the indices of waypoints captured
        during this step (usually empty or one)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        captured = []
        if self.completed:
            self._state = replace(self._state, time=self._state.time + dt)
            return captured

        target = self.plan.waypoint(self._target_index)
        # Turn toward the target, limited by turn rate.
        desired = bearing_deg(self._state.position, target.point)
        diff = angle_diff_deg(self._state.heading, desired)
        max_turn = self.max_turn_rate * dt
        turn = max(-max_turn, min(max_turn, diff))
        heading = (self._state.heading + turn) % 360.0
        # Advance along the (new) heading.
        travel = self.cruise_speed * dt
        position = destination_point(self._state.position, heading, travel)
        position = GeoPoint(position.lat, position.lon, target.point.alt)
        self._state = UavState(
            position=position,
            heading=heading,
            ground_speed=self.cruise_speed,
            time=self._state.time + dt,
        )
        # Waypoint capture; chains in case capture radii overlap.
        while not self.completed:
            target = self.plan.waypoint(self._target_index)
            if distance_m(self._state.position, target.point) > target.capture_radius_m:
                break
            captured.append(self._target_index)
            self._target_index += 1
            if self._target_index >= len(self.plan):
                self.completed = True
        return captured

    def eta_to_target_s(self) -> float:
        """Crude time-to-next-waypoint assuming a straight line."""
        target = self.current_target
        if target is None:
            return 0.0
        return distance_m(self._state.position, target.point) / self.cruise_speed

    def distance_remaining_m(self) -> float:
        """Straight-line-along-plan distance still to fly."""
        if self.completed:
            return 0.0
        total = distance_m(
            self._state.position, self.plan.waypoint(self._target_index).point
        )
        for i in range(self._target_index, len(self.plan) - 1):
            total += distance_m(
                self.plan.waypoint(i).point, self.plan.waypoint(i + 1).point
            )
        return total


__all__ = ["KinematicUav", "UavState"]
