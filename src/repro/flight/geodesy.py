"""Small-area geodesy.

UAV missions in the paper's class cover a few kilometres, so an
equirectangular approximation over WGS-84 is accurate to well under a metre
— no need for full geodesic math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius (WGS-84), metres.
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class GeoPoint:
    """A geographic position: degrees latitude/longitude, metres altitude."""

    lat: float
    lon: float
    alt: float = 0.0

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range: {self.lat}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude out of range: {self.lon}")


def distance_m(a: GeoPoint, b: GeoPoint) -> float:
    """Horizontal distance in metres (equirectangular approximation)."""
    mean_lat = math.radians((a.lat + b.lat) / 2.0)
    dx = math.radians(b.lon - a.lon) * math.cos(mean_lat) * EARTH_RADIUS_M
    dy = math.radians(b.lat - a.lat) * EARTH_RADIUS_M
    return math.hypot(dx, dy)


def bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial bearing from ``a`` to ``b`` in degrees, 0 = north, clockwise."""
    mean_lat = math.radians((a.lat + b.lat) / 2.0)
    dx = math.radians(b.lon - a.lon) * math.cos(mean_lat)
    dy = math.radians(b.lat - a.lat)
    return math.degrees(math.atan2(dx, dy)) % 360.0


def destination_point(origin: GeoPoint, bearing: float, distance: float) -> GeoPoint:
    """The point ``distance`` metres from ``origin`` along ``bearing``."""
    theta = math.radians(bearing)
    dy = distance * math.cos(theta)
    dx = distance * math.sin(theta)
    dlat = math.degrees(dy / EARTH_RADIUS_M)
    dlon = math.degrees(dx / (EARTH_RADIUS_M * math.cos(math.radians(origin.lat))))
    return GeoPoint(origin.lat + dlat, origin.lon + dlon, origin.alt)


def angle_diff_deg(a: float, b: float) -> float:
    """Signed smallest rotation from heading ``a`` to heading ``b``,
    in (-180, 180]."""
    diff = (b - a) % 360.0
    if diff > 180.0:
        diff -= 360.0
    return diff


__all__ = [
    "GeoPoint",
    "distance_m",
    "bearing_deg",
    "destination_point",
    "angle_diff_deg",
    "EARTH_RADIUS_M",
]
