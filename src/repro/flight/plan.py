"""Flight plans.

The Mission Control service "following a provided flight plan orquestrates
the rest of services" (§5). A plan is an ordered list of waypoints, each
optionally tagged with an action — for the image-processing scenario,
``TAKE_PHOTO``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.flight.geodesy import GeoPoint, destination_point, distance_m
from repro.util.errors import ConfigurationError


class WaypointAction(enum.Enum):
    NONE = "none"
    TAKE_PHOTO = "take_photo"
    LOITER = "loiter"
    LAND = "land"


@dataclass(frozen=True)
class Waypoint:
    """One leg endpoint of a flight plan."""

    point: GeoPoint
    #: Radius within which the waypoint counts as reached.
    capture_radius_m: float = 25.0
    action: WaypointAction = WaypointAction.NONE
    name: str = ""


@dataclass
class FlightPlan:
    """An ordered sequence of waypoints with progress tracking."""

    waypoints: List[Waypoint]
    name: str = "plan"

    def __post_init__(self) -> None:
        if not self.waypoints:
            raise ConfigurationError("a flight plan needs at least one waypoint")

    def __len__(self) -> int:
        return len(self.waypoints)

    def __iter__(self) -> Iterator[Waypoint]:
        return iter(self.waypoints)

    def waypoint(self, index: int) -> Waypoint:
        return self.waypoints[index]

    @property
    def photo_waypoints(self) -> List[int]:
        return [
            i
            for i, wp in enumerate(self.waypoints)
            if wp.action == WaypointAction.TAKE_PHOTO
        ]

    def total_length_m(self) -> float:
        return sum(
            distance_m(a.point, b.point)
            for a, b in zip(self.waypoints, self.waypoints[1:])
        )


def survey_plan(
    origin: GeoPoint,
    rows: int = 3,
    row_length_m: float = 1000.0,
    row_spacing_m: float = 200.0,
    photos_per_row: int = 2,
    altitude: float = 300.0,
) -> FlightPlan:
    """A lawn-mower survey pattern with photo waypoints — the §5 workload.

    ``rows`` parallel east-west legs, ``photos_per_row`` TAKE_PHOTO points
    evenly spaced along each leg.
    """
    if rows < 1 or photos_per_row < 0:
        raise ConfigurationError("survey needs >= 1 row and >= 0 photos per row")
    waypoints: List[Waypoint] = []
    start = GeoPoint(origin.lat, origin.lon, altitude)
    for row in range(rows):
        row_start = destination_point(start, 0.0, row * row_spacing_m)
        eastbound = row % 2 == 0
        bearing = 90.0 if eastbound else 270.0
        leg_origin = (
            row_start
            if eastbound
            else destination_point(row_start, 90.0, row_length_m)
        )
        waypoints.append(Waypoint(leg_origin, name=f"row{row}.start"))
        for p in range(photos_per_row):
            along = row_length_m * (p + 1) / (photos_per_row + 1)
            photo_point = destination_point(leg_origin, bearing, along)
            waypoints.append(
                Waypoint(
                    photo_point,
                    action=WaypointAction.TAKE_PHOTO,
                    name=f"row{row}.photo{p}",
                )
            )
        leg_end = destination_point(leg_origin, bearing, row_length_m)
        waypoints.append(Waypoint(leg_end, name=f"row{row}.end"))
    return FlightPlan(waypoints=waypoints, name="survey")


__all__ = ["Waypoint", "WaypointAction", "FlightPlan", "survey_plan"]
