"""Flight simulation substrate.

Stands in for the UAV airframe, autopilot and GPS receiver the paper's
testbed had: a kinematic aircraft model flying a waypoint flight plan over
a local geodetic frame. The GPS service samples it; Mission Control follows
its progress.
"""

from repro.flight.dynamics import KinematicUav, UavState
from repro.flight.geodesy import GeoPoint, bearing_deg, destination_point, distance_m
from repro.flight.plan import FlightPlan, Waypoint, WaypointAction, survey_plan

__all__ = [
    "GeoPoint",
    "distance_m",
    "bearing_deg",
    "destination_point",
    "Waypoint",
    "WaypointAction",
    "FlightPlan",
    "survey_plan",
    "KinematicUav",
    "UavState",
]
