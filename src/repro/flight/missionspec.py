"""Declarative mission specifications.

The paper's thesis is "rapid, efficient and low-cost mission definition and
execution" (§7): the same platform should fly many missions "with little
reconfiguration time and overhead". This module is that reconfiguration
surface — a JSON document describes the flight plan and payload behaviour,
and :func:`build_mission` assembles the standard services onto a runtime.

Example document::

    {
      "name": "survey-castelldefels",
      "origin": {"lat": 41.275, "lon": 1.985, "alt": 300},
      "cruise_speed": 25.0,
      "plan": {"type": "survey", "rows": 2, "row_length_m": 800,
               "row_spacing_m": 250, "photos_per_row": 3},
      "mission": {"photo_prefix": "photo", "detection_threshold": 0.3,
                  "image_size": 128}
    }

Plan types: ``survey`` (lawn-mower with photo points), ``waypoints``
(explicit list) and ``loiter`` (circle approximated by waypoints).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.flight.dynamics import KinematicUav
from repro.flight.geodesy import GeoPoint, destination_point
from repro.flight.plan import FlightPlan, Waypoint, WaypointAction, survey_plan
from repro.util.errors import ConfigurationError


@dataclass
class MissionSpec:
    """A parsed mission document."""

    name: str
    origin: GeoPoint
    plan: FlightPlan
    cruise_speed: float = 25.0
    gps_rate_hz: float = 5.0
    photo_prefix: str = "photo"
    detection_threshold: float = 0.3
    image_size: int = 128
    camera_features: Dict[int, int] = field(default_factory=dict)
    default_features: int = 3


def load_mission_spec(source: Union[str, Path, dict]) -> MissionSpec:
    """Parse a mission document from a path, JSON text, or a dict."""
    if isinstance(source, dict):
        doc = source
    else:
        text = str(source)
        if not text.lstrip().startswith("{"):
            # Not inline JSON: treat it as a path.
            text = Path(source).read_text(encoding="utf-8")
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid mission JSON: {exc}") from exc
    return _parse(doc)


def _parse(doc: dict) -> MissionSpec:
    try:
        name = doc["name"]
        origin_doc = doc["origin"]
        plan_doc = doc["plan"]
    except KeyError as exc:
        raise ConfigurationError(f"mission document missing key {exc}") from exc
    origin = GeoPoint(
        float(origin_doc["lat"]),
        float(origin_doc["lon"]),
        float(origin_doc.get("alt", 300.0)),
    )
    plan = _build_plan(origin, plan_doc)
    mission = doc.get("mission", {})
    camera = doc.get("camera", {})
    features = {
        int(k): int(v) for k, v in camera.get("features_at", {}).items()
    }
    return MissionSpec(
        name=name,
        origin=origin,
        plan=plan,
        cruise_speed=float(doc.get("cruise_speed", 25.0)),
        gps_rate_hz=float(doc.get("gps_rate_hz", 5.0)),
        photo_prefix=mission.get("photo_prefix", "photo"),
        detection_threshold=float(mission.get("detection_threshold", 0.3)),
        image_size=int(mission.get("image_size", 128)),
        camera_features=features,
        default_features=int(camera.get("default_features", 3)),
    )


def _build_plan(origin: GeoPoint, doc: dict) -> FlightPlan:
    plan_type = doc.get("type")
    if plan_type == "survey":
        return survey_plan(
            origin,
            rows=int(doc.get("rows", 2)),
            row_length_m=float(doc.get("row_length_m", 800.0)),
            row_spacing_m=float(doc.get("row_spacing_m", 200.0)),
            photos_per_row=int(doc.get("photos_per_row", 2)),
            altitude=origin.alt,
        )
    if plan_type == "waypoints":
        waypoints = []
        for i, wp in enumerate(doc.get("waypoints", [])):
            try:
                action = WaypointAction(wp.get("action", "none"))
            except ValueError:
                raise ConfigurationError(
                    f"waypoint {i}: unknown action {wp.get('action')!r}"
                ) from None
            waypoints.append(
                Waypoint(
                    GeoPoint(float(wp["lat"]), float(wp["lon"]),
                             float(wp.get("alt", origin.alt))),
                    capture_radius_m=float(wp.get("radius", 25.0)),
                    action=action,
                    name=wp.get("name", f"wp{i}"),
                )
            )
        return FlightPlan(waypoints=waypoints, name="waypoints")
    if plan_type == "loiter":
        radius = float(doc.get("radius_m", 400.0))
        points = int(doc.get("points", 8))
        laps = int(doc.get("laps", 2))
        if points < 3 or laps < 1:
            raise ConfigurationError("loiter needs >= 3 points and >= 1 lap")
        circle = [
            Waypoint(
                destination_point(origin, i * 360.0 / points, radius),
                capture_radius_m=max(25.0, radius * 0.1),
                name=f"loiter{i}",
            )
            for i in range(points)
        ]
        return FlightPlan(waypoints=circle * laps, name="loiter")
    raise ConfigurationError(f"unknown plan type {plan_type!r}")


def build_mission(runtime, spec: MissionSpec):
    """Assemble the standard §5 service set for ``spec`` onto ``runtime``.

    Creates three containers (fcs / payload / ground) and installs GPS,
    Mission Control, Camera, Storage, Video Processing and Ground Station,
    configured from the spec. Returns a dict of the service instances.
    """
    from repro.services import (
        CameraService,
        GpsService,
        GroundStationService,
        MissionControlService,
        StorageService,
        VideoProcessingService,
    )

    fcs = runtime.add_container("fcs")
    payload = runtime.add_container("payload")
    ground = runtime.add_container("ground")

    uav = KinematicUav(spec.plan, cruise_speed=spec.cruise_speed)
    services = {
        "gps": GpsService(uav, rate_hz=spec.gps_rate_hz),
        "mission": MissionControlService(
            spec.plan,
            photo_prefix=spec.photo_prefix,
            detection_threshold=spec.detection_threshold,
            image_size=spec.image_size,
        ),
        "camera": CameraService(
            default_features=spec.default_features,
            features_at=spec.camera_features,
        ),
        "storage": StorageService(),
        "video": VideoProcessingService(),
        "ground": GroundStationService(),
    }
    fcs.install_service(services["gps"])
    fcs.install_service(services["mission"])
    payload.install_service(services["camera"])
    payload.install_service(services["storage"])
    payload.install_service(services["video"])
    ground.install_service(services["ground"])
    return services


__all__ = ["MissionSpec", "load_mission_spec", "build_mission"]
