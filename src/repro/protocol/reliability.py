"""Application-layer reliable delivery (selective ack + retransmit).

The paper maps events "over TCP or over UDP using a mechanism to acknowledge
and resend lost packets", claiming the application-layer mechanism "is more
efficient for event messages than the generic case provided by the TCP
stack" (§4.2). This module is that mechanism: per-(source, channel) sequence
numbers, *selective* acknowledgements, per-frame retransmission timers with
exponential backoff, and optional ordered delivery.

Everything here is sans-io: the classes never touch sockets or the
simulator; they emit frames through a callback and expose ``poll``/
``next_wakeup`` so either runtime can drive their timers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.protocol.frames import Frame, FrameFlags, MessageKind
from repro.util.clock import Clock
from repro.util.errors import ProtocolError

_ACK_COUNT = struct.Struct("<H")
_ACK_SEQ = struct.Struct("<I")


def encode_ack(seqs: List[int]) -> bytes:
    """Selective-ack payload: uint16 count + uint32 seq each."""
    if len(seqs) > 0xFFFF:
        raise ProtocolError("too many seqs in one ack")
    out = [_ACK_COUNT.pack(len(seqs))]
    out.extend(_ACK_SEQ.pack(s) for s in seqs)
    return b"".join(out)


def decode_ack(payload: bytes) -> List[int]:
    if len(payload) < _ACK_COUNT.size:
        raise ProtocolError("ack payload too short")
    (count,) = _ACK_COUNT.unpack_from(payload)
    expected = _ACK_COUNT.size + count * _ACK_SEQ.size
    if len(payload) != expected:
        raise ProtocolError(f"ack payload wrong size: {len(payload)} != {expected}")
    return [
        _ACK_SEQ.unpack_from(payload, _ACK_COUNT.size + i * _ACK_SEQ.size)[0]
        for i in range(count)
    ]


#: NACKs carry the same seq-list payload as selective ACKs.
encode_nack = encode_ack
decode_nack = decode_ack


@dataclass
class ReliabilityHardening:
    """Abuse-tolerance knobs for the reliable streams.

    ``enabled=False`` (the default) keeps the protocol byte- and
    behavior-identical to the seed. The object is deliberately *mutable*
    and shared by reference across every stream of a container, so
    ``SimRuntime.harden_reliability`` can arm defenses on a running fleet.

    Defenses, per (peer, channel) stream:

    - **NACK-storm suppression**: a token-bucket NACK budget per peer;
      exhausting it opens an exponentially growing penalty window during
      which that peer's NACKs are ignored (a NACK is a *request for work*
      — retransmission — so it is the cheapest amplification lever).
    - **ACK-flood rejection**: an ACK-frame budget per peer, plus
      rejection of ACKs for never-sent ("future") sequence numbers.
      Stale/duplicate ACKs are counted and ignored.
    - **Replay-window enforcement**: data seqs further than
      ``replay_window`` below the receiver's contiguous point are dropped
      *without re-acknowledgement* (re-ACKing ancient replays is the
      amplification an attacker wants), and seqs further than
      ``replay_window`` above it are dropped instead of buffered, which
      bounds the out-of-order buffer an attacker could otherwise grow
      without limit.
    """

    enabled: bool = False
    ack_rate: float = 500.0
    ack_burst: float = 128.0
    nack_rate: float = 20.0
    nack_burst: float = 8.0
    nack_penalty: float = 0.5
    nack_penalty_backoff: float = 2.0
    nack_penalty_max: float = 10.0
    #: Honest senders keep at most ``RetransmitPolicy.window`` (default 64)
    #: frames outstanding, so 256 never touches legitimate traffic — while
    #: every admitted-but-gap-stalled flood frame past it is dropped
    #: *unACKed*, bounding both the out-of-order buffer and the band-0 ACK
    #: amplification a seq-striding flood can mint on a shaped uplink.
    replay_window: int = 256
    #: Budget for re-ACKing in-window duplicates (lost-ACK recovery is
    #: legitimate; a replay firehose is not).
    dup_ack_rate: float = 50.0
    dup_ack_burst: float = 16.0

    def __post_init__(self) -> None:
        if min(self.ack_rate, self.nack_rate, self.dup_ack_rate) <= 0:
            raise ValueError("hardening rates must be positive")
        if min(self.ack_burst, self.nack_burst, self.dup_ack_burst) < 1:
            raise ValueError("hardening bursts must be >= 1")
        if self.nack_penalty <= 0 or self.nack_penalty_backoff < 1.0:
            raise ValueError("invalid nack penalty")
        if self.nack_penalty_max < self.nack_penalty:
            raise ValueError("invalid nack penalty cap")
        if self.replay_window < 1:
            raise ValueError("replay_window must be >= 1")


class _Bucket:
    """Token bucket private to this module (admission imports frames, not
    us — keeping this local avoids a protocol-internal import cycle)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def try_take(self, now: float) -> bool:
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class RetransmitPolicy:
    """Retransmission knobs.

    Defaults suit a sub-millisecond LAN; the radio-link experiments override
    them.
    """

    initial_rto: float = 0.05
    backoff: float = 2.0
    max_rto: float = 2.0
    max_retries: int = 10
    window: int = 64
    #: Cap on frames queued behind the window (``None`` = unbounded, the
    #: seed behavior). When the backlog is full, new sends are *shed before
    #: a sequence number is consumed* — shedding after allocation would
    #: leave a permanent gap that wedges the ordered receiver.
    max_backlog: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial_rto <= 0 or self.backoff < 1.0:
            raise ValueError("invalid retransmit policy")
        if self.window < 1 or self.max_retries < 0:
            raise ValueError("invalid retransmit policy")
        if self.max_backlog is not None and self.max_backlog < 1:
            raise ValueError("invalid retransmit policy")


@dataclass
class _InFlight:
    frame: Frame
    deadline: float
    rto: float
    retries: int = 0


class ReliableSender:
    """Send side of one reliable stream (one destination, one channel).

    Parameters
    ----------
    clock:
        Time source (virtual or wall).
    source:
        Sending container id, stamped into every frame.
    channel:
        Stream id; receivers keep independent state per (source, channel).
    emit:
        Called with each frame that must go on the wire (first sends and
        retransmissions alike). The owner decides the destination address.
    on_failure:
        Called with ``(seq, frame)`` when a frame exhausts its retries — the
        container uses this to declare a subscriber dead.
    on_overflow:
        Called with the *unsequenced* frame when ``policy.max_backlog`` is
        set and the backlog is full — the slow-subscriber backpressure
        signal. The frame was never admitted to the stream (seq 0).
    hardening:
        Shared :class:`ReliabilityHardening`; abuse defenses apply only
        while ``hardening.enabled``.
    on_abuse:
        Called with a reason string (``"ack-flood"``, ``"future-ack"``,
        ``"stale-ack"``, ``"nack-flood"``, ``"stale-nack"``) each time a
        defense fires, so the owner can attribute abuse to the peer.
    """

    def __init__(
        self,
        clock: Clock,
        source: str,
        channel: int,
        emit: Callable[[Frame], None],
        on_failure: Optional[Callable[[int, Frame], None]] = None,
        policy: Optional[RetransmitPolicy] = None,
        on_overflow: Optional[Callable[[Frame], None]] = None,
        hardening: Optional[ReliabilityHardening] = None,
        on_abuse: Optional[Callable[[str], None]] = None,
    ):
        self._clock = clock
        self._source = source
        self._channel = channel
        self._emit = emit
        self._on_failure = on_failure
        self._on_overflow = on_overflow
        self._policy = policy or RetransmitPolicy()
        self._hardening = hardening
        self._on_abuse = on_abuse
        self._ack_bucket: Optional[_Bucket] = None
        self._nack_bucket: Optional[_Bucket] = None
        self._nack_ignore_until = 0.0
        self._nack_penalty = 0.0
        self._next_seq = 1
        self._in_flight: Dict[int, _InFlight] = {}
        self._backlog: List[Frame] = []
        # Statistics surfaced by experiment E5.
        self.sent_frames = 0
        self.retransmitted_frames = 0
        self.retransmitted_bytes = 0
        self.failed_frames = 0
        self.shed_frames = 0
        # Abuse-defense statistics (all zero unless hardening fires).
        self.suppressed_acks = 0
        self.future_acks = 0
        self.stale_acks = 0
        self.suppressed_nacks = 0
        self.stale_nacks = 0
        self.nack_retransmits = 0

    # -- API ------------------------------------------------------------------
    def send(self, kind: MessageKind, payload: bytes) -> int:
        """Queue a payload for reliable delivery; returns its sequence number.

        Returns 0 (never a valid seq) when the bounded backlog sheds the
        frame instead of admitting it.
        """
        if (
            self._policy.max_backlog is not None
            and len(self._in_flight) >= self._policy.window
            and len(self._backlog) >= self._policy.max_backlog
        ):
            self.shed_frames += 1
            if self._on_overflow is not None:
                self._on_overflow(
                    Frame(
                        kind=kind,
                        source=self._source,
                        payload=payload,
                        channel=self._channel,
                    )
                )
            return 0
        frame = Frame(
            kind=kind,
            source=self._source,
            payload=payload,
            channel=self._channel,
            seq=self._next_seq,
            flags=int(FrameFlags.RELIABLE),
        )
        self._next_seq += 1
        if len(self._in_flight) < self._policy.window:
            self._transmit(frame)
        else:
            self._backlog.append(frame)
        return frame.seq

    def on_ack_frame(self, frame: Frame) -> None:
        """Feed an ACK frame received for this stream."""
        if frame.kind != MessageKind.ACK:
            raise ProtocolError(f"not an ack frame: {frame!r}")
        hardening = self._hardening
        if hardening is not None and hardening.enabled:
            if self._ack_bucket is None:
                self._ack_bucket = _Bucket(
                    hardening.ack_rate, hardening.ack_burst, self._clock.now()
                )
            if not self._ack_bucket.try_take(self._clock.now()):
                self.suppressed_acks += 1
                self._abuse("ack-flood")
                return
        self.on_acked(decode_ack(frame.payload))

    def on_acked(self, seqs: List[int]) -> None:
        hardened = self._hardening is not None and self._hardening.enabled
        for seq in seqs:
            if hardened and seq >= self._next_seq:
                # An ACK for a sequence number this stream never issued is
                # forgery, not a delivery report.
                self.future_acks += 1
                self._abuse("future-ack")
                continue
            if self._in_flight.pop(seq, None) is None and hardened:
                self.stale_acks += 1
                self._abuse("stale-ack")
        self._drain_backlog()

    def on_nack_frame(self, frame: Frame) -> None:
        """Feed a NACK frame: an explicit retransmit request from the peer.

        Each listed in-flight seq is retransmitted immediately (with its
        backoff state reset, as for a timer-driven retransmit). Seqs not in
        flight — already acked, never sent, or shed — are counted as stale.
        When hardening is enabled, a per-peer NACK budget applies; blowing
        it opens an exponentially growing penalty window during which every
        NACK from this peer is ignored outright.
        """
        if frame.kind != MessageKind.NACK:
            raise ProtocolError(f"not a nack frame: {frame!r}")
        now = self._clock.now()
        hardening = self._hardening
        if hardening is not None and hardening.enabled:
            if now < self._nack_ignore_until:
                self.suppressed_nacks += 1
                self._abuse("nack-flood")
                return
            if self._nack_bucket is None:
                self._nack_bucket = _Bucket(
                    hardening.nack_rate, hardening.nack_burst, now
                )
            if not self._nack_bucket.try_take(now):
                self._nack_penalty = min(
                    hardening.nack_penalty
                    if self._nack_penalty == 0.0
                    else self._nack_penalty * hardening.nack_penalty_backoff,
                    hardening.nack_penalty_max,
                )
                self._nack_ignore_until = now + self._nack_penalty
                self.suppressed_nacks += 1
                self._abuse("nack-flood")
                return
        for seq in decode_nack(frame.payload):
            state = self._in_flight.get(seq)
            if state is None:
                self.stale_nacks += 1
                if hardening is not None and hardening.enabled:
                    self._abuse("stale-nack")
                continue
            state.rto = min(state.rto * self._policy.backoff, self._policy.max_rto)
            state.deadline = now + state.rto
            state.frame.flags |= int(FrameFlags.RETRANSMIT)
            self.nack_retransmits += 1
            self.retransmitted_frames += 1
            self.retransmitted_bytes += len(state.frame.payload)
            self._emit(state.frame)

    def _abuse(self, reason: str) -> None:
        if self._on_abuse is not None:
            self._on_abuse(reason)

    def poll(self, now: Optional[float] = None) -> None:
        """Retransmit every frame whose deadline has passed."""
        if now is None:
            now = self._clock.now()
        expired = [st for st in self._in_flight.values() if st.deadline <= now]
        for state in expired:
            if state.retries >= self._policy.max_retries:
                self.failed_frames += 1
                del self._in_flight[state.frame.seq]
                if self._on_failure is not None:
                    self._on_failure(state.frame.seq, state.frame)
                continue
            state.retries += 1
            state.rto = min(state.rto * self._policy.backoff, self._policy.max_rto)
            state.deadline = now + state.rto
            state.frame.flags |= int(FrameFlags.RETRANSMIT)
            self.retransmitted_frames += 1
            self.retransmitted_bytes += len(state.frame.payload)
            self._emit(state.frame)
        self._drain_backlog()

    def next_wakeup(self) -> Optional[float]:
        """Earliest time ``poll`` has work to do, or None when idle."""
        if not self._in_flight:
            return None
        return min(st.deadline for st in self._in_flight.values())

    @property
    def unacked(self) -> int:
        return len(self._in_flight) + len(self._backlog)

    @property
    def idle(self) -> bool:
        return not self._in_flight and not self._backlog

    # -- internals --------------------------------------------------------------
    def _transmit(self, frame: Frame) -> None:
        now = self._clock.now()
        self._in_flight[frame.seq] = _InFlight(
            frame=frame, deadline=now + self._policy.initial_rto, rto=self._policy.initial_rto
        )
        self.sent_frames += 1
        self._emit(frame)

    def _drain_backlog(self) -> None:
        while self._backlog and len(self._in_flight) < self._policy.window:
            self._transmit(self._backlog.pop(0))


class ReliableReceiver:
    """Receive side of one reliable stream.

    Deduplicates, optionally restores order, and acknowledges every frame it
    sees — including duplicates, so a lost ack does not cause retransmission
    storms.

    With ``ack_delay > 0`` the receiver *coalesces*: instead of one ACK
    frame per data frame, pending seqs accumulate for up to ``ack_delay``
    seconds (or until ``max_pending_acks`` are waiting) and go out merged
    into a single selective-ack frame. The egress batcher may also drain
    them early via :meth:`take_pending_acks` to piggyback on an outbound
    batch already headed to the peer. ``ack_delay == 0`` keeps the exact
    seed behavior: one immediate ACK per frame.
    """

    #: How many seqs below the contiguous point we remember for dedupe; far
    #: larger than any sane retransmit window.
    HISTORY = 4096

    def __init__(
        self,
        source: str,
        channel: int,
        emit_ack: Callable[[Frame], None],
        deliver: Callable[[Frame], None],
        ordered: bool = True,
        ack_source: str = "",
        ack_delay: float = 0.0,
        timers=None,
        max_pending_acks: int = 64,
        clock: Optional[Clock] = None,
        hardening: Optional[ReliabilityHardening] = None,
        on_abuse: Optional[Callable[[str], None]] = None,
    ):
        if ack_delay > 0 and timers is None:
            raise ValueError("ack coalescing needs a timer service")
        self._source = source
        self._channel = channel
        self._emit_ack = emit_ack
        self._deliver = deliver
        self._ordered = ordered
        self._ack_source = ack_source or source
        self._ack_delay = ack_delay
        self._timers = timers
        self._max_pending_acks = max_pending_acks
        self._clock = clock
        self._hardening = hardening
        self._on_abuse = on_abuse
        self._dup_ack_bucket: Optional[_Bucket] = None
        self._pending_acks: List[int] = []
        self._ack_timer = None
        self._expected = 1  # next seq for in-order delivery
        self._pending: Dict[int, Frame] = {}  # out-of-order buffer
        self._seen: Set[int] = set()
        self.delivered_frames = 0
        self.duplicate_frames = 0
        self.coalesced_acks = 0
        self.ack_frames_sent = 0
        # Abuse-defense statistics (all zero unless hardening fires).
        self.replayed_frames = 0
        self.horizon_drops = 0
        self.suppressed_dup_acks = 0

    def _hardened(self) -> bool:
        return (
            self._hardening is not None
            and self._hardening.enabled
            and self._clock is not None
        )

    def on_frame(self, frame: Frame) -> None:
        if frame.source != self._source or frame.channel != self._channel:
            raise ProtocolError(
                f"frame {frame!r} does not belong to stream "
                f"({self._source}, {self._channel})"
            )
        seq = frame.seq
        if self._hardened():
            window = self._hardening.replay_window
            if seq < self._expected - window:
                # Ancient replay: do NOT re-ack — the re-ACK is exactly the
                # amplification a replay flood is after.
                self.replayed_frames += 1
                self._abuse("replay")
                return
            if seq >= self._expected + window:
                # Far-future seq: buffering it would let an attacker grow
                # the out-of-order buffer without bound.
                self.horizon_drops += 1
                self._abuse("horizon")
                return
            if seq < self._expected or seq in self._seen:
                # In-window duplicate: re-ACK (lost-ACK recovery), but on a
                # budget so a duplicate firehose cannot mint ACK traffic.
                if self._dup_ack_bucket is None:
                    self._dup_ack_bucket = _Bucket(
                        self._hardening.dup_ack_rate,
                        self._hardening.dup_ack_burst,
                        self._clock.now(),
                    )
                if self._dup_ack_bucket.try_take(self._clock.now()):
                    self._ack([seq])
                else:
                    self.suppressed_dup_acks += 1
                    self._abuse("dup-ack")
                self.duplicate_frames += 1
                return
        # Always ack, even duplicates.
        self._ack([seq])
        if seq < self._expected or seq in self._seen:
            self.duplicate_frames += 1
            return
        self._seen.add(seq)
        if len(self._seen) > self.HISTORY:
            # Forget ancient seqs; anything older than expected is a dup anyway.
            self._seen = {s for s in self._seen if s >= self._expected}
        if not self._ordered:
            self.delivered_frames += 1
            self._deliver(frame)
            if seq == self._expected:
                # Advance the low-water mark past everything already seen.
                self._seen.discard(self._expected)
                self._expected += 1
                while self._expected in self._seen:
                    self._seen.discard(self._expected)
                    self._expected += 1
            return
        if seq == self._expected:
            self._deliver_in_order(frame)
            # Flush buffered successors.
            while self._expected in self._pending:
                self._deliver_in_order(self._pending.pop(self._expected))
        else:
            self._pending[seq] = frame

    def _deliver_in_order(self, frame: Frame) -> None:
        self.delivered_frames += 1
        self._deliver(frame)
        self._seen.discard(frame.seq)
        self._expected = frame.seq + 1

    def _ack(self, seqs: List[int]) -> None:
        if self._ack_delay <= 0:
            self._emit_ack(self._make_ack(seqs))
            return
        for seq in seqs:
            if seq not in self._pending_acks:
                self._pending_acks.append(seq)
        self.coalesced_acks += len(seqs)
        if len(self._pending_acks) >= self._max_pending_acks:
            self.flush_acks()
            return
        if self._ack_timer is None:
            self._ack_timer = self._timers.schedule(self._ack_delay, self.flush_acks)

    def _make_ack(self, seqs: List[int]) -> Frame:
        self.ack_frames_sent += 1
        return Frame(
            kind=MessageKind.ACK,
            source=self._ack_source,
            payload=encode_ack(seqs),
            channel=self._channel,
        )

    def _cancel_ack_timer(self) -> None:
        if self._ack_timer is not None:
            if hasattr(self._ack_timer, "cancel"):
                self._ack_timer.cancel()
            self._ack_timer = None

    def flush_acks(self) -> None:
        """Emit one merged ACK frame covering every pending seq."""
        self._cancel_ack_timer()
        if not self._pending_acks:
            return
        seqs = sorted(self._pending_acks)
        self._pending_acks.clear()
        self._emit_ack(self._make_ack(seqs))

    def take_pending_acks(self) -> List[Frame]:
        """Drain pending coalesced ACKs for piggybacking.

        Returns zero or one merged ACK frame. The caller takes ownership of
        getting it to the peer (e.g. inside an outbound batch); the delay
        timer is cancelled so the seqs are not acked twice.
        """
        self._cancel_ack_timer()
        if not self._pending_acks:
            return []
        seqs = sorted(self._pending_acks)
        self._pending_acks.clear()
        return [self._make_ack(seqs)]

    @property
    def pending_ack_count(self) -> int:
        return len(self._pending_acks)

    def _abuse(self, reason: str) -> None:
        if self._on_abuse is not None:
            self._on_abuse(reason)


__all__ = [
    "RetransmitPolicy",
    "ReliabilityHardening",
    "ReliableSender",
    "ReliableReceiver",
    "encode_ack",
    "decode_ack",
    "encode_nack",
    "decode_nack",
]
