"""Datagram batching — amortizing per-packet overhead on the data plane.

The simulated medium (like the real stacks it stands in for) charges a
fixed per-datagram header cost (:data:`~repro.simnet.packet.WIRE_OVERHEAD_BYTES`),
so fan-out workloads that emit many small frames pay that cost linearly.
This module packs multiple small frames destined for the *same*
:class:`~repro.simnet.packet.Destination` into one ``BATCH`` datagram, up
to a configurable MTU budget, holding frames for at most a small flush
deadline so latency-critical traffic is never held hostage.

Wire format of a ``BATCH`` payload::

    uint16 count (>= 1)
    count x { uint32 length; length bytes = one complete encoded frame }

Inner frames are ordinary frames (header included), so the receive side
unbatches with :func:`Frame.decode` and feeds each inner frame through the
normal dispatch path — primitives gain the win without any logic changes.
Nested batches and fragments inside a batch are illegal; the decoder
rejects them (a fragment is produced *below* the batching stage, a batch
never nests by construction).

Two invariants the property suite (``tests/property/test_batching_properties.py``)
pins down:

- **Single-frame parity**: a flush holding exactly one frame emits that
  frame raw, not wrapped — its datagram is byte-identical to the unbatched
  wire format. With batching disabled nothing here runs at all, so the
  wire stays byte-for-byte the seed format.
- **Band purity**: the batcher is keyed by (destination, priority band); a
  batch never spans bands, so batching composes with the egress shaper's
  strict-priority drain. The one sanctioned exception is ACK piggybacking:
  tiny coalesced ACK frames may ride along in whatever batch is leaving
  for their destination anyway (see ``piggyback`` below).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.protocol.frames import Frame, MessageKind
from repro.simnet.packet import Destination
from repro.util.clock import Clock
from repro.util.errors import EncodingError, ProtocolError

_COUNT = struct.Struct("<H")
_LEN = struct.Struct("<I")

#: Bytes one batch entry adds on top of the inner frame's own encoding.
ENTRY_OVERHEAD = _LEN.size

#: Inner kinds the decoder rejects: batches never nest, and fragmentation
#: happens below the batching stage.
_FORBIDDEN_INNER = (MessageKind.BATCH, MessageKind.FRAGMENT)


def batch_header_size(source: str) -> int:
    """Encoded size of an *empty* batch frame from ``source`` (outer frame
    header plus the count word)."""
    return Frame(kind=MessageKind.BATCH, source=source).header_size + _COUNT.size


def encode_batch_payload(encoded_frames: List[bytes]) -> bytes:
    """Pack already-encoded frames into one BATCH payload."""
    if not encoded_frames:
        raise EncodingError("a batch must contain at least one frame")
    if len(encoded_frames) > 0xFFFF:
        raise EncodingError("too many frames in one batch")
    out = [_COUNT.pack(len(encoded_frames))]
    for raw in encoded_frames:
        out.append(_LEN.pack(len(raw)))
        out.append(raw)
    return b"".join(out)


def decode_batch_payload(payload: bytes) -> List[Frame]:
    """Unpack a BATCH payload into its inner frames.

    Every malformation — truncated count, inner length overrunning the
    payload, trailing garbage, zero frames, nested batch/fragment, or an
    inner frame that fails :func:`Frame.decode` — raises a clean
    :class:`EncodingError`, never a different exception and never a silent
    partial result.
    """
    if len(payload) < _COUNT.size:
        raise EncodingError(
            f"batch payload truncated inside header: {len(payload)} bytes"
        )
    (count,) = _COUNT.unpack_from(payload)
    if count == 0:
        raise EncodingError("zero-frame batch")
    frames: List[Frame] = []
    offset = _COUNT.size
    for index in range(count):
        if len(payload) < offset + _LEN.size:
            raise EncodingError(
                f"batch payload truncated in length prefix of frame {index}"
            )
        (length,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        if len(payload) < offset + length:
            raise EncodingError(
                f"inner frame {index} overruns batch payload "
                f"({length} bytes declared, {len(payload) - offset} left)"
            )
        try:
            frame = Frame.decode(payload[offset : offset + length])
        except ProtocolError as exc:
            raise EncodingError(f"inner frame {index} malformed: {exc}") from exc
        if frame.kind in _FORBIDDEN_INNER:
            raise EncodingError(
                f"inner frame {index} has illegal kind {frame.kind.name}"
            )
        frames.append(frame)
        offset += length
    if offset != len(payload):
        raise EncodingError(
            f"{len(payload) - offset} trailing bytes after batch frames"
        )
    return frames


def make_batch_frame(source: str, encoded_frames: List[bytes]) -> Frame:
    """Build the outer BATCH frame around already-encoded inner frames."""
    return Frame(
        kind=MessageKind.BATCH,
        source=source,
        payload=encode_batch_payload(encoded_frames),
    )


def encode_batch_views(encoded_frames: List[bytes]) -> List[bytes]:
    """The BATCH payload as a scatter/gather buffer list — no join.

    ``b"".join(encode_batch_views(fs)) == encode_batch_payload(fs)`` by
    construction; the already-encoded inner frames are referenced, never
    copied.
    """
    if not encoded_frames:
        raise EncodingError("a batch must contain at least one frame")
    if len(encoded_frames) > 0xFFFF:
        raise EncodingError("too many frames in one batch")
    views: List[bytes] = [_COUNT.pack(len(encoded_frames))]
    for raw in encoded_frames:
        views.append(_LEN.pack(len(raw)))
        views.append(raw)
    return views


class WireDatagram:
    """A fully encoded outbound BATCH datagram held as a buffer list.

    The zero-copy twin of :func:`make_batch_frame`: instead of joining the
    inner frames into one contiguous payload, the datagram stays a
    scatter/gather list (outer header, count word, per-frame length
    prefixes, the encoded frames themselves) that ``socket.sendmsg`` can
    put on the wire directly. It quacks like a :class:`Frame` where the
    egress shaper and frame transport need it (``kind``/``source``/
    ``encode``/``encode_views``); ``encode()`` joins lazily, so any
    non-scatter transport downstream still sees byte-identical datagrams.
    """

    __slots__ = ("kind", "source", "channel", "seq", "flags", "views",
                 "wire_size", "frame_count")

    def __init__(self, source: str, views: List[bytes], frame_count: int):
        self.kind = MessageKind.BATCH
        self.source = source
        self.channel = 0
        self.seq = 0
        self.flags = 0
        self.views = views
        self.wire_size = sum(len(v) for v in views)
        self.frame_count = frame_count

    def encode(self) -> bytes:
        return b"".join(self.views)

    def encode_views(self) -> List[bytes]:
        return self.views

    @property
    def header_size(self) -> int:
        return len(self.views[0])

    @property
    def payload(self) -> bytes:
        """The joined BATCH payload — normative fallback, rarely taken."""
        return b"".join(self.views[1:])

    def __repr__(self) -> str:
        return (
            f"<WireDatagram BATCH src={self.source} frames={self.frame_count} "
            f"{self.wire_size}B>"
        )


def make_wire_datagram(source: str, encoded_frames: List[bytes]) -> WireDatagram:
    """Assemble the zero-copy BATCH datagram around encoded inner frames."""
    outer = Frame(kind=MessageKind.BATCH, source=source)
    views = outer.encode_views()
    views.extend(encode_batch_views(encoded_frames))
    return WireDatagram(source, views, len(encoded_frames))


#: Emit callback: ``(destination, frame, band)`` — either one raw frame
#: (single-frame flush) or one assembled BATCH frame (a :class:`Frame`, or
#: a :class:`WireDatagram` buffer list in zero-copy mode).
EmitFn = Callable[[Destination, Frame, int], None]
#: Piggyback hook: returns extra (ACK) frames to ride along to a
#: destination. Called at flush time with the destination being flushed.
PiggybackFn = Callable[[Destination], List[Frame]]

_BatchKey = Tuple[Destination, int]


class _PendingBatch:
    __slots__ = ("frames", "encoded", "size")

    def __init__(self) -> None:
        self.frames: List[Frame] = []
        self.encoded: List[bytes] = []
        self.size = 0  # projected encoded size of the whole batch frame


class FrameBatcher:
    """Per-(destination, band) frame accumulator with a flush deadline.

    Sans-io: frames come in through :meth:`add`, batches (or raw single
    frames) leave through the ``emit`` callback. Frames are encoded at add
    time, so later mutation (e.g. the reliability layer setting the
    RETRANSMIT flag on a retransmission) cannot tear a batch entry.

    Parameters
    ----------
    mtu:
        Byte budget for one batch *datagram* (outer frame included). A
        frame whose own datagram already exceeds the budget bypasses
        batching entirely — it is emitted raw (and fragments downstream
        as before).
    flush_interval:
        Upper bound on how long a frame may sit waiting for companions.
        One timer serves all pending batches: it arms on the first add and
        flushes everything when it fires.
    piggyback:
        Optional hook returning pending coalesced-ACK frames for a
        destination; whatever fits the remaining budget joins the batch,
        the rest is emitted raw immediately after.
    zero_copy:
        When true, multi-frame flushes emit a :class:`WireDatagram`
        (scatter/gather buffer list, no payload join) instead of a joined
        BATCH :class:`Frame`. Wire bytes are identical either way; only
        set this when the transport underneath advertises scatter support,
        so the deferred join is never actually paid.
    """

    def __init__(
        self,
        clock: Clock,
        timers,
        source: str,
        emit: EmitFn,
        mtu: int = 1200,
        flush_interval: float = 0.002,
        piggyback: Optional[PiggybackFn] = None,
        zero_copy: bool = False,
    ):
        if mtu < batch_header_size(source) + ENTRY_OVERHEAD + 1:
            raise EncodingError(f"batch mtu {mtu} cannot fit any frame")
        self._clock = clock
        self._timers = timers
        self._source = source
        self._emit = emit
        self._mtu = mtu
        self._flush_interval = flush_interval
        self._piggyback = piggyback
        self._zero_copy = zero_copy
        self._base = batch_header_size(source)
        self._pending: Dict[_BatchKey, _PendingBatch] = {}
        self._flush_timer = None
        # Telemetry (mirrored into the MetricsRegistry by the egress stage).
        self.batches_sent = 0
        self.batched_frames = 0
        self.single_flushes = 0
        self.oversize_bypasses = 0
        self.piggybacked_acks = 0

    @property
    def pending_frames(self) -> int:
        return sum(len(b.frames) for b in self._pending.values())

    # -- input ---------------------------------------------------------------
    def add(self, destination: Destination, frame: Frame, band: int = 0) -> None:
        """Queue ``frame`` for ``destination``; flushes as needed to keep
        every batch datagram within the MTU budget."""
        raw = frame.encode()
        entry = ENTRY_OVERHEAD + len(raw)
        if self._base + entry > self._mtu:
            # Too big to share a datagram with anyone: flush what this key
            # has (order!) and send the frame raw.
            key = (destination, band)
            if key in self._pending:
                self._flush_key(key)
            self.oversize_bypasses += 1
            self._emit(destination, frame, band)
            return
        key = (destination, band)
        batch = self._pending.get(key)
        if batch is not None and batch.size + entry > self._mtu:
            self._flush_key(key)
            batch = None
        if batch is None:
            batch = self._pending[key] = _PendingBatch()
            batch.size = self._base
        batch.frames.append(frame)
        batch.encoded.append(raw)
        batch.size += entry
        self._arm_flush()

    # -- flushing ------------------------------------------------------------
    def flush(self) -> None:
        """Flush every pending batch immediately."""
        while self._pending:
            key = next(iter(self._pending))
            self._flush_key(key)
        if self._flush_timer is not None and hasattr(self._flush_timer, "cancel"):
            self._flush_timer.cancel()
        self._flush_timer = None

    def _arm_flush(self) -> None:
        if self._flush_timer is None:
            self._flush_timer = self._timers.schedule(
                self._flush_interval, self._on_flush_timer
            )

    def _on_flush_timer(self) -> None:
        self._flush_timer = None
        while self._pending:
            self._flush_key(next(iter(self._pending)))

    def _flush_key(self, key: _BatchKey) -> None:
        batch = self._pending.pop(key)
        destination, band = key
        overflow: List[Frame] = []
        if self._piggyback is not None:
            for extra in self._piggyback(destination):
                raw = extra.encode()
                entry = ENTRY_OVERHEAD + len(raw)
                if batch.size + entry <= self._mtu:
                    batch.frames.append(extra)
                    batch.encoded.append(raw)
                    batch.size += entry
                    self.piggybacked_acks += 1
                else:
                    overflow.append(extra)
        if len(batch.frames) == 1:
            # Single-frame parity: no wrapper, byte-identical to the
            # unbatched wire format.
            self.single_flushes += 1
            self._emit(destination, batch.frames[0], band)
        else:
            self.batches_sent += 1
            self.batched_frames += len(batch.frames)
            assembled = (
                make_wire_datagram(self._source, batch.encoded)
                if self._zero_copy
                else make_batch_frame(self._source, batch.encoded)
            )
            self._emit(destination, assembled, band)
        for extra in overflow:
            self._emit(destination, extra, band)


__all__ = [
    "FrameBatcher",
    "WireDatagram",
    "encode_batch_payload",
    "encode_batch_views",
    "decode_batch_payload",
    "make_batch_frame",
    "make_wire_datagram",
    "batch_header_size",
    "ENTRY_OVERHEAD",
]
