"""Canonical map from every :class:`~repro.protocol.frames.MessageKind` to
the payload layout it carries on the wire.

This is the single declarative source the schema lockfile (REP008) is
generated from and checked against. Two reference styles:

- ``"<module rel path>::<SCHEMA_NAME>"`` — the payload is a typed schema
  (a module-level ``*_SCHEMA`` constant built from the encoding type
  system). Its lockfile fingerprint is
  :meth:`repro.encoding.types.DataType.fingerprint`.
- ``"manual:<module rel path>"`` — the payload is hand-packed with
  ``struct`` in that module (ACK bitsets, fragment headers, batch
  framing, the TCP-like baseline). Its fingerprint covers the module's
  literal ``struct.Struct`` format strings.

The dict MUST stay a literal of string constants: the static checker
reads it from the AST without importing this package, which is also how
fixture trees under ``tests/`` get their own registries. Adding a
``MessageKind`` without a row here fails REP008.
"""

from __future__ import annotations

import importlib
from typing import Dict, Optional

from repro.encoding.types import DataType

KIND_SCHEMA_REFS: Dict[str, str] = {
    # Container control plane (announce/discovery).
    "ANNOUNCE": "repro/container/records.py::ANNOUNCE_SCHEMA",
    "HEARTBEAT": "repro/container/records.py::HEARTBEAT_SCHEMA",
    "BYE": "repro/container/records.py::BYE_SCHEMA",
    # Variables.
    "VAR_SAMPLE": "repro/primitives/wire.py::VAR_SAMPLE_SCHEMA",
    "VAR_INITIAL_REQUEST": "repro/primitives/wire.py::VAR_INITIAL_REQUEST_SCHEMA",
    "VAR_INITIAL_RESPONSE": "repro/primitives/wire.py::VAR_INITIAL_RESPONSE_SCHEMA",
    # Events. Subscribe and unsubscribe share one payload shape; the kind
    # byte carries the polarity.
    "EVENT": "repro/primitives/wire.py::EVENT_MESSAGE_SCHEMA",
    "EVENT_SUBSCRIBE": "repro/primitives/wire.py::EVENT_SUBSCRIBE_SCHEMA",
    "EVENT_UNSUBSCRIBE": "repro/primitives/wire.py::EVENT_SUBSCRIBE_SCHEMA",
    # Remote invocation.
    "RPC_REQUEST": "repro/primitives/wire.py::RPC_REQUEST_SCHEMA",
    "RPC_RESPONSE": "repro/primitives/wire.py::RPC_RESPONSE_SCHEMA",
    # File transmission.
    "FILE_ANNOUNCE": "repro/primitives/wire.py::FILE_ANNOUNCE_SCHEMA",
    "FILE_SUBSCRIBE": "repro/primitives/wire.py::FILE_SUBSCRIBE_SCHEMA",
    "FILE_CHUNK": "repro/primitives/wire.py::FILE_CHUNK_SCHEMA",
    "FILE_STATUS_REQUEST": "repro/primitives/wire.py::FILE_STATUS_REQUEST_SCHEMA",
    "FILE_COMPLETION_ACK": "repro/primitives/wire.py::FILE_ACK_SCHEMA",
    "FILE_COMPLETION_NACK": "repro/primitives/wire.py::FILE_NACK_SCHEMA",
    "FILE_DONE": "repro/primitives/wire.py::FILE_DONE_SCHEMA",
    # Reliability, fragmentation, batching: hand-packed layouts.
    "ACK": "manual:repro/protocol/reliability.py",
    "NACK": "manual:repro/protocol/reliability.py",
    "FRAGMENT": "manual:repro/protocol/fragmentation.py",
    "BATCH": "manual:repro/protocol/batching.py",
    # Fleet-scale discovery.
    "GOSSIP": "repro/container/gossip.py::GOSSIP_SCHEMA",
    "ZONE_SUMMARY": "repro/container/gossip.py::ZONE_SUMMARY_SCHEMA",
    # TCP-like baseline stream (experiment E5).
    "STREAM_SYN": "manual:repro/protocol/tcp_like.py",
    "STREAM_SYNACK": "manual:repro/protocol/tcp_like.py",
    "STREAM_SEGMENT": "manual:repro/protocol/tcp_like.py",
    "STREAM_ACK": "manual:repro/protocol/tcp_like.py",
}


def _module_name(rel_path: str) -> str:
    return rel_path[: -len(".py")].replace("/", ".")


def schema_for(kind_name: str) -> Optional[DataType]:
    """Resolve a kind's schema object at runtime (None for manual layouts).

    Tests use this to pin the statically-computed lockfile fingerprints to
    the live schema objects.
    """
    ref = KIND_SCHEMA_REFS.get(kind_name)
    if ref is None or ref.startswith("manual:"):
        return None
    module_rel, _, schema_name = ref.partition("::")
    module = importlib.import_module(_module_name(module_rel))
    datatype = getattr(module, schema_name)
    if not isinstance(datatype, DataType):
        raise TypeError(f"{ref} is not a DataType")
    return datatype


__all__ = ["KIND_SCHEMA_REFS", "schema_for"]
