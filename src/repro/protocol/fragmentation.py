"""Fragmentation and reassembly.

The Transport layer has an MTU; any frame whose encoding exceeds it is
wrapped in numbered FRAGMENT frames and reassembled on the far side. Used by
remote invocation (arbitrary parameter sizes) and variable initial-value
responses; the file primitive sizes its own chunks below the MTU instead.

Fragment payload layout::

    uint32 message_id | uint16 index | uint16 total | chunk bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.protocol.frames import Frame, MessageKind
from repro.util.errors import ProtocolError

_FRAG_HEADER = struct.Struct("<IHH")

#: Reassembly buffers older than this many seconds are discarded.
REASSEMBLY_TIMEOUT = 5.0


class Fragmenter:
    """Splits oversized encoded frames into FRAGMENT frames."""

    def __init__(self, source: str, mtu: int):
        # Leave room for the fragment frame's own header and the 8-byte
        # fragment payload header.
        overhead = Frame(kind=MessageKind.FRAGMENT, source=source).header_size
        self._chunk_size = mtu - overhead - _FRAG_HEADER.size
        if self._chunk_size <= 0:
            raise ProtocolError(f"MTU {mtu} too small to carry fragments")
        self._source = source
        self._next_message_id = 1

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    def needs_fragmentation(self, encoded_frame: bytes, mtu: int) -> bool:
        return len(encoded_frame) > mtu

    def fragment(self, encoded_frame: bytes) -> list:
        """Wrap an encoded frame into a list of FRAGMENT frames."""
        message_id = self._next_message_id
        self._next_message_id += 1
        # Chunk through a memoryview so each byte is copied once (into the
        # fragment payload), not twice via intermediate slices.
        view = memoryview(encoded_frame)
        chunks = [
            view[i : i + self._chunk_size]
            for i in range(0, len(encoded_frame), self._chunk_size)
        ] or [b""]
        total = len(chunks)
        if total > 0xFFFF:
            raise ProtocolError(f"message needs {total} fragments; limit is 65535")
        return [
            Frame(
                kind=MessageKind.FRAGMENT,
                source=self._source,
                payload=b"".join((_FRAG_HEADER.pack(message_id, index, total), chunk)),
            )
            for index, chunk in enumerate(chunks)
        ]


@dataclass
class _PartialMessage:
    total: int
    chunks: Dict[int, bytes] = field(default_factory=dict)
    first_seen: float = 0.0


class Reassembler:
    """Rebuilds encoded frames from FRAGMENT frames.

    Keyed by (source, message_id); incomplete messages expire after
    :data:`REASSEMBLY_TIMEOUT` (fragments ride best-effort transports, so a
    lost fragment must not leak a buffer forever).
    """

    def __init__(self, timeout: float = REASSEMBLY_TIMEOUT):
        self._timeout = timeout
        self._partial: Dict[Tuple[str, int], _PartialMessage] = {}
        self.expired_messages = 0

    def on_fragment(self, frame: Frame, now: float) -> Optional[bytes]:
        """Feed one FRAGMENT frame; returns the full encoded frame when the
        last piece arrives, else None."""
        if frame.kind != MessageKind.FRAGMENT:
            raise ProtocolError(f"not a fragment: {frame!r}")
        if len(frame.payload) < _FRAG_HEADER.size:
            raise ProtocolError("fragment payload too short")
        message_id, index, total = _FRAG_HEADER.unpack_from(frame.payload)
        if total == 0 or index >= total:
            raise ProtocolError(f"bad fragment index {index}/{total}")
        chunk = frame.payload[_FRAG_HEADER.size :]
        key = (frame.source, message_id)
        partial = self._partial.get(key)
        if partial is None:
            partial = _PartialMessage(total=total, first_seen=now)
            self._partial[key] = partial
        elif partial.total != total:
            raise ProtocolError(
                f"fragment {key} disagrees on total ({total} != {partial.total})"
            )
        partial.chunks[index] = chunk
        if len(partial.chunks) == total:
            del self._partial[key]
            return b"".join(partial.chunks[i] for i in range(total))
        return None

    def expire(self, now: float) -> int:
        """Drop incomplete messages older than the timeout; returns count."""
        stale = [
            key
            for key, partial in self._partial.items()
            if now - partial.first_seen > self._timeout
        ]
        for key in stale:
            del self._partial[key]
        self.expired_messages += len(stale)
        return len(stale)

    @property
    def pending(self) -> int:
        return len(self._partial)


__all__ = ["Fragmenter", "Reassembler", "REASSEMBLY_TIMEOUT"]
