"""Frame format.

Every datagram on the wire is one frame::

    0      2      3      4       5        7        11
    +------+------+------+-------+--------+---------+-----------+---------+
    | 'UA' | ver  | kind | flags | channel|   seq   | src-len+s | payload |
    +------+------+------+-------+--------+---------+-----------+---------+

- ``kind`` states the intent of the message (the Protocol subsystem's job
  per §6); one value per primitive interaction.
- ``channel`` scopes sequence numbers: each (source, channel) pair is an
  independent reliable stream.
- ``src`` is the sending container id, so receivers can demultiplex without
  trusting network addresses.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.util.errors import ProtocolError

MAGIC = b"UA"
VERSION = 1

_HEADER = struct.Struct("<2sBBBHI")  # magic, version, kind, flags, channel, seq
_SRC_LEN = struct.Struct("<B")
# The full fixed prefix (header + source length) packed/unpacked in one call.
_HEADER_SRC = struct.Struct("<2sBBBHIB")

#: Source ids are container ids — a handful of distinct strings per process —
#: so their UTF-8 encodings are cached instead of re-encoded per frame.
_SRC_CACHE: dict = {}


def _encode_source(source: str) -> bytes:
    raw = _SRC_CACHE.get(source)
    if raw is None:
        raw = source.encode("utf-8")
        if len(_SRC_CACHE) >= 1024:
            _SRC_CACHE.clear()
        _SRC_CACHE[source] = raw
    return raw


class MessageKind(enum.IntEnum):
    """Intent of a frame. Grouped by subsystem."""

    # Container control plane (announce/discovery, §3 "Name management").
    ANNOUNCE = 1
    HEARTBEAT = 2
    BYE = 3
    # Variables (§4.1).
    VAR_SAMPLE = 10
    VAR_INITIAL_REQUEST = 11
    VAR_INITIAL_RESPONSE = 12
    # Events (§4.2).
    EVENT = 20
    EVENT_SUBSCRIBE = 21
    EVENT_UNSUBSCRIBE = 22
    # Remote invocation (§4.3).
    RPC_REQUEST = 30
    RPC_RESPONSE = 31
    # File transmission (§4.4) — announce/transfer/completion phases.
    FILE_ANNOUNCE = 40
    FILE_SUBSCRIBE = 41
    FILE_CHUNK = 42
    FILE_STATUS_REQUEST = 43
    FILE_COMPLETION_ACK = 44
    FILE_COMPLETION_NACK = 45
    FILE_DONE = 46
    # Generic reliability and fragmentation support.
    ACK = 50
    FRAGMENT = 51
    #: Several small frames to the same destination packed in one datagram.
    BATCH = 52
    #: Negative ack: explicit retransmit request for the listed seqs.
    NACK = 53
    # Fleet-scale discovery (gossip dissemination + hierarchical federation).
    #: A batch of control-plane rumors (announce/heartbeat/bye payloads with
    #: per-origin versions) forwarded peer-to-peer instead of multicast.
    GOSSIP = 54
    #: A relay's aggregate view of its zone, published on the backbone.
    ZONE_SUMMARY = 55
    # TCP-like baseline stream (experiment E5 only).
    STREAM_SYN = 60
    STREAM_SYNACK = 61
    STREAM_SEGMENT = 62
    STREAM_ACK = 63


# Plain dict lookup; MessageKind(value) pays for enum __call__ on every frame.
_KIND_BY_VALUE = {int(k): k for k in MessageKind}


class FrameFlags(enum.IntFlag):
    NONE = 0
    #: Sender requests reliable (acked) delivery of this frame.
    RELIABLE = 1
    #: This frame is a retransmission.
    RETRANSMIT = 2


@dataclass
class Frame:
    """One protocol frame, the unit the Transport layer moves."""

    kind: MessageKind
    source: str  # container id
    payload: bytes = b""
    channel: int = 0
    seq: int = 0
    flags: int = 0
    version: int = field(default=VERSION)

    MAX_SOURCE_LEN = 255

    def encode(self) -> bytes:
        src = _encode_source(self.source)
        if len(src) > self.MAX_SOURCE_LEN:
            raise ProtocolError(f"source id too long: {self.source!r}")
        return (
            _HEADER_SRC.pack(
                MAGIC,
                self.version,
                int(self.kind),
                int(self.flags),
                self.channel & 0xFFFF,
                self.seq & 0xFFFFFFFF,
                len(src),
            )
            + src
            + self.payload
        )

    def encode_views(self) -> list:
        """Encode as a scatter/gather buffer list: ``[header_prefix, payload]``.

        The payload buffer is returned as-is — no join, no copy — so a
        scatter-capable transport (``socket.sendmsg``) can put the frame on
        the wire without ever materializing the contiguous datagram.
        ``b"".join(encode_views())`` equals :meth:`encode` by construction.
        """
        src = _encode_source(self.source)
        if len(src) > self.MAX_SOURCE_LEN:
            raise ProtocolError(f"source id too long: {self.source!r}")
        prefix = (
            _HEADER_SRC.pack(
                MAGIC,
                self.version,
                int(self.kind),
                int(self.flags),
                self.channel & 0xFFFF,
                self.seq & 0xFFFFFFFF,
                len(src),
            )
            + src
        )
        if self.payload:
            return [prefix, self.payload]
        return [prefix]

    @classmethod
    def decode(cls, data: bytes) -> "Frame":
        if len(data) < _HEADER_SRC.size:
            raise ProtocolError(f"frame too short: {len(data)} bytes")
        magic, version, kind, flags, channel, seq, src_len = _HEADER_SRC.unpack_from(
            data
        )
        if magic != MAGIC:
            raise ProtocolError(f"bad magic {magic!r}")
        if version != VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        kind_enum = _KIND_BY_VALUE.get(kind)
        if kind_enum is None:
            raise ProtocolError(f"unknown message kind {kind}")
        offset = _HEADER_SRC.size
        if len(data) < offset + src_len:
            raise ProtocolError("frame truncated inside source id")
        source = data[offset : offset + src_len].decode("utf-8")
        payload = data[offset + src_len :]
        return cls(
            kind=kind_enum,
            source=source,
            payload=payload,
            channel=channel,
            seq=seq,
            flags=flags,
            version=version,
        )

    @property
    def header_size(self) -> int:
        return _HEADER.size + _SRC_LEN.size + len(_encode_source(self.source))

    def __repr__(self) -> str:
        return (
            f"<Frame {self.kind.name} src={self.source} ch={self.channel} "
            f"seq={self.seq} {len(self.payload)}B>"
        )


def header_fingerprint() -> str:
    """Wire-compatibility fingerprint of the frame *header* layout.

    Locked in ``schemas.lock.json`` alongside the per-kind payload
    fingerprints (rule REP008): any change to the magic, version, or the
    packed header format is a protocol break every peer must agree on.
    """
    import hashlib

    text = f"{MAGIC!r}|v{VERSION}|{_HEADER.format}|{_SRC_LEN.format}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


__all__ = ["Frame", "MessageKind", "FrameFlags", "MAGIC", "VERSION", "header_fingerprint"]
