"""Ingress admission control — the container's defense-in-depth front door.

The container is the single network choke point for all four primitives
(§3), which makes it the right — and only — place to decide whether a
frame deserves any further work. This module is that decision, three
mechanisms deep, all sans-io and all **off by default** (the wire and the
dispatch path stay byte/behavior-identical to the seed until a policy is
armed, the same bar batching and the sanitizers meet):

1. **Token-bucket rate limiting**, per remote source and per (source,
   priority band). A flooding peer exhausts its own buckets and its frames
   are dropped before links, primitives or the scheduler ever see them;
   every other source keeps its independent budget, so a Variables-band
   firehose cannot consume the Events/RPC admission capacity of anyone.
2. **Per-source quarantine with decay.** Sources that repeatedly send
   malformed or unparseable traffic (the fuzz-decoder rejection paths:
   ``Frame.decode``, BATCH unbatching, wire-schema payload decodes) accrue
   a misbehavior score. Past the threshold the source is quarantined —
   every frame dropped unexamined — for a window that grows exponentially
   on repeat offenses; the score decays with time so an isolated glitch is
   forgiven. Unparseable datagrams carry no trustworthy source id, so
   quarantine also keys on the network address.
3. **Band-weighted ingress scheduling** (:class:`IngressScheduler`): the
   ingress twin of the egress shaper's per-band queues. Admitted data
   frames are queued per priority band and drained in weighted rounds, so
   even admitted low-priority floods cannot starve Events/RPC dispatch,
   and each bounded band queue sheds (oldest-first) under sustained
   pressure instead of growing without bound.

Every drop is *counted* — ``admission_drops{source,band,reason}``,
``quarantines{source}``, ``malformed_frames{source}``,
``ingress_overflow{band}`` in the container's MetricsRegistry, with
state-transition events in the FlightRecorder — never silent (rule REP005
exists to keep it that way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from collections import deque

from repro.protocol.frames import Frame, MessageKind

#: Default per-(source, band) admission rates in frames/second. Band 0
#: (control plane: ANNOUNCE/HEARTBEAT/BYE/ACK) deliberately has no
#: per-band bucket — failure detection must never be starved by its own
#: defenses — but control frames still debit the per-source aggregate, so
#: a heartbeat flood is caught there.
DEFAULT_BAND_RATES: Dict[int, float] = {
    1: 500.0,  # events
    2: 1000.0,  # variables
    3: 500.0,  # invocations / streams
    4: 2000.0,  # bulk transfer (chunk trains are legitimately dense)
}

#: Frames delivered per band per drain round of the ingress scheduler.
#: Events and invocations outweigh variables; bulk gets the leftovers.
DEFAULT_INGRESS_WEIGHTS: Dict[int, int] = {0: 16, 1: 8, 2: 2, 3: 6, 4: 1}

_NUM_BANDS = 5


class TokenBucket:
    """A minimal token bucket: ``rate`` tokens/second up to ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Debit ``amount`` tokens if available; refills lazily."""
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the ingress admission layer.

    ``enabled=False`` (the default) keeps the whole layer inert: ``admit``
    returns True without touching any state and the wire/dispatch behavior
    is identical to the seed.
    """

    enabled: bool = False
    #: Aggregate frames/second admitted per remote source (all bands);
    #: ``None`` disables the aggregate bucket.
    source_rate: Optional[float] = 2000.0
    source_burst: float = 256.0
    #: Per-(source, band) frames/second; ``None`` uses
    #: :data:`DEFAULT_BAND_RATES`. A band absent from the mapping has no
    #: band bucket. ``{}`` disables per-band limiting entirely.
    band_rates: Optional[Mapping[int, float]] = None
    band_burst: float = 64.0
    #: Misbehavior score that triggers quarantine, and its decay/second.
    quarantine_threshold: float = 5.0
    quarantine_decay: float = 1.0
    #: First quarantine window; repeat offenses multiply by ``backoff`` up
    #: to ``max_duration``.
    quarantine_duration: float = 2.0
    quarantine_backoff: float = 2.0
    quarantine_max_duration: float = 30.0
    #: Band-weighted ingress dispatch (see :class:`IngressScheduler`).
    ingress_scheduling: bool = False
    ingress_weights: Optional[Mapping[int, int]] = None
    ingress_queue_limit: int = 512

    def __post_init__(self) -> None:
        if self.source_rate is not None and self.source_rate <= 0:
            raise ValueError("source_rate must be positive (or None)")
        if self.source_burst < 1 or self.band_burst < 1:
            raise ValueError("admission bursts must be >= 1")
        for band, rate in (self.band_rates or {}).items():
            if not (0 <= band < _NUM_BANDS) or rate <= 0:
                raise ValueError(f"invalid band rate {band}={rate}")
        if self.quarantine_threshold <= 0 or self.quarantine_decay < 0:
            raise ValueError("invalid quarantine threshold/decay")
        if (
            self.quarantine_duration <= 0
            or self.quarantine_backoff < 1.0
            or self.quarantine_max_duration < self.quarantine_duration
        ):
            raise ValueError("invalid quarantine durations")
        for band, weight in (self.ingress_weights or {}).items():
            if not (0 <= band < _NUM_BANDS) or weight < 1:
                raise ValueError(f"invalid ingress weight {band}={weight}")
        if self.ingress_queue_limit < 1:
            raise ValueError("ingress_queue_limit must be >= 1")


#: A policy with every defense armed at its defaults — what
#: ``SimRuntime.enable_admission()`` and ``repro.cli attack`` use.
HARDENED_ADMISSION = AdmissionPolicy(enabled=True, ingress_scheduling=True)


class _SourceState:
    __slots__ = (
        "bucket",
        "band_buckets",
        "score",
        "score_stamp",
        "quarantined_until",
        "quarantine_count",
        "last_drop_logged",
    )

    def __init__(self) -> None:
        self.bucket: Optional[TokenBucket] = None
        self.band_buckets: Dict[int, TokenBucket] = {}
        self.score = 0.0
        self.score_stamp = 0.0
        self.quarantined_until = 0.0
        self.quarantine_count = 0
        self.last_drop_logged = -1.0


ClassifyFn = Callable[[MessageKind], int]


class AdmissionController:
    """Evaluates the :class:`AdmissionPolicy` at frame ingress.

    Owned by the container; consulted in ``_on_frame`` before any control
    handling, reliability processing or primitive dispatch. ``admit``
    answers "does this frame deserve further work?"; ``note_malformed`` is
    the quarantine trigger fed by every decode-rejection path.

    Parameters
    ----------
    clock:
        Time source (virtual or wall).
    classify:
        ``MessageKind -> priority band``; the container passes the egress
        shaper's band map so ingress and egress agree on what a band is.
    metrics / recorder:
        Where drops, quarantines and malformed counts are surfaced.
    """

    def __init__(
        self,
        clock,
        classify: ClassifyFn,
        policy: Optional[AdmissionPolicy] = None,
        metrics=None,
        recorder=None,
    ):
        self._clock = clock
        self._classify = classify
        self._policy = policy or AdmissionPolicy()
        self._metrics = metrics
        self._recorder = recorder
        self._sources: Dict[str, _SourceState] = {}
        self.admitted = 0
        self.dropped = 0

    # -- configuration ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._policy.enabled

    @property
    def policy(self) -> AdmissionPolicy:
        return self._policy

    def configure(self, policy: AdmissionPolicy) -> None:
        """Swap the policy at runtime (``SimRuntime.enable_admission``).

        Source state is kept: an already-quarantined offender does not get
        a clean slate just because the knobs moved."""
        self._policy = policy

    # -- the admission decision ------------------------------------------------
    def admit(self, frame: Frame, address=None) -> bool:
        """True when ``frame`` may proceed to dispatch.

        Drops are counted under ``admission_drops{source,band,reason}``;
        the caller simply discards the frame on False.
        """
        if not self._policy.enabled:
            return True
        now = self._clock.now()
        band = self._classify(frame.kind)
        source = frame.source
        state = self._sources.get(source)
        addr_state = (
            self._sources.get(self._address_key(address))
            if address is not None
            else None
        )
        for offender in (state, addr_state):
            if offender is not None and offender.quarantined_until > now:
                self.dropped += 1
                self._note_drop(source, band, "quarantine", now)
                return False
        if state is None:
            state = self._sources[source] = _SourceState()
        policy = self._policy
        if policy.source_rate is not None:
            if state.bucket is None:
                state.bucket = TokenBucket(policy.source_rate, policy.source_burst, now)
            if not state.bucket.try_take(now):
                self.dropped += 1
                self._note_drop(source, band, "source-rate", now)
                return False
        rates = DEFAULT_BAND_RATES if policy.band_rates is None else policy.band_rates
        rate = rates.get(band)
        if rate is not None:
            bucket = state.band_buckets.get(band)
            if bucket is None:
                bucket = state.band_buckets[band] = TokenBucket(
                    rate, policy.band_burst, now
                )
            if not bucket.try_take(now):
                self.dropped += 1
                self._note_drop(source, band, "band-rate", now)
                return False
        self.admitted += 1
        return True

    # -- quarantine ------------------------------------------------------------
    def note_malformed(self, source_key: str) -> None:
        """One malformed/unparseable frame attributed to ``source_key``
        (a container id, or an address key for undecodable datagrams).

        Always counted; scores and quarantines only while enabled.
        """
        if self._metrics is not None:
            self._metrics.counter("malformed_frames", source=source_key).inc()
        if not self._policy.enabled:
            return
        now = self._clock.now()
        state = self._sources.get(source_key)
        if state is None:
            state = self._sources[source_key] = _SourceState()
        if state.quarantined_until > now:
            # Already serving a quarantine; don't stack new windows for
            # traffic the quarantine is there to absorb.
            return
        policy = self._policy
        elapsed = now - state.score_stamp
        if elapsed > 0:
            state.score = max(0.0, state.score - elapsed * policy.quarantine_decay)
        state.score_stamp = now
        state.score += 1.0
        if state.score < policy.quarantine_threshold:
            return
        state.score = 0.0
        state.quarantine_count += 1
        duration = min(
            policy.quarantine_duration
            * policy.quarantine_backoff ** (state.quarantine_count - 1),
            policy.quarantine_max_duration,
        )
        state.quarantined_until = now + duration
        if self._metrics is not None:
            self._metrics.counter("quarantines", source=source_key).inc()
        if self._recorder is not None:
            self._recorder.record(
                "admission",
                action="quarantine",
                source=source_key,
                until=round(state.quarantined_until, 6),
                offense=state.quarantine_count,
            )

    def note_malformed_address(self, address) -> None:
        """Quarantine trigger for datagrams whose source id is unreadable —
        the only identity we have is the network address."""
        self.note_malformed(self._address_key(address))

    def quarantined_sources(self) -> List[str]:
        """Source keys currently serving a quarantine window."""
        now = self._clock.now()
        return sorted(
            key
            for key, state in self._sources.items()
            if state.quarantined_until > now
        )

    def is_quarantined(self, source_key: str) -> bool:
        state = self._sources.get(source_key)
        return state is not None and state.quarantined_until > self._clock.now()

    # -- internals -------------------------------------------------------------
    @staticmethod
    def _address_key(address) -> str:
        return f"@{address}"

    def _note_drop(self, source: str, band: int, reason: str, now: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "admission_drops", source=source, band=str(band), reason=reason
            ).inc()
        if self._recorder is None:
            return
        # The counters carry the volume; the flight recorder gets at most
        # one entry per source per second so a flood cannot churn the ring.
        state = self._sources.get(source)
        if state is None:
            state = self._sources[source] = _SourceState()
        if now - state.last_drop_logged < 1.0:
            return
        state.last_drop_logged = now
        self._recorder.record(
            "admission", action="drop", source=source, band=band, reason=reason
        )


DeliverFn = Callable[[Frame], None]


class IngressScheduler:
    """Band-weighted dispatch of admitted data frames.

    The ingress twin of the egress shaper's per-band queues: frames are
    queued per priority band and drained in rounds of at most
    ``weights[band]`` frames per band, highest-priority band first, one
    round per zero-delay timer event. Within a band order is FIFO; across
    bands a backlog of low-priority frames can no longer dispatch ahead of
    a fresh event or invocation. Each band queue is bounded; overflow
    sheds the band's *oldest* frame (the flood is stale-first) and counts
    it under ``ingress_overflow{band}``.

    Control frames (band 0 kinds handled inline by the container) never
    enter this stage.
    """

    def __init__(
        self,
        timers,
        deliver: DeliverFn,
        weights: Optional[Mapping[int, int]] = None,
        queue_limit: int = 512,
        metrics=None,
    ):
        self._timers = timers
        self._deliver = deliver
        merged = dict(DEFAULT_INGRESS_WEIGHTS)
        merged.update(weights or {})
        self._weights = [merged.get(band, 1) for band in range(_NUM_BANDS)]
        self._queue_limit = queue_limit
        self._metrics = metrics
        self._queues: List[Deque[Frame]] = [deque() for _ in range(_NUM_BANDS)]
        self._drain_timer = None
        self.delivered = 0
        self.shed = 0

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def offer(self, frame: Frame, band: int) -> None:
        queue = self._queues[band]
        if len(queue) >= self._queue_limit:
            queue.popleft()
            self.shed += 1
            if self._metrics is not None:
                self._metrics.counter("ingress_overflow", band=str(band)).inc()
        queue.append(frame)
        self._arm()

    def _arm(self) -> None:
        if self._drain_timer is None:
            self._drain_timer = self._timers.schedule(0.0, self._drain_round)

    def _drain_round(self) -> None:
        self._drain_timer = None
        for band, queue in enumerate(self._queues):
            budget = self._weights[band]
            while queue and budget > 0:
                frame = queue.popleft()
                budget -= 1
                self.delivered += 1
                self._deliver(frame)
        if self.pending:
            self._arm()


__all__ = [
    "TokenBucket",
    "AdmissionPolicy",
    "AdmissionController",
    "IngressScheduler",
    "HARDENED_ADMISSION",
    "DEFAULT_BAND_RATES",
    "DEFAULT_INGRESS_WEIGHTS",
]
