"""A TCP-behaviour baseline stream.

Experiment E5 reproduces the §4.2 claim that the application-layer
ack/retransmit scheme "is more efficient for event messages than the generic
case provided by the TCP stack". To compare against "TCP" inside the
deterministic simulator, this module models the TCP properties that matter
for small-message event traffic:

- **connection setup**: a SYN/SYN-ACK exchange must complete before data
  flows (one extra RTT on first use);
- **cumulative ACKs only**: the receiver can only acknowledge the longest
  in-order prefix;
- **go-back-N retransmission**: on timeout the sender retransmits *every*
  unacked segment, not just the lost one;
- **header overhead**: each segment and ack carries
  :data:`TCP_EXTRA_HEADER` bytes of padding, the size difference between
  TCP (20 B) and UDP (8 B) headers.

It is intentionally *not* a full TCP (no congestion window, no delayed
acks): those would only further favour the application-layer scheme for
sparse event traffic, so this baseline is conservative.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.protocol.frames import Frame, FrameFlags, MessageKind
from repro.util.clock import Clock
from repro.util.errors import ProtocolError

#: TCP header (20 B) minus the UDP header (8 B) already charged by the wire.
TCP_EXTRA_HEADER = 12

_SEQ = struct.Struct("<I")


@dataclass
class _Segment:
    seq: int
    payload: bytes
    deadline: float
    retries: int = 0


class TcpLikeSender:
    """Send side of the modelled TCP connection."""

    def __init__(
        self,
        clock: Clock,
        source: str,
        channel: int,
        emit: Callable[[Frame], None],
        rto: float = 0.2,
        backoff: float = 2.0,
        max_rto: float = 2.0,
    ):
        self._clock = clock
        self._source = source
        self._channel = channel
        self._emit = emit
        self._base_rto = rto
        self._backoff = backoff
        self._max_rto = max_rto
        self._rto = rto
        self._next_seq = 1
        self._established = False
        self._syn_sent_at: Optional[float] = None
        self._syn_deadline: Optional[float] = None
        self._unacked: List[_Segment] = []
        self._queued: List[bytes] = []  # waits for the handshake
        # Statistics surfaced by experiment E5.
        self.sent_segments = 0
        self.retransmitted_segments = 0
        self.retransmitted_bytes = 0
        self.handshake_frames = 0

    # -- API ---------------------------------------------------------------
    def send(self, payload: bytes) -> int:
        """Queue one message (one segment) on the stream."""
        seq = self._next_seq
        self._next_seq += 1
        if not self._established:
            self._queued.append(payload)
            if self._syn_sent_at is None:
                self._send_syn()
            return seq
        self._transmit(seq_for_payload=seq, payload=payload)
        return seq

    def on_frame(self, frame: Frame) -> None:
        if frame.kind == MessageKind.STREAM_SYNACK:
            self._established = True
            self._syn_deadline = None
            # Flush everything queued behind the handshake.
            queued, self._queued = self._queued, []
            base = self._next_seq - len(queued)
            for offset, payload in enumerate(queued):
                self._transmit(seq_for_payload=base + offset, payload=payload)
            return
        if frame.kind == MessageKind.STREAM_ACK:
            (cumulative,) = _SEQ.unpack(frame.payload[: _SEQ.size])
            before = len(self._unacked)
            self._unacked = [s for s in self._unacked if s.seq > cumulative]
            if len(self._unacked) < before:
                self._rto = self._base_rto  # progress: reset backoff
            return
        raise ProtocolError(f"unexpected frame on tcp-like sender: {frame!r}")

    def poll(self, now: Optional[float] = None) -> None:
        if now is None:
            now = self._clock.now()
        if self._syn_deadline is not None and now >= self._syn_deadline:
            self._send_syn()
        if not self._unacked:
            return
        if min(s.deadline for s in self._unacked) > now:
            return
        # Go-back-N: timeout retransmits the whole window.
        self._rto = min(self._rto * self._backoff, self._max_rto)
        for segment in self._unacked:
            segment.retries += 1
            segment.deadline = now + self._rto
            self.retransmitted_segments += 1
            self.retransmitted_bytes += len(segment.payload)
            self._emit(self._segment_frame(segment, retransmit=True))

    def next_wakeup(self) -> Optional[float]:
        candidates = [s.deadline for s in self._unacked]
        if self._syn_deadline is not None:
            candidates.append(self._syn_deadline)
        return min(candidates) if candidates else None

    @property
    def idle(self) -> bool:
        return not self._unacked and not self._queued

    # -- internals -----------------------------------------------------------
    def _send_syn(self) -> None:
        now = self._clock.now()
        self._syn_sent_at = now
        self._syn_deadline = now + self._rto
        self.handshake_frames += 1
        self._emit(
            Frame(
                kind=MessageKind.STREAM_SYN,
                source=self._source,
                channel=self._channel,
                payload=b"\x00" * TCP_EXTRA_HEADER,
            )
        )

    def _transmit(self, seq_for_payload: int, payload: bytes) -> None:
        segment = _Segment(
            seq=seq_for_payload,
            payload=payload,
            deadline=self._clock.now() + self._rto,
        )
        self._unacked.append(segment)
        self.sent_segments += 1
        self._emit(self._segment_frame(segment, retransmit=False))

    def _segment_frame(self, segment: _Segment, retransmit: bool) -> Frame:
        return Frame(
            kind=MessageKind.STREAM_SEGMENT,
            source=self._source,
            channel=self._channel,
            seq=segment.seq,
            flags=int(FrameFlags.RETRANSMIT) if retransmit else 0,
            payload=b"\x00" * TCP_EXTRA_HEADER + segment.payload,
        )


class TcpLikeReceiver:
    """Receive side: in-order delivery, cumulative acks, SYN-ACK reply."""

    def __init__(
        self,
        source: str,
        channel: int,
        emit: Callable[[Frame], None],
        deliver: Callable[[bytes], None],
    ):
        self._source = source
        self._channel = channel
        self._emit = emit
        self._deliver = deliver
        self._expected = 1
        self._out_of_order: Dict[int, bytes] = {}
        self.delivered_messages = 0
        self.ack_frames = 0

    def on_frame(self, frame: Frame) -> None:
        if frame.kind == MessageKind.STREAM_SYN:
            self._emit(
                Frame(
                    kind=MessageKind.STREAM_SYNACK,
                    source=self._source,
                    channel=self._channel,
                    payload=b"\x00" * TCP_EXTRA_HEADER,
                )
            )
            return
        if frame.kind != MessageKind.STREAM_SEGMENT:
            raise ProtocolError(f"unexpected frame on tcp-like receiver: {frame!r}")
        payload = frame.payload[TCP_EXTRA_HEADER:]
        if frame.seq == self._expected:
            self._deliver(payload)
            self.delivered_messages += 1
            self._expected += 1
            while self._expected in self._out_of_order:
                self._deliver(self._out_of_order.pop(self._expected))
                self.delivered_messages += 1
                self._expected += 1
        elif frame.seq > self._expected:
            self._out_of_order[frame.seq] = payload
        # Cumulative ack: highest in-order seq received.
        self.ack_frames += 1
        self._emit(
            Frame(
                kind=MessageKind.STREAM_ACK,
                source=self._source,
                channel=self._channel,
                payload=_SEQ.pack(self._expected - 1) + b"\x00" * TCP_EXTRA_HEADER,
            )
        )


__all__ = ["TcpLikeSender", "TcpLikeReceiver", "TCP_EXTRA_HEADER"]
