"""PEPt Protocol subsystem.

Frames "the encoded data to denote the intent of the message" (§6) and is
"responsible for frame retransmission and other low level bookkeeping":

- :mod:`repro.protocol.frames` — the frame header and message kinds;
- :mod:`repro.protocol.reliability` — the application-layer ack/retransmit
  machinery the paper claims is "more efficient for event messages than the
  generic case provided by the TCP stack" (§4.2);
- :mod:`repro.protocol.tcp_like` — a TCP-behaviour model used as the
  baseline in that comparison (experiment E5);
- :mod:`repro.protocol.fragmentation` — MTU-sized fragmentation/reassembly;
- :mod:`repro.protocol.batching` — packing small same-destination frames
  into one BATCH datagram to amortize fixed per-packet overhead.
"""

from repro.protocol.batching import (
    FrameBatcher,
    batch_header_size,
    decode_batch_payload,
    encode_batch_payload,
    make_batch_frame,
)
from repro.protocol.fragmentation import Fragmenter, Reassembler
from repro.protocol.frames import Frame, MessageKind
from repro.protocol.reliability import ReliableReceiver, ReliableSender, RetransmitPolicy
from repro.protocol.tcp_like import TcpLikeReceiver, TcpLikeSender

__all__ = [
    "Frame",
    "MessageKind",
    "ReliableSender",
    "ReliableReceiver",
    "RetransmitPolicy",
    "TcpLikeSender",
    "TcpLikeReceiver",
    "Fragmenter",
    "Reassembler",
    "FrameBatcher",
    "encode_batch_payload",
    "decode_batch_payload",
    "make_batch_frame",
    "batch_header_size",
]
