"""Feature detection — the simulated on-board FPGA pipeline.

Threshold against the local background, label connected components, reject
specks. Returns a count and a confidence score, which is what the video-
processing service turns into a detection event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detection pass."""

    feature_count: int
    score: float  # 0..1 confidence
    centroids: Tuple[Tuple[float, float], ...]  # (row, col) per feature


def detect_features(
    image: np.ndarray,
    threshold_sigma: float = 4.0,
    min_area: int = 6,
) -> DetectionResult:
    """Find bright blobs standing ``threshold_sigma`` deviations above the
    background; components smaller than ``min_area`` pixels are noise."""
    if image.ndim != 2:
        raise ValueError(f"detector needs a 2-D image, got shape {image.shape}")
    pixels = image.astype(np.float64)
    background = np.median(pixels)
    spread = np.median(np.abs(pixels - background)) * 1.4826  # robust sigma
    if spread <= 0:
        spread = pixels.std() or 1.0
    mask = pixels > background + threshold_sigma * spread
    labels, count = ndimage.label(mask)
    centroids: List[Tuple[float, float]] = []
    peak_excess = 0.0
    for region in range(1, count + 1):
        area = int((labels == region).sum())
        if area < min_area:
            continue
        cy, cx = ndimage.center_of_mass(mask, labels, region)
        centroids.append((float(cy), float(cx)))
        region_peak = pixels[labels == region].max()
        peak_excess = max(peak_excess, (region_peak - background) / 255.0)
    score = min(1.0, peak_excess * (1.0 if centroids else 0.0))
    return DetectionResult(
        feature_count=len(centroids),
        score=score,
        centroids=tuple(centroids),
    )


__all__ = ["detect_features", "DetectionResult"]
