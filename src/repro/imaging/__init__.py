"""Synthetic imaging substrate.

Stands in for the paper's camera payload and "on-board FPGA based" video
processor (§5): generates synthetic aerial frames with embedded bright
features and detects them with a thresholding + connected-components pass.
The detection path exercises exactly the data flow the paper's scenario
needs — image in via multicast file transfer, detection event out.
"""

from repro.imaging.detect import DetectionResult, detect_features
from repro.imaging.pgm import decode_pgm, encode_pgm
from repro.imaging.synth import generate_image

__all__ = [
    "generate_image",
    "detect_features",
    "DetectionResult",
    "encode_pgm",
    "decode_pgm",
]
