"""Synthetic aerial image generation.

Images are grayscale uint8 arrays: a noisy terrain background plus a number
of bright Gaussian blobs (the "pre-programmed characteristics" the mission
looks for). Seeded, so every photo at a given waypoint is reproducible.
"""

from __future__ import annotations

import numpy as np


def generate_image(
    seed: int,
    width: int = 128,
    height: int = 128,
    features: int = 3,
    noise_level: float = 12.0,
    feature_intensity: float = 160.0,
    feature_sigma: float = 3.0,
) -> np.ndarray:
    """Render one synthetic frame.

    Parameters
    ----------
    seed:
        Deterministic content key (the mission uses the waypoint index).
    features:
        Number of bright blobs to embed (0 = empty terrain).
    """
    if width <= 0 or height <= 0:
        raise ValueError("image dimensions must be positive")
    rng = np.random.default_rng(seed)
    # Terrain: low-frequency ramp + white noise.
    yy, xx = np.mgrid[0:height, 0:width]
    base = 60.0 + 20.0 * np.sin(xx / max(width, 1) * 2.2) * np.cos(yy / max(height, 1) * 1.7)
    image = base + rng.normal(0.0, noise_level, size=(height, width))
    # Features: well-separated Gaussian blobs.
    margin = int(4 * feature_sigma) + 2
    for _ in range(features):
        cx = rng.integers(margin, max(margin + 1, width - margin))
        cy = rng.integers(margin, max(margin + 1, height - margin))
        blob = feature_intensity * np.exp(
            -((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * feature_sigma**2)
        )
        image += blob
    return np.clip(image, 0, 255).astype(np.uint8)


__all__ = ["generate_image"]
