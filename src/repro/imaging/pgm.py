"""Binary PGM (P5) image codec.

The simplest real image container: what the camera service writes into the
file-transfer primitive and the video processor reads back. Using an actual
interchange format (instead of pickling arrays) keeps the stored photos
inspectable with standard tools.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import EncodingError


def encode_pgm(image: np.ndarray) -> bytes:
    """Encode a 2-D uint8 array as binary PGM."""
    if image.ndim != 2:
        raise EncodingError(f"PGM needs a 2-D array, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise EncodingError(f"PGM needs uint8 pixels, got {image.dtype}")
    height, width = image.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    return header + image.tobytes()


def decode_pgm(data: bytes) -> np.ndarray:
    """Decode binary PGM back to a 2-D uint8 array."""
    if not data.startswith(b"P5"):
        raise EncodingError("not a binary PGM (missing P5 magic)")
    # Header: magic, width, height, maxval — whitespace separated, then one
    # whitespace byte before the raster.
    fields = []
    pos = 2
    while len(fields) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":  # comment line
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        if start == pos:
            raise EncodingError("truncated PGM header")
        fields.append(data[start:pos])
    pos += 1  # the single whitespace after maxval
    try:
        width, height, maxval = (int(f) for f in fields)
    except ValueError as exc:
        raise EncodingError(f"bad PGM header: {exc}") from exc
    if maxval != 255:
        raise EncodingError(f"only 8-bit PGM supported (maxval {maxval})")
    expected = width * height
    raster = data[pos : pos + expected]
    if len(raster) != expected:
        raise EncodingError(
            f"PGM raster truncated: wanted {expected} bytes, got {len(raster)}"
        )
    return np.frombuffer(raster, dtype=np.uint8).reshape(height, width).copy()


__all__ = ["encode_pgm", "decode_pgm"]
