"""FlightGear-style telemetry integration (§6, experiment E9).

The paper reports that "the telemetry interface with FlightGear simulator
has been done by a person without previous knowledge of the architecture in
only 2 days" — i.e., an external telemetry consumer was built purely against
the public service API. This package reproduces that integration:
a generic-protocol codec (FlightGear's ``generic`` I/O protocol) and a
:class:`TelemetryService` that bridges ``gps.position`` samples to any sink.
"""

from repro.telemetry.generic import GenericProtocol, TelemetryField
from repro.telemetry.service import InMemoryTelemetrySink, TelemetryService

__all__ = [
    "GenericProtocol",
    "TelemetryField",
    "TelemetryService",
    "InMemoryTelemetrySink",
]
