"""FlightGear ``generic`` protocol codec.

FlightGear's generic I/O protocol frames a configurable list of fields with
a separator, in ASCII or binary form — normally described by an XML file.
This module models the same concept with a declarative field list and
supports both wire forms, so our frames are directly compatible with a
FlightGear ``--generic=socket,...`` endpoint configured the same way.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, Sequence

from repro.util.errors import EncodingError

_BINARY_PACKERS = {
    "int": struct.Struct(">i"),
    "float": struct.Struct(">f"),
    "double": struct.Struct(">d"),
    "bool": struct.Struct(">B"),
}


@dataclass(frozen=True)
class TelemetryField:
    """One field of a generic-protocol frame.

    ``type`` is one of ``int``, ``float``, ``double``, ``bool``, ``string``
    (string is ASCII-mode only, per FlightGear). ``format`` is the ASCII
    printf-style rendering, e.g. ``"%.6f"``.
    """

    name: str
    type: str = "double"
    #: printf-style ASCII rendering; None picks a per-type default.
    format: str = None

    _DEFAULT_FORMATS = {
        "int": "%d",
        "float": "%.6f",
        "double": "%.6f",
        "bool": "%d",
        "string": "%s",
    }

    def __post_init__(self) -> None:
        if self.type not in self._DEFAULT_FORMATS:
            raise ValueError(f"unsupported field type {self.type!r}")
        if self.format is None:
            object.__setattr__(self, "format", self._DEFAULT_FORMATS[self.type])


class GenericProtocol:
    """Encoder/decoder for one generic-protocol configuration."""

    def __init__(
        self,
        fields: Sequence[TelemetryField],
        binary: bool = False,
        separator: str = ",",
        line_terminator: str = "\n",
    ):
        if not fields:
            raise ValueError("a generic protocol needs at least one field")
        if binary and any(f.type == "string" for f in fields):
            raise ValueError("string fields are ASCII-mode only")
        self.fields = list(fields)
        self.binary = binary
        self.separator = separator
        self.line_terminator = line_terminator

    # -- encoding ---------------------------------------------------------------
    def encode(self, values: Dict[str, Any]) -> bytes:
        missing = [f.name for f in self.fields if f.name not in values]
        if missing:
            raise EncodingError(f"telemetry frame missing fields: {missing}")
        if self.binary:
            out = []
            for field in self.fields:
                packer = _BINARY_PACKERS[field.type]
                value = values[field.name]
                if field.type == "bool":
                    value = 1 if value else 0
                try:
                    out.append(packer.pack(value))
                except struct.error as exc:
                    raise EncodingError(
                        f"cannot pack {field.name}={value!r} as {field.type}: {exc}"
                    ) from exc
            return b"".join(out)
        parts = []
        for field in self.fields:
            value = values[field.name]
            if field.type == "bool":
                parts.append("1" if value else "0")
            elif field.type == "string":
                parts.append(str(value))
            else:
                parts.append(field.format % value)
        return (self.separator.join(parts) + self.line_terminator).encode("ascii")

    # -- decoding ---------------------------------------------------------------
    def decode(self, frame: bytes) -> Dict[str, Any]:
        if self.binary:
            values: Dict[str, Any] = {}
            offset = 0
            for field in self.fields:
                packer = _BINARY_PACKERS[field.type]
                if offset + packer.size > len(frame):
                    raise EncodingError("binary telemetry frame truncated")
                (raw,) = packer.unpack_from(frame, offset)
                offset += packer.size
                values[field.name] = bool(raw) if field.type == "bool" else raw
            if offset != len(frame):
                raise EncodingError("trailing bytes in binary telemetry frame")
            return values
        text = frame.decode("ascii").rstrip(self.line_terminator)
        parts = text.split(self.separator)
        if len(parts) != len(self.fields):
            raise EncodingError(
                f"expected {len(self.fields)} fields, got {len(parts)}"
            )
        values = {}
        for field, part in zip(self.fields, parts):
            if field.type == "int":
                values[field.name] = int(part)
            elif field.type in ("float", "double"):
                values[field.name] = float(part)
            elif field.type == "bool":
                values[field.name] = part.strip() not in ("0", "", "false")
            else:
                values[field.name] = part
        return values

    @property
    def frame_size(self) -> int:
        """Bytes per frame (binary mode only)."""
        if not self.binary:
            raise EncodingError("ASCII frames are variable-size")
        return sum(_BINARY_PACKERS[f.type].size for f in self.fields)


#: The standard position feed FlightGear consumes for aircraft following.
FLIGHTGEAR_POSITION_PROTOCOL = GenericProtocol(
    fields=[
        TelemetryField("latitude-deg", "double", "%.8f"),
        TelemetryField("longitude-deg", "double", "%.8f"),
        TelemetryField("altitude-ft", "double", "%.2f"),
        TelemetryField("heading-deg", "double", "%.2f"),
        TelemetryField("airspeed-kt", "double", "%.2f"),
    ],
)

__all__ = ["GenericProtocol", "TelemetryField", "FLIGHTGEAR_POSITION_PROTOCOL"]
