"""The telemetry bridge service.

Reproduces the §6 integration: a service written only against the public
:class:`~repro.services.ServiceContext` API that subscribes to
``gps.position`` and emits FlightGear generic-protocol frames to a sink.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.services.base import Service
from repro.services.names import VAR_POSITION
from repro.telemetry.generic import FLIGHTGEAR_POSITION_PROTOCOL, GenericProtocol

#: Unit conversions the FlightGear feed needs.
M_TO_FT = 3.28084
MS_TO_KT = 1.9438445

Sink = Callable[[bytes], None]


class InMemoryTelemetrySink:
    """Collects frames — the stand-in for a FlightGear UDP endpoint."""

    def __init__(self):
        self.frames: List[bytes] = []

    def __call__(self, frame: bytes) -> None:
        self.frames.append(frame)


class TelemetryService(Service):
    """Bridges ``gps.position`` to a FlightGear-style telemetry feed.

    Parameters
    ----------
    sink:
        Called with each encoded frame (a socket ``send`` in a live setup).
    protocol:
        The generic-protocol configuration; defaults to the position feed.
    max_rate_hz:
        Downsampling guard — FlightGear feeds rarely need full GPS rate.
    """

    def __init__(
        self,
        sink: Sink,
        name: str = "telemetry",
        protocol: Optional[GenericProtocol] = None,
        max_rate_hz: float = 10.0,
    ):
        super().__init__(name)
        self.sink = sink
        self.protocol = protocol or FLIGHTGEAR_POSITION_PROTOCOL
        self.min_interval = 1.0 / max_rate_hz if max_rate_hz > 0 else 0.0
        self.frames_sent = 0
        self._last_sent = -1e18

    def on_start(self) -> None:
        self.ctx.subscribe_variable(VAR_POSITION, on_sample=self._on_position)

    def _on_position(self, value: dict, timestamp: float) -> None:
        now = self.ctx.now()
        if now - self._last_sent < self.min_interval:
            return
        self._last_sent = now
        frame = self.protocol.encode(
            {
                "latitude-deg": value["lat"],
                "longitude-deg": value["lon"],
                "altitude-ft": value["alt"] * M_TO_FT,
                "heading-deg": value["heading"],
                "airspeed-kt": value["ground_speed"] * MS_TO_KT,
            }
        )
        self.sink(frame)
        self.frames_sent += 1


__all__ = ["TelemetryService", "InMemoryTelemetrySink", "M_TO_FT", "MS_TO_KT"]
