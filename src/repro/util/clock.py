"""Clock abstraction.

All middleware components read time through a :class:`Clock` so the same
protocol code runs under the deterministic simulation runtime (virtual time)
and the threaded runtime (wall-clock time). Times are ``float`` seconds.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Read-only time source."""

    def now(self) -> float:
        """Current time in seconds. Monotonic, not wall-clock-anchored."""
        ...


class MonotonicClock:
    """Wall clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock:
    """A clock advanced explicitly — handy for unit-testing state machines
    without a full simulator."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot move a clock backwards")
        self._now += dt

    def set(self, t: float) -> None:
        if t < self._now:
            raise ValueError("cannot move a clock backwards")
        self._now = t


__all__ = ["Clock", "MonotonicClock", "ManualClock"]
