"""Shared utilities: error hierarchy, identifiers, clocks and seeded RNG.

These are the only pieces of the code base that every other subsystem is
allowed to depend on; they carry no middleware semantics of their own.
"""

from repro.util.clock import Clock, ManualClock, MonotonicClock
from repro.util.errors import (
    ConfigurationError,
    EncodingError,
    MiddlewareError,
    NameResolutionError,
    ProtocolError,
    ResourceError,
    ServiceError,
    TimeoutError_,
    TransportError,
)
from repro.util.ids import ContainerId, ServiceName, make_uid
from repro.util.rng import SeededRng
from repro.util.stats import Tally

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "ConfigurationError",
    "EncodingError",
    "MiddlewareError",
    "NameResolutionError",
    "ProtocolError",
    "ResourceError",
    "ServiceError",
    "TimeoutError_",
    "TransportError",
    "ContainerId",
    "ServiceName",
    "make_uid",
    "SeededRng",
    "Tally",
]
