"""Exception hierarchy for the middleware.

Every error raised by this library derives from :class:`MiddlewareError` so
applications can catch middleware failures with a single ``except`` clause,
mirroring the paper's requirement that services stay decoupled from the
infrastructure that carries their communication.
"""


class MiddlewareError(Exception):
    """Base class for all errors raised by the middleware."""


class ConfigurationError(MiddlewareError):
    """A component was configured with inconsistent or invalid parameters."""


class EncodingError(MiddlewareError):
    """A value could not be marshalled or unmarshalled (PEPt Encoding layer)."""


class ProtocolError(MiddlewareError):
    """A frame violated the wire protocol (PEPt Protocol layer)."""


class TransportError(MiddlewareError):
    """A packet could not be moved between nodes (PEPt Transport layer)."""


class NameResolutionError(MiddlewareError):
    """No provider is known for a requested service, variable, event or
    function name.

    The paper specifies that "if no service provides the requested function
    the middleware will warn the system to take the programmed emergency
    procedure"; this exception is that warning.
    """


class ServiceError(MiddlewareError):
    """A service failed while starting, stopping or handling a message."""


class ResourceError(MiddlewareError):
    """A node-local shared resource (storage quota, exclusive device, CPU
    budget) could not be granted by the service container."""


class TimeoutError_(MiddlewareError, TimeoutError):
    """An operation did not complete within its deadline.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`TimeoutError`; it also derives from the built-in so generic
    ``except TimeoutError`` handlers keep working.
    """


class InvocationError(MiddlewareError):
    """A remote invocation failed on the server side; carries the remote
    error message."""

    def __init__(self, function: str, message: str):
        super().__init__(f"remote invocation of {function!r} failed: {message}")
        self.function = function
        self.remote_message = message


__all__ = [
    "MiddlewareError",
    "ConfigurationError",
    "EncodingError",
    "ProtocolError",
    "TransportError",
    "NameResolutionError",
    "ServiceError",
    "ResourceError",
    "TimeoutError_",
    "InvocationError",
]
