"""Identifier types used across the middleware.

The paper addresses services *by name* (§3, "Name management"); containers
are identified by a short unique id so control traffic stays compact.
"""

from __future__ import annotations

import itertools
import re

# Service, variable, event, function and file-resource names all share one
# syntax: dotted lower-case identifiers, e.g. ``gps.position``.
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_\-]*(\.[a-zA-Z_][a-zA-Z0-9_\-]*)*$")

# Process-wide counter used to mint unique ids without global randomness,
# which keeps simulation runs deterministic.
_UID_COUNTER = itertools.count(1)


class ServiceName(str):
    """A validated service (or primitive) name.

    Plain ``str`` subclasses keep the rest of the code ergonomic while
    rejecting malformed names at construction time.
    """

    def __new__(cls, value: str) -> "ServiceName":
        if not _NAME_RE.match(value):
            raise ValueError(f"invalid service name: {value!r}")
        return super().__new__(cls, value)


class ContainerId(str):
    """Identifier of a service container (one per node)."""

    def __new__(cls, value: str) -> "ContainerId":
        if not value or "/" in value or " " in value:
            raise ValueError(f"invalid container id: {value!r}")
        return super().__new__(cls, value)


def make_uid(prefix: str = "uid") -> str:
    """Mint a process-unique identifier.

    Deterministic (a monotonic counter, not a UUID) so that two simulation
    runs with the same seed produce identical traffic.
    """
    return f"{prefix}-{next(_UID_COUNTER)}"


def reset_uid_counter() -> None:
    """Reset the uid counter — for tests that require reproducible ids."""
    global _UID_COUNTER
    _UID_COUNTER = itertools.count(1)


__all__ = ["ServiceName", "ContainerId", "make_uid", "reset_uid_counter"]
