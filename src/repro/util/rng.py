"""Seeded random-number helpers.

Simulation components must never reach for module-level :mod:`random`; each
stochastic model owns a :class:`SeededRng` derived from the experiment seed
so that every run is reproducible packet-for-packet.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A thin, explicit wrapper over :class:`random.Random`.

    Provides only the draws the simulator needs, plus :meth:`fork` to derive
    independent sub-streams (e.g. one per network link) that stay stable when
    unrelated components are added to an experiment.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._rng = random.Random(self._seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent stream keyed by ``label``.

        Uses a stable hash of the label (not Python's randomized ``hash``)
        so forks are identical across interpreter runs.
        """
        h = 0
        for ch in label:
            h = (h * 131 + ord(ch)) & 0xFFFFFFFF
        return SeededRng((self._seed * 1_000_003 + h) & 0x7FFFFFFF)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def random(self) -> float:
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def bytes(self, n: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._rng.sample(seq, k)

    def jittered(self, base: float, jitter: float, floor: float = 0.0) -> float:
        """``base`` plus symmetric uniform jitter, clamped below at ``floor``."""
        return max(floor, base + self._rng.uniform(-jitter, jitter))

    def maybe(self, probability: float, value: Optional[T], default: Optional[T] = None):
        return value if self.chance(probability) else default


__all__ = ["SeededRng"]
