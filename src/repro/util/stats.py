"""Small statistics helpers for experiment analysis.

Used by the benchmark harness and available to applications that analyse
mission telemetry (latency distributions, percentiles). :class:`Tally`
holds named counters and observation series for runtime subsystems (the
supervisor reports restarts, backoff delays and recovery times through
one); since the observability PR it is a thin prefix-scoped view over a
:class:`~repro.observability.metrics.MetricsRegistry`, so subsystem tallies
land in the same unified snapshot as every other metric.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Linearly interpolated percentile (``p`` in [0, 100]); 0.0 for empty
    input.

    Uses the inclusive definition (NumPy's default ``linear`` method): the
    sorted sample spans ranks 0..n-1, ``p`` maps to rank ``p/100 * (n-1)``,
    and fractional ranks interpolate between the two neighbours. p=0 and
    p=100 are exactly the min and max.
    """
    if not values:
        return 0.0
    if not (0.0 <= p <= 100.0):
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100.0 * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """n / mean / p50 / p99 / max of a sample; zeros for empty input."""
    if not values:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "mean": statistics.fmean(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "max": max(values),
    }


class Tally:
    """Named counters plus named observation series.

    Counters (:meth:`incr`/:meth:`count`) track how often something
    happened; series (:meth:`observe`/:meth:`series`) record measured
    values for later :func:`summarize`-style analysis. Unknown names read
    as zero/empty so callers never pre-declare.

    Backed by a :class:`~repro.observability.metrics.MetricsRegistry`.
    Pass ``registry``/``prefix`` to scope a subsystem's tally into a shared
    registry (the supervisor writes ``supervision.*`` into its container's
    registry); with no arguments the tally owns a private registry and
    behaves exactly as before.
    """

    def __init__(self, registry=None, prefix: str = "") -> None:
        # Imported here: observability.metrics imports summarize from this
        # module at import time.
        from repro.observability.metrics import MetricsRegistry

        self._registry = registry if registry is not None else MetricsRegistry()
        self._prefix = prefix
        self._counter_names: List[str] = []
        self._series_names: List[str] = []

    @property
    def registry(self):
        return self._registry

    # -- counters ----------------------------------------------------------
    def incr(self, name: str, by: int = 1) -> int:
        if name not in self._counter_names:
            self._counter_names.append(name)
        return self._registry.counter(self._prefix + name).inc(by)

    def count(self, name: str) -> int:
        return self._registry.counter_value(self._prefix + name)

    # -- observation series -------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        if name not in self._series_names:
            self._series_names.append(name)
        self._registry.histogram(self._prefix + name).observe(float(value))

    def series(self, name: str) -> List[float]:
        return self._registry.histogram_values(self._prefix + name)

    def summary(self, name: str) -> Dict[str, float]:
        return summarize(self.series(name))

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counters verbatim plus a summary per series, one flat dict
        (names unprefixed, as recorded through this tally)."""
        out: Dict[str, object] = {
            name: self.count(name) for name in self._counter_names
        }
        for name in self._series_names:
            out[name] = self.summary(name)
        return out

    def __repr__(self) -> str:
        counts = {name: self.count(name) for name in sorted(self._counter_names)}
        return f"<Tally counts={counts!r} series={sorted(self._series_names)}>"


__all__ = ["percentile", "summarize", "Tally"]
