"""Small statistics helpers for experiment analysis.

Used by the benchmark harness and available to applications that analyse
mission telemetry (latency distributions, percentiles).
"""

from __future__ import annotations

import statistics
from typing import Dict, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    if not (0.0 <= p <= 100.0):
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
    return ordered[index]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """n / mean / p50 / p99 / max of a sample; zeros for empty input."""
    if not values:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "mean": statistics.fmean(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "max": max(values),
    }


__all__ = ["percentile", "summarize"]
