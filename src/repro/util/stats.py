"""Small statistics helpers for experiment analysis.

Used by the benchmark harness and available to applications that analyse
mission telemetry (latency distributions, percentiles). :class:`Tally`
holds named counters and observation series for runtime subsystems (the
supervisor reports restarts, backoff delays and recovery times through
one).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    if not (0.0 <= p <= 100.0):
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
    return ordered[index]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """n / mean / p50 / p99 / max of a sample; zeros for empty input."""
    if not values:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "mean": statistics.fmean(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "max": max(values),
    }


class Tally:
    """Named counters plus named observation series.

    Counters (:meth:`incr`/:meth:`count`) track how often something
    happened; series (:meth:`observe`/:meth:`series`) record measured
    values for later :func:`summarize`-style analysis. Unknown names read
    as zero/empty so callers never pre-declare.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._series: Dict[str, List[float]] = {}

    # -- counters ----------------------------------------------------------
    def incr(self, name: str, by: int = 1) -> int:
        value = self._counts.get(name, 0) + by
        self._counts[name] = value
        return value

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    # -- observation series -------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        self._series.setdefault(name, []).append(float(value))

    def series(self, name: str) -> List[float]:
        return list(self._series.get(name, []))

    def summary(self, name: str) -> Dict[str, float]:
        return summarize(self._series.get(name, []))

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counters verbatim plus a summary per series, one flat dict."""
        out: Dict[str, object] = dict(self._counts)
        for name in self._series:
            out[name] = self.summary(name)
        return out

    def __repr__(self) -> str:
        return f"<Tally counts={self._counts!r} series={sorted(self._series)}>"


__all__ = ["percentile", "summarize", "Tally"]
