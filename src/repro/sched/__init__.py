"""The pluggable scheduler (§6).

The paper's prototype scheduler "is basically a simple thread pool with
fixed priorities for each named primitive", supporting soft real-time only.
This package provides:

- :class:`Task` and the :class:`SchedulingPolicy` plug-in interface;
- :class:`FixedPriorityPolicy` (the paper's choice), :class:`FifoPolicy`
  (the ablation baseline for experiment E6) and
  :class:`DeadlinePolicy` (the future-work extension: an EDF-style variant
  anticipating the paper's planned real-time support);
- :class:`CpuModel`, charging modelled execution time per primitive so the
  deterministic runtime exhibits queueing;
- :class:`SimScheduler` — a single-CPU scheduler for the simulation
  runtime — and :class:`ThreadPoolScheduler` for the threaded runtime.
"""

from repro.sched.model import CpuModel, SimScheduler, Task
from repro.sched.policies import (
    DEFAULT_PRIORITIES,
    DeadlinePolicy,
    FifoPolicy,
    FixedPriorityPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.sched.threadpool import ThreadPoolScheduler

__all__ = [
    "Task",
    "CpuModel",
    "SimScheduler",
    "ThreadPoolScheduler",
    "SchedulingPolicy",
    "FixedPriorityPolicy",
    "FifoPolicy",
    "DeadlinePolicy",
    "DEFAULT_PRIORITIES",
    "make_policy",
]
