"""The simulation-runtime scheduler.

Models one CPU per node: each submitted task occupies the processor for its
modelled cost (:class:`CpuModel`), so queueing delay — the quantity
experiment E6 measures — emerges naturally. Handler side effects happen at
task *completion* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sched.policies import DEFAULT_PRIORITIES, DeadlinePolicy, SchedulingPolicy
from repro.util.clock import Clock


@dataclass
class CpuModel:
    """Modelled execution cost per primitive label (seconds of CPU).

    The default of zero everywhere makes the scheduler transparent —
    protocol tests don't see queueing unless an experiment asks for it.
    """

    costs: Dict[str, float] = field(default_factory=dict)
    default_cost: float = 0.0

    def cost_for(self, label: str) -> float:
        return self.costs.get(label, self.default_cost)


@dataclass
class Task:
    """One unit of work submitted to a scheduler."""

    label: str
    fn: Callable[[], None]
    priority: int
    enqueued_at: float
    cost: float
    deadline: float = float("inf")
    started_at: Optional[float] = None


@dataclass
class TaskRecord:
    """Completed-task telemetry consumed by the scheduler benchmarks."""

    label: str
    enqueued_at: float
    started_at: float
    finished_at: float

    @property
    def queue_delay(self) -> float:
        return self.started_at - self.enqueued_at

    @property
    def response_time(self) -> float:
        return self.finished_at - self.enqueued_at


class SimScheduler:
    """Single-CPU, policy-pluggable scheduler driven by simulator timers.

    Parameters
    ----------
    timers:
        Anything with ``schedule(delay, fn) -> handle`` — the simulator.
    clock:
        Time source (normally the same simulator).
    policy:
        The :class:`SchedulingPolicy` plug-in.
    cpu:
        The cost model.
    on_error:
        Invoked with ``(label, exception)`` when a task raises; the
        container uses this to mark services as failed instead of letting
        one bad handler kill the node.
    record:
        Keep per-task telemetry (costs memory; benchmarks enable it).
    """

    def __init__(
        self,
        timers,
        clock: Clock,
        policy: SchedulingPolicy,
        cpu: Optional[CpuModel] = None,
        priorities: Optional[Dict[str, int]] = None,
        on_error: Optional[Callable[[str, Exception], None]] = None,
        record: bool = False,
    ):
        self._timers = timers
        self._clock = clock
        self._policy = policy
        self._cpu = cpu or CpuModel()
        self._priorities = dict(DEFAULT_PRIORITIES if priorities is None else priorities)
        self._on_error = on_error
        self._has_deadlines = isinstance(policy, DeadlinePolicy)
        self._ready: List[Task] = []
        self._busy = False
        self._record = record
        self.records: List[TaskRecord] = []
        self.executed = 0
        self.errors = 0

    # -- API ---------------------------------------------------------------
    def submit(self, label: str, fn: Callable[[], None]) -> None:
        """Enqueue work classified under primitive ``label``."""
        # Fast path for the transparent configuration (idle CPU, zero
        # modelled cost, no deadlines, no telemetry): run the handler now.
        # Identical semantics — a zero-cost task on an idle scheduler
        # completes at submit time anyway — without a Task allocation or a
        # policy round per delivery.
        if (
            not self._busy
            and not self._ready
            and not self._record
            and not self._has_deadlines
            and self._cpu.cost_for(label) <= 0.0
        ):
            self._busy = True
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 — isolate faulty handlers
                self.errors += 1
                if self._on_error is not None:
                    self._on_error(label, exc)
                else:
                    raise
            finally:
                self.executed += 1
                self._busy = False
                if self._ready:
                    # The handler submitted follow-up work: yield to the
                    # event loop between tasks, as the slow path does.
                    self._timers.schedule(0.0, self._dispatch)
            return
        now = self._clock.now()
        priority = self._priorities.get(label, max(self._priorities.values()) + 1)
        deadline = float("inf")
        if isinstance(self._policy, DeadlinePolicy):
            deadline = now + self._policy.budget_for(label)
        task = Task(
            label=label,
            fn=fn,
            priority=priority,
            enqueued_at=now,
            cost=self._cpu.cost_for(label),
            deadline=deadline,
        )
        self._ready.append(task)
        if not self._busy:
            self._dispatch()

    @property
    def pending(self) -> int:
        return len(self._ready)

    @property
    def load(self) -> int:
        """Queue depth, reported in heartbeats for least-loaded RPC routing."""
        return len(self._ready) + (1 if self._busy else 0)

    def queue_delays(self, label: Optional[str] = None) -> List[float]:
        return [
            r.queue_delay
            for r in self.records
            if label is None or r.label == label
        ]

    # -- internals -----------------------------------------------------------
    def _dispatch(self) -> None:
        if self._busy or not self._ready:
            return
        index = self._policy.select(self._ready)
        task = self._ready.pop(index)
        task.started_at = self._clock.now()
        self._busy = True
        if task.cost <= 0.0:
            self._complete(task)
        else:
            self._timers.schedule(task.cost, lambda: self._complete(task))

    def _complete(self, task: Task) -> None:
        try:
            task.fn()
        except Exception as exc:  # noqa: BLE001 — isolate faulty handlers
            self.errors += 1
            if self._on_error is not None:
                self._on_error(task.label, exc)
            else:
                raise
        finally:
            self.executed += 1
            if self._record:
                self.records.append(
                    TaskRecord(
                        label=task.label,
                        enqueued_at=task.enqueued_at,
                        started_at=task.started_at,
                        finished_at=self._clock.now(),
                    )
                )
            self._busy = False
            if self._ready:
                # Yield to the event loop between tasks so zero-cost chains
                # cannot starve the simulator.
                self._timers.schedule(0.0, self._dispatch)


__all__ = ["SimScheduler", "CpuModel", "Task", "TaskRecord"]
