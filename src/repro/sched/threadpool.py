"""Thread-pool scheduler for the threaded (wall-clock) runtime.

This is literally the paper's prototype scheduler: "a simple thread pool
with fixed priorities for each named primitive and relying in standard
system threads" (§6). Workers pull the most urgent task under the same
pluggable :class:`SchedulingPolicy` used by the simulation scheduler.
"""

from __future__ import annotations

# repro: allow-file[REP002] -- worker threads meter queueing/latency on the
# machine clock; this scheduler only exists in the wall-clock runtime.
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.sched.model import Task, TaskRecord
from repro.sched.policies import DEFAULT_PRIORITIES, DeadlinePolicy, SchedulingPolicy


class ThreadPoolScheduler:
    """A fixed-size worker pool with policy-driven task selection."""

    def __init__(
        self,
        policy: SchedulingPolicy,
        workers: int = 2,
        priorities: Optional[Dict[str, int]] = None,
        on_error: Optional[Callable[[str, Exception], None]] = None,
        record: bool = False,
        lock_recorder=None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self._policy = policy
        self._priorities = dict(DEFAULT_PRIORITIES if priorities is None else priorities)
        self._on_error = on_error
        self._ready: List[Task] = []
        lock = threading.Lock()
        if lock_recorder is not None:
            # Lock-order sanitizer wiring; plain lock (zero overhead) otherwise.
            lock = lock_recorder.wrap(lock, "threadpool.ready")
        self._lock = lock
        self._wakeup = threading.Condition(lock)
        self._shutdown = False
        self._record = record
        self.records: List[TaskRecord] = []
        self.executed = 0
        self.errors = 0
        self._threads = [
            threading.Thread(target=self._worker, name=f"sched-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- API ---------------------------------------------------------------
    def submit(self, label: str, fn: Callable[[], None]) -> None:
        now = time.monotonic()
        priority = self._priorities.get(label, max(self._priorities.values()) + 1)
        deadline = float("inf")
        if isinstance(self._policy, DeadlinePolicy):
            deadline = now + self._policy.budget_for(label)
        task = Task(
            label=label,
            fn=fn,
            priority=priority,
            enqueued_at=now,
            cost=0.0,
            deadline=deadline,
        )
        with self._wakeup:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            self._ready.append(task)
            self._wakeup.notify()

    @property
    def load(self) -> int:
        with self._lock:
            return len(self._ready)

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        with self._wakeup:
            self._shutdown = True
            self._wakeup.notify_all()
        if wait:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                thread.join(max(0.0, deadline - time.monotonic()))

    def drain(self, timeout: float = 5.0) -> bool:
        """Block until the queue is empty; returns False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._ready:
                    return True
            # repro: allow[REP004] -- drain() is a test/shutdown barrier
            # called from application threads, never from a worker.
            time.sleep(0.001)
        return False

    # -- worker loop -----------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._wakeup:
                while not self._ready and not self._shutdown:
                    self._wakeup.wait(timeout=0.5)
                if self._shutdown and not self._ready:
                    return
                index = self._policy.select(self._ready)
                task = self._ready.pop(index)
            task.started_at = time.monotonic()
            try:
                task.fn()
            except Exception as exc:  # noqa: BLE001 — isolate faulty handlers
                self.errors += 1
                if self._on_error is not None:
                    self._on_error(task.label, exc)
            finally:
                self.executed += 1
                if self._record:
                    finished = time.monotonic()
                    with self._lock:
                        self.records.append(
                            TaskRecord(
                                label=task.label,
                                enqueued_at=task.enqueued_at,
                                started_at=task.started_at,
                                finished_at=finished,
                            )
                        )


__all__ = ["ThreadPoolScheduler"]
