"""Scheduling policies.

A policy picks the next task from the ready queue. The paper fixes one
priority per *named primitive*; :data:`DEFAULT_PRIORITIES` encodes the
ordering implied by §4: events are latency-critical ("reservation of time
slots in both the processor and the network will ensure this critical
constraint"), variables are fresh-or-worthless, invocations can queue, and
file chunks are bulk background work.
"""

from __future__ import annotations

from typing import Dict, Protocol, Sequence

from repro.util.errors import ConfigurationError

#: Lower number = more urgent. Keys are primitive labels used across the
#: middleware when submitting work.
DEFAULT_PRIORITIES: Dict[str, int] = {
    "control": 0,  # announce/heartbeat processing keeps failure detection live
    "event": 1,
    "variable": 2,
    "invocation": 3,
    "file": 4,
    "background": 5,
}


class SchedulingPolicy(Protocol):
    """Chooses which ready task runs next."""

    name: str

    def select(self, ready: Sequence["TaskView"]) -> int:
        """Index into ``ready`` of the task to run. ``ready`` is never empty."""
        ...


class TaskView(Protocol):
    """The task attributes policies may inspect."""

    label: str
    priority: int
    enqueued_at: float
    deadline: float


class FifoPolicy:
    """Run tasks strictly in arrival order — the ablation baseline."""

    name = "fifo"

    def select(self, ready: Sequence[TaskView]) -> int:
        best = 0
        for i in range(1, len(ready)):
            if ready[i].enqueued_at < ready[best].enqueued_at:
                best = i
        return best


class FixedPriorityPolicy:
    """The paper's policy: fixed priority per named primitive, FIFO within
    a priority level."""

    name = "fixed_priority"

    def select(self, ready: Sequence[TaskView]) -> int:
        best = 0
        for i in range(1, len(ready)):
            a, b = ready[i], ready[best]
            if (a.priority, a.enqueued_at) < (b.priority, b.enqueued_at):
                best = i
        return best


class DeadlinePolicy:
    """Earliest-deadline-first — the future-work extension (§7 plans
    "real-time approach for the critical events"). Deadlines are assigned
    per label as ``enqueued_at + budget``."""

    name = "deadline"

    #: Per-label latency budget in seconds; unlisted labels get the default.
    DEFAULT_BUDGETS: Dict[str, float] = {
        "control": 0.5,
        "event": 0.005,
        "variable": 0.020,
        "invocation": 0.100,
        "file": 1.0,
    }

    def __init__(self, budgets: Dict[str, float] = None, default_budget: float = 0.5):
        self.budgets = dict(self.DEFAULT_BUDGETS if budgets is None else budgets)
        self.default_budget = default_budget

    def budget_for(self, label: str) -> float:
        return self.budgets.get(label, self.default_budget)

    def select(self, ready: Sequence[TaskView]) -> int:
        best = 0
        for i in range(1, len(ready)):
            if ready[i].deadline < ready[best].deadline:
                best = i
        return best


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by registry name (``fifo``, ``fixed_priority``,
    ``deadline``)."""
    if name == "fifo":
        return FifoPolicy()
    if name == "fixed_priority":
        return FixedPriorityPolicy()
    if name == "deadline":
        return DeadlinePolicy()
    raise ConfigurationError(f"unknown scheduling policy {name!r}")


__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "FixedPriorityPolicy",
    "DeadlinePolicy",
    "DEFAULT_PRIORITIES",
    "make_policy",
]
