"""Runtime verification: compiled temporal monitors on the container's streams.

The container is the choke point where every primitive interaction is
visible; this package exploits that position the way "Runtime Verification
Containers for Publish/Subscribe Networks" proposes — declarative temporal
specifications (:mod:`~repro.verify.spec`) compiled into monitor automata
(:mod:`~repro.verify.compiler`, the ``encoding/compiled.py`` generated-
source trick) that run inside the middleware itself, under virtual or real
time, cheap enough to arm fleet-wide.

Entry points: build specs with the combinators, arm them with
:class:`~repro.verify.monitor.FleetMonitor` (or
``SimRuntime.enable_verification``), read ``monitor.violations`` — or let
an attached :class:`~repro.faults.invariants.InvariantChecker` fold them
into its verdict. :func:`~repro.verify.library.standard_specs` ships the
middleware's own contracts.
"""

from repro.verify.compiler import CompiledAutomaton, compile_spec
from repro.verify.interp import NaiveMonitor, run_naive
from repro.verify.library import (
    MIDDLEWARE_OWNER,
    convergence_response,
    invocation_termination,
    lifecycle_legality,
    mission_response,
    no_resurrection,
    reliable_exactly_once,
    standard_specs,
    variable_validity,
)
from repro.verify.monitor import ContainerTap, FleetMonitor, MonitorEngine
from repro.verify.spec import (
    GLOBAL,
    Spec,
    Violation,
    always,
    at_most_once,
    event,
    never,
    response,
    until,
)

__all__ = [
    "GLOBAL",
    "Spec",
    "Violation",
    "event",
    "never",
    "always",
    "response",
    "until",
    "at_most_once",
    "CompiledAutomaton",
    "compile_spec",
    "NaiveMonitor",
    "run_naive",
    "MonitorEngine",
    "ContainerTap",
    "FleetMonitor",
    "MIDDLEWARE_OWNER",
    "standard_specs",
    "variable_validity",
    "reliable_exactly_once",
    "invocation_termination",
    "lifecycle_legality",
    "no_resurrection",
    "convergence_response",
    "mission_response",
]
