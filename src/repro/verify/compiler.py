"""Spec → monitor automaton, via generated straight-line source.

This is the same trick :mod:`repro.encoding.compiled` plays for codecs,
applied to temporal formulas: each :class:`~repro.verify.spec.Spec` is
rendered **once** into a small Python function whose body inlines every
pattern test as plain attribute comparisons (no pattern objects, no
``isinstance`` dispatch, no per-event allocation on the non-matching
path), then ``exec``'d with the spec's constants bound into its globals.
Per observed event the engine does one dict lookup by probe kind and
calls the compiled step functions routed there — that is the entire
armed-monitor hot path.

Generated source is cached by its own text (two specs with the same
structure — same formula shape, kinds, filters — share one compiled code
object and differ only in the globals each ``exec`` binds), mirroring the
plan cache in ``encoding/compiled.py``.

The automata implement the exact step semantics pinned in
:mod:`repro.verify.spec`; the naive interpreter in
:mod:`repro.verify.interp` implements them independently and the property
suite holds the two to identical verdicts on arbitrary streams.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observability.probes import MonitorEvent
from repro.util.errors import ConfigurationError
from repro.verify.spec import (
    GLOBAL,
    Always,
    EventPattern,
    Never,
    Response,
    Spec,
    Until,
    Violation,
)

ViolationSink = Callable[[Violation], None]

#: Deterministic violation messages, shared with the naive interpreter so
#: differential comparisons can include the message text.
MESSAGES = {
    "never": "forbidden event observed",
    "always": "event failed the always-predicate",
    "response-timeout": "no matching response within the window",
    "until": "event observed after its release point",
}


def make_violation(
    spec: Spec,
    key: object,
    time: float,
    container: str,
    reason: str,
    event: Optional[MonitorEvent] = None,
) -> Violation:
    """The one constructor both evaluators use, so verdicts compare equal
    field-for-field."""
    return Violation(
        spec=spec.name,
        key=key,
        time=time,
        container=container,
        reason=reason,
        message=MESSAGES[reason],
        severity=spec.severity,
        event=event,
    )


class _Gen:
    """Source assembler: numbered globals for non-literal constants.

    Binding order is a pure function of the spec's structure, so two specs
    producing the same source text can share one compiled code object while
    each ``exec`` binds its own constants.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self.counter = 0
        self.env: Dict[str, Any] = {}

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def bind(self, prefix: str, obj: Any) -> str:
        self.counter += 1
        name = f"_{prefix}{self.counter}"
        self.env[name] = obj
        return name

    def match_expr(self, pattern: EventPattern, with_kind: bool) -> str:
        """Inline pattern test against the local ``evt``. ``with_kind`` is
        False when kind-routing already guarantees the kind."""
        parts: List[str] = []
        if with_kind:
            parts.append(f"evt.kind == {pattern.kind!r}")
        if pattern.name is not None:
            parts.append(f"evt.name == {pattern.name!r}")
        for attr, expected in pattern.attrs:
            const = self.bind("c", expected)
            parts.append(f"evt.attrs.get({attr!r}) == {const}")
        if pattern.where is not None:
            where = self.bind("w", pattern.where)
            parts.append(f"{where}(evt)")
        return " and ".join(parts)

    def key_expr(self, spec: Spec) -> str:
        key = spec.key
        if key is None:
            return "evt.key"
        if key is GLOBAL:
            return "_GK"
        if isinstance(key, str):
            return f"evt.attrs.get({key!r})"
        fn = self.bind("kf", key)
        return f"{fn}(evt)"

    def guarded(self, condition: str) -> None:
        """Open an ``if condition:`` block, or no block when the condition
        compiled away (pattern was kind-only and kind is pre-routed)."""
        if condition:
            self.w(f"if {condition}:")
            self.indent += 1

    def unguard(self, condition: str) -> None:
        if condition:
            self.indent -= 1


#: source text -> compiled code object (the structural-signature cache: the
#: rendered source *is* the signature).
_CODE_CACHE: Dict[str, Any] = {}
_CODE_CACHE_LIMIT = 1024


def _expiry_loop(gen: _Gen, bound: str) -> None:
    """Expire every pending obligation with ``deadline < bound``; violations
    are stamped at the deadline and attributed to the trigger."""
    gen.w(f"while _heap and _heap[0][0] < {bound}:")
    gen.indent += 1
    gen.w("d, s, k = _heappop(_heap)")
    gen.w("e = _pending.get(k)")
    gen.w("if e is not None and e[0] == s:")
    gen.indent += 1
    gen.w("del _pending[k]")
    gen.w("_violate(k, d, e[2], 'response-timeout', e[3])")
    gen.indent -= 2


def _render(spec: Spec, gen: _Gen) -> None:
    formula = spec.formula
    gen.w("def _step(evt):")
    gen.indent += 1

    if isinstance(formula, Never):
        cond = gen.match_expr(formula.pattern, with_kind=False)
        gen.guarded(cond)
        gen.w(f"_violate({gen.key_expr(spec)}, evt.time, evt.container, 'never', evt)")
        gen.unguard(cond)
        gen.indent -= 1
        gen.w("def _finish(now):")
        gen.w("    pass")
        return

    if isinstance(formula, Always):
        that = gen.bind("p", formula.that)
        cond = gen.match_expr(formula.pattern, with_kind=False)
        gen.guarded(cond)
        gen.w(f"if not {that}(evt):")
        gen.w(
            f"    _violate({gen.key_expr(spec)}, evt.time, evt.container, "
            "'always', evt)"
        )
        gen.unguard(cond)
        gen.indent -= 1
        gen.w("def _finish(now):")
        gen.w("    pass")
        return

    if isinstance(formula, Response):
        # Routing delivers both kinds to this one step function; the kind
        # test stays inlined unless trigger and response share a kind.
        split = formula.trigger.kind != formula.response.kind
        bounded = formula.within is not None
        if bounded:
            gen.env["_within"] = formula.within
            _expiry_loop(gen, "evt.time")
        resp = gen.match_expr(formula.response, with_kind=split)
        gen.guarded(resp)
        gen.w(f"_pending.pop({gen.key_expr(spec)}, None)")
        gen.unguard(resp)
        trig = gen.match_expr(formula.trigger, with_kind=split)
        gen.guarded(trig)
        gen.w(f"k = {gen.key_expr(spec)}")
        gen.w("if k not in _pending:")
        gen.indent += 1
        if bounded:
            gen.w("_serial[0] = s = _serial[0] + 1")
            gen.w("d = evt.time + _within")
            gen.w("_pending[k] = (s, d, evt.container, evt)")
            gen.w("_heappush(_heap, (d, s, k))")
        else:
            gen.w("_pending[k] = (0, None, evt.container, evt)")
        gen.indent -= 1
        gen.unguard(trig)
        gen.indent -= 1
        gen.w("def _finish(now):")
        if bounded:
            gen.indent += 1
            _expiry_loop(gen, "now")
            gen.indent -= 1
        else:
            gen.w("    pass")
        return

    if isinstance(formula, Until):
        split = formula.allowed.kind != formula.release.kind
        gen.w(f"k = {gen.key_expr(spec)}")
        gen.w("if k in _released:")
        gen.indent += 1
        allowed = gen.match_expr(formula.allowed, with_kind=split)
        gen.guarded(allowed)
        gen.w("_violate(k, evt.time, evt.container, 'until', evt)")
        gen.unguard(allowed)
        gen.indent -= 1
        gen.w("else:")
        gen.indent += 1
        release = gen.match_expr(formula.release, with_kind=split)
        gen.guarded(release)
        gen.w("_released.add(k)")
        gen.unguard(release)
        gen.indent -= 1
        gen.indent -= 1
        gen.w("def _finish(now):")
        gen.w("    pass")
        return

    raise ConfigurationError(f"cannot compile formula {formula!r}")


class CompiledAutomaton:
    """One spec's compiled monitor.

    ``step`` is the raw generated function — the engine routes it directly,
    with no wrapper frame on the hot path. ``pending`` / ``released`` expose
    the live state for status reporting and tests.
    """

    __slots__ = ("spec", "step", "pending", "released", "_finish", "source")

    def __init__(self, spec: Spec, sink: ViolationSink):
        gen = _Gen()
        _render(spec, gen)
        source = "\n".join(gen.lines)
        code = _CODE_CACHE.get(source)
        if code is None:
            code = compile(source, f"<verify {spec.name}>", "exec")
            if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
                _CODE_CACHE.clear()
            _CODE_CACHE[source] = code

        pending: Dict[object, Tuple] = {}
        released: set = set()

        def violate(key, time, container, reason, event=None, _spec=spec, _sink=sink):
            _sink(make_violation(_spec, key, time, container, reason, event))

        env = gen.env
        env.update(
            _pending=pending,
            _released=released,
            _heap=[],
            _serial=[0],
            _heappush=heappush,
            _heappop=heappop,
            _violate=violate,
            _GK=GLOBAL,
        )
        exec(code, env)

        self.spec = spec
        self.step = env["_step"]
        self._finish = env["_finish"]
        self.pending = pending
        self.released = released
        self.source = source

    def finish(self, now: float) -> None:
        """End of observation at (virtual) time ``now``: expire every
        obligation whose deadline already passed; obligations still inside
        their window stay pending, not violated."""
        self._finish(now)

    def pending_obligations(self) -> List[Tuple[object, Optional[float]]]:
        """(key, deadline) for every armed-but-undischarged response."""
        return [(key, entry[1]) for key, entry in sorted(
            self.pending.items(), key=lambda item: repr(item[0])
        )]


def compile_spec(spec: Spec, sink: ViolationSink) -> CompiledAutomaton:
    return CompiledAutomaton(spec, sink)


__all__ = ["CompiledAutomaton", "compile_spec", "make_violation", "MESSAGES"]
