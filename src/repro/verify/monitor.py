"""Monitor engine and container taps: specs armed over a live system.

The :class:`MonitorEngine` holds the compiled automata and routes each
observed :class:`~repro.observability.probes.MonitorEvent` by probe kind —
one dict lookup, then the compiled step functions registered for that
kind. Events of kinds no spec mentions cost exactly the failed lookup.

A :class:`ContainerTap` plugs one container into an engine:

* subscribes to the container's :class:`~repro.observability.probes.ProbeBus`
  (which arms the primitives' emit sites),
* synthesizes ``svc.transition`` events by chaining onto each service's
  lifecycle observer (the same hook :class:`~repro.faults.invariants.
  InvariantChecker` uses — both can chain, order-independent),
* synthesizes ``peer.alive`` / ``peer.dead`` events from the container's
  directory callbacks,
* optionally (``tracing=True``) mirrors the tracer's span stream as
  ``span.start`` / ``span.finish`` events via
  :meth:`~repro.observability.trace.Tracer.subscribe`.

:class:`FleetMonitor` is the fleet-wide front end: attach every container
of a runtime, run the mission, then :meth:`~FleetMonitor.finish` and read
:attr:`~FleetMonitor.violations`. Each violation is also pushed into the
offending container's FlightRecorder and MetricsRegistry
(``verify_violations`` counter labeled by spec), and — when the container
is inside a traced operation at detection time — stamped with the ambient
trace context, so a spec failure points at the span that caused it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.container.lifecycle import ServiceRecord, is_legal_transition
from repro.observability.probes import MonitorEvent
from repro.util.errors import ConfigurationError
from repro.verify.compiler import CompiledAutomaton, compile_spec
from repro.verify.spec import Spec, Violation


class MonitorEngine:
    """Compiled automata plus the kind-routing table. One engine can serve
    a whole fleet: events from every tapped container funnel through
    :meth:`observe` in arrival order (virtual-time order under SimRuntime).
    """

    def __init__(
        self,
        specs: Sequence[Spec],
        on_violation: Optional[Callable[[Violation], None]] = None,
    ):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate spec names in {names}")
        self.specs: Tuple[Spec, ...] = tuple(specs)
        self.violations: List[Violation] = []
        self.events_observed = 0
        self._on_violation = on_violation

        def sink(violation: Violation) -> None:
            self.violations.append(violation)
            if self._on_violation is not None:
                self._on_violation(violation)

        self.automata: List[CompiledAutomaton] = [
            compile_spec(spec, sink) for spec in specs
        ]
        route: Dict[str, List[Callable[[MonitorEvent], None]]] = {}
        for automaton in self.automata:
            for kind in automaton.spec.kinds():
                route.setdefault(kind, []).append(automaton.step)
        self._route: Dict[str, Tuple[Callable[[MonitorEvent], None], ...]] = {
            kind: tuple(steps) for kind, steps in route.items()
        }

    def observe(self, event: MonitorEvent) -> None:
        """The armed hot path: route by kind, step the automata there."""
        self.events_observed += 1
        steps = self._route.get(event.kind)
        if steps is not None:
            for step in steps:
                step(event)

    def finish(self, now: float) -> None:
        """Close observation at time ``now``: expire overdue response
        obligations; in-window obligations stay pending (truncation never
        manufactures violations)."""
        for automaton in self.automata:
            automaton.finish(now)

    def pending(self) -> Dict[str, List[Tuple[object, Optional[float]]]]:
        """Per spec, the armed-but-undischarged (key, deadline) obligations."""
        return {
            automaton.spec.name: obligations
            for automaton in self.automata
            if (obligations := automaton.pending_obligations())
        }


class ContainerTap:
    """Wiring between one container and an engine (see module docstring).

    Attach after the container's services are installed — lifecycle
    chaining walks the services present at attach time, exactly like
    ``InvariantChecker.attach``.
    """

    def __init__(self, container, engine: MonitorEngine, tracing: bool = False):
        self.container = container
        self._engine = engine
        self._probe_listener = container.probes.subscribe(engine.observe)
        self._span_listener = (
            container.tracer.subscribe(self._on_span) if tracing else None
        )
        for record in container.services():
            self._watch(record)
        container.directory.on_container_up(self._on_peer_up)
        container.directory.on_container_down(self._on_peer_down)

    def detach(self) -> None:
        """Disarm the probe path. The lifecycle/directory hooks stay chained
        but emit through the bus, which goes inert once unsubscribed."""
        self.container.probes.unsubscribe(self._probe_listener)
        if self._span_listener is not None:
            self.container.tracer.unsubscribe(self._span_listener)
            self._span_listener = None

    # -- synthesized streams -------------------------------------------------
    def _on_span(self, span, phase: str) -> None:
        self._engine.observe(
            MonitorEvent(
                f"span.{phase}",
                span.name,
                span.container,
                span.start if phase == "start" else span.end,
                attrs={
                    "kind": span.kind,
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                },
            )
        )

    def _watch(self, record: ServiceRecord) -> None:
        previous = record.observer
        probes = self.container.probes

        def observe(rec, old, new, _previous=previous, _probes=probes):
            if _previous is not None:
                _previous(rec, old, new)
            if _probes.enabled:
                _probes.emit(
                    "svc.transition",
                    rec.name,
                    attrs={
                        "old": old.value,
                        "new": new.value,
                        "legal": is_legal_transition(old, new),
                        "escalated": rec.escalated,
                    },
                )

        record.observer = observe

    def _on_peer_up(self, record) -> None:
        probes = self.container.probes
        if probes.enabled:
            probes.emit(
                "peer.alive", record.container, attrs={"peer": record.container}
            )

    def _on_peer_down(self, record) -> None:
        probes = self.container.probes
        if probes.enabled:
            probes.emit(
                "peer.dead", record.container, attrs={"peer": record.container}
            )


class FleetMonitor:
    """Fleet-wide runtime verification: one engine, a tap per container,
    violations mirrored into each victim's recorder and metrics."""

    def __init__(
        self,
        specs: Optional[Sequence[Spec]] = None,
        tracing: bool = False,
    ):
        if specs is None:
            from repro.verify.library import standard_specs

            specs = standard_specs()
        self._tracing = tracing
        self._containers: Dict[str, object] = {}
        self._taps: List[ContainerTap] = []
        self.engine = MonitorEngine(specs, on_violation=self._record)
        self._finished = False

    # -- wiring --------------------------------------------------------------
    def attach(self, container) -> ContainerTap:
        tap = ContainerTap(container, self.engine, tracing=self._tracing)
        self._containers[container.id] = container
        self._taps.append(tap)
        return tap

    def attach_runtime(self, runtime) -> "FleetMonitor":
        """Tap every container of a runtime (SimRuntime or the real ones)."""
        for container_id in sorted(runtime.containers):
            self.attach(runtime.containers[container_id])
        return self

    def detach_all(self) -> None:
        for tap in self._taps:
            tap.detach()
        self._taps.clear()

    # -- verdicts ------------------------------------------------------------
    @property
    def specs(self) -> Tuple[Spec, ...]:
        return self.engine.specs

    @property
    def violations(self) -> List[Violation]:
        return self.engine.violations

    def finish(self, now: Optional[float] = None) -> List[Violation]:
        """Expire overdue obligations and return all violations. ``now``
        defaults to the tapped containers' current clock reading."""
        if now is None:
            clocks = [tap.container.clock.now() for tap in self._taps]
            now = max(clocks) if clocks else 0.0
        self.engine.finish(now)
        self._finished = True
        return self.engine.violations

    def report(self) -> Dict[str, object]:
        """JSON-shaped summary for CLI output and experiment artifacts."""
        return {
            "specs": [
                {"name": spec.name, "owner": spec.owner, "severity": spec.severity}
                for spec in self.engine.specs
            ],
            "containers": sorted(self._containers),
            "events_observed": self.engine.events_observed,
            "violations": [v.to_dict() for v in self.engine.violations],
            "pending": {
                name: [
                    {"key": repr(key), "deadline": deadline}
                    for key, deadline in obligations
                ]
                for name, obligations in self.engine.pending().items()
            },
        }

    # -- violation fan-out ---------------------------------------------------
    def _record(self, violation: Violation) -> None:
        container = self._containers.get(violation.container)
        if container is None:
            return
        tracer = container.tracer
        if (
            tracer.enabled
            and tracer.current is not None
            and violation.reason != "response-timeout"
        ):
            # Synchronous detection: the probe fired inside whatever span the
            # container is executing, so the ambient context *is* the cause.
            # (Timeouts are detected later, at an unrelated event — no
            # ambient context would be honest there.)
            context = tracer.current
            enriched = replace(
                violation, trace_id=context.trace_id, span_id=context.span_id
            )
            # The sink appended before fanning out, so the raw violation is
            # the list tail; swap in the enriched copy.
            self.engine.violations[-1] = enriched
            violation = enriched
        container.recorder.record(
            "verify.violation",
            spec=violation.spec,
            key=violation.key,
            reason=violation.reason,
            message=violation.message,
            severity=violation.severity,
            violated_at=violation.time,
            trace_id=violation.trace_id,
            span_id=violation.span_id,
        )
        container.metrics.counter(
            "verify_violations", spec=violation.spec, severity=violation.severity
        ).inc()


__all__ = ["MonitorEngine", "ContainerTap", "FleetMonitor"]
