"""Naive reference interpreter for the spec semantics.

This is the slow, obviously-correct evaluator: it walks the formula
objects with ``isinstance`` dispatch and linear scans, exactly as the
semantics in :mod:`repro.verify.spec` read on paper. It exists for one
purpose — the differential property suite
(``tests/property/test_verify_properties.py``) feeds arbitrary event
streams to this interpreter and to the compiled automata and requires
identical verdicts, the same oracle discipline the codec suite applies to
``encoding/compiled.py`` vs ``BinaryCodec``.

Keep this module dumb. Every optimization belongs in
:mod:`repro.verify.compiler`; an optimization here would erode the point
of having two independent evaluators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.observability.probes import MonitorEvent
from repro.util.errors import ConfigurationError
from repro.verify.compiler import make_violation
from repro.verify.spec import (
    Always,
    Never,
    Response,
    Spec,
    Until,
    Violation,
)


class NaiveMonitor:
    """Interprets one spec over an event stream, collecting violations."""

    def __init__(self, spec: Spec):
        self.spec = spec
        self.violations: List[Violation] = []
        self._kinds = frozenset(spec.kinds())
        # response: key -> (deadline, trigger container, trigger event)
        self._pending: Dict[object, Tuple[Optional[float], str, MonitorEvent]] = {}
        self._released: Set[object] = set()

    def observe(self, evt: MonitorEvent) -> None:
        if evt.kind not in self._kinds:
            return
        formula = self.spec.formula
        if isinstance(formula, Never):
            if formula.pattern.matches(evt):
                self._violate(self.spec.extract_key(evt), evt.time, evt.container,
                              "never", evt)
        elif isinstance(formula, Always):
            if formula.pattern.matches(evt) and not formula.that(evt):
                self._violate(self.spec.extract_key(evt), evt.time, evt.container,
                              "always", evt)
        elif isinstance(formula, Response):
            self._expire(evt.time)
            if formula.response.matches(evt):
                self._pending.pop(self.spec.extract_key(evt), None)
            if formula.trigger.matches(evt):
                key = self.spec.extract_key(evt)
                if key not in self._pending:
                    deadline = (
                        evt.time + formula.within
                        if formula.within is not None
                        else None
                    )
                    self._pending[key] = (deadline, evt.container, evt)
        elif isinstance(formula, Until):
            key = self.spec.extract_key(evt)
            if key in self._released:
                if formula.allowed.matches(evt):
                    self._violate(key, evt.time, evt.container, "until", evt)
            elif formula.release.matches(evt):
                self._released.add(key)
        else:
            raise ConfigurationError(f"cannot interpret formula {formula!r}")

    def finish(self, now: float) -> None:
        self._expire(now)

    def _expire(self, bound: float) -> None:
        # Linear scan, oldest deadline first — deliberately artless.
        due = sorted(
            (
                (deadline, key, container, trigger)
                for key, (deadline, container, trigger) in self._pending.items()
                if deadline is not None and deadline < bound
            ),
            key=lambda item: (item[0], repr(item[1])),
        )
        for deadline, key, container, trigger in due:
            del self._pending[key]
            self._violate(key, deadline, container, "response-timeout", trigger)

    def _violate(
        self,
        key: object,
        time: float,
        container: str,
        reason: str,
        event: Optional[MonitorEvent],
    ) -> None:
        self.violations.append(
            make_violation(self.spec, key, time, container, reason, event)
        )


def run_naive(specs: List[Spec], events: List[MonitorEvent],
              end_time: Optional[float] = None) -> List[Violation]:
    """Evaluate ``specs`` over ``events`` start to finish; the reference
    verdict for differential tests."""
    monitors = [NaiveMonitor(spec) for spec in specs]
    for evt in events:
        for monitor in monitors:
            monitor.observe(evt)
    if end_time is None:
        end_time = events[-1].time if events else 0.0
    out: List[Violation] = []
    for monitor in monitors:
        monitor.finish(end_time)
        out.extend(monitor.violations)
    return out


__all__ = ["NaiveMonitor", "run_naive"]
