"""Declarative temporal specifications over the monitored event stream.

A :class:`Spec` names one property of the running system, stated over
:class:`~repro.observability.probes.MonitorEvent` streams with four
combinators (the formula grammar deliberately stays small enough that
every formula compiles into a constant-state automaton):

``never(p)``
    No event may ever match pattern ``p``.
``always(p, that)``
    Every event matching ``p`` must satisfy predicate ``that``.
``response(p, q, within=T)``
    Every ``p`` must be followed by a ``q`` *with the same key* no more
    than ``T`` (virtual) seconds later. ``within=None`` leaves the
    obligation unbounded — it can then never be falsified on a finite
    trace, which is why the REP006 lint flags it.
``until(p, q)``
    Events matching ``p`` are permitted only until the first ``q`` with
    the same key; any later ``p`` violates. ``at_most_once(p)`` is the
    ``until(p, p)`` special case — the second occurrence of a key
    violates (the exactly-once shape).

Patterns are built with :func:`event`: an exact probe ``kind``, optional
``name`` equality, optional attribute equalities, optional ``where``
predicate. Every spec is scoped *per key*: by default an event's key is
its primitive name; ``Spec(key="attr")`` keys by an attribute, and a
callable computes anything (``key=lambda e: (e.container, e.name)``).
:data:`GLOBAL` collapses all events into a single automaton instance.

Exact step semantics (shared verbatim by the compiled automata and the
naive reference interpreter in :mod:`repro.verify.interp` — the
differential property suite holds the two to byte-equal verdicts):

1. Before an event at time ``t`` is processed, every pending response
   obligation with ``deadline < t`` expires as a violation (stamped at
   the deadline, attributed to the triggering event's container).
2. ``response``: a matching response *discharges* the key's pending
   obligation first; a matching trigger then arms a new obligation only
   if none is pending (the earliest undischarged trigger defines the
   deadline; a response at exactly the deadline still counts).
3. ``until``: a released key checks the forbidden pattern first, so an
   event matching both patterns releases on first sight and violates
   from the second occurrence on.
4. ``finish(now)`` expires obligations with ``deadline < now``; anything
   still inside its window is *pending*, not violated (truncation never
   manufactures violations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.observability.probes import MonitorEvent
from repro.util.errors import ConfigurationError

Predicate = Callable[[MonitorEvent], bool]
KeyFn = Callable[[MonitorEvent], object]

#: Key mode collapsing every event into one automaton instance.
GLOBAL = "\x00global"


@dataclass(frozen=True)
class EventPattern:
    """Matches events of one probe ``kind`` (exact), optionally narrowed
    by name, attribute equalities and a predicate."""

    kind: str
    name: Optional[str] = None
    attrs: Tuple[Tuple[str, object], ...] = ()
    where: Optional[Predicate] = None

    def matches(self, event: MonitorEvent) -> bool:
        if event.kind != self.kind:
            return False
        if self.name is not None and event.name != self.name:
            return False
        for attr, expected in self.attrs:
            if event.attrs.get(attr) != expected:
                return False
        return self.where is None or bool(self.where(event))


def event(
    kind: str,
    name: Optional[str] = None,
    where: Optional[Predicate] = None,
    **attrs: object,
) -> EventPattern:
    """Pattern combinator: ``event("var.serve", name="gps.fix", band=2)``."""
    if not kind:
        raise ConfigurationError("event pattern needs a probe kind")
    return EventPattern(
        kind=kind, name=name, attrs=tuple(sorted(attrs.items())), where=where
    )


class Formula:
    """Marker base for the temporal combinators."""

    __slots__ = ()


@dataclass(frozen=True)
class Never(Formula):
    pattern: EventPattern


@dataclass(frozen=True)
class Always(Formula):
    pattern: EventPattern
    that: Predicate


@dataclass(frozen=True)
class Response(Formula):
    trigger: EventPattern
    response: EventPattern
    within: Optional[float] = None


@dataclass(frozen=True)
class Until(Formula):
    allowed: EventPattern
    release: EventPattern


def never(pattern: EventPattern) -> Never:
    return Never(pattern)


def always(pattern: EventPattern, that: Predicate) -> Always:
    if not callable(that):
        raise ConfigurationError("always() needs a callable predicate")
    return Always(pattern, that)


def response(
    trigger: EventPattern,
    followed_by: EventPattern,
    within: Optional[float] = None,
) -> Response:
    if within is not None and within <= 0:
        raise ConfigurationError("response within= must be positive")
    return Response(trigger, followed_by, within)


def until(allowed: EventPattern, release: EventPattern) -> Until:
    return Until(allowed, release)


def at_most_once(pattern: EventPattern) -> Until:
    """Per key, ``pattern`` may fire once; every repeat violates."""
    return Until(pattern, pattern)


@dataclass(frozen=True)
class Spec:
    """One named, owned temporal property.

    ``key`` selects the per-key scope: ``None`` uses the event's default
    key (its primitive name), a string reads that attribute, a callable
    computes the key, :data:`GLOBAL` uses one shared instance.
    """

    name: str
    owner: str
    formula: Formula
    key: Union[None, str, KeyFn] = None
    severity: str = "error"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("spec needs a name")
        if not self.owner:
            raise ConfigurationError(f"spec {self.name!r} needs an owner")
        if not isinstance(self.formula, Formula):
            raise ConfigurationError(
                f"spec {self.name!r}: formula must be built with the "
                "never/always/response/until combinators"
            )
        if self.severity not in ("error", "warning"):
            raise ConfigurationError(
                f"spec {self.name!r}: severity must be 'error' or 'warning'"
            )

    def patterns(self) -> Tuple[EventPattern, ...]:
        formula = self.formula
        if isinstance(formula, (Never, Always)):
            return (formula.pattern,)
        if isinstance(formula, Response):
            return (formula.trigger, formula.response)
        if isinstance(formula, Until):
            return (formula.allowed, formula.release)
        raise ConfigurationError(f"unknown formula {formula!r}")

    def kinds(self) -> Tuple[str, ...]:
        """The probe kinds this spec must be routed (deduplicated, ordered)."""
        seen: Dict[str, None] = {}
        for pattern in self.patterns():
            seen.setdefault(pattern.kind)
        return tuple(seen)

    def extract_key(self, evt: MonitorEvent) -> object:
        key = self.key
        if key is None:
            return evt.key
        if key is GLOBAL:
            return GLOBAL
        if isinstance(key, str):
            return evt.attrs.get(key)
        return key(evt)


@dataclass(frozen=True)
class Violation:
    """One falsified spec instance, attributed to the place it happened."""

    spec: str
    key: object
    time: float
    container: str
    reason: str  # "never" | "always" | "response-timeout" | "until"
    message: str = ""
    severity: str = "error"
    trace_id: str = ""
    span_id: str = ""
    event: Optional[MonitorEvent] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "key": self.key,
            "time": self.time,
            "container": self.container,
            "reason": self.reason,
            "message": self.message,
            "severity": self.severity,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }


__all__ = [
    "EventPattern",
    "Formula",
    "Never",
    "Always",
    "Response",
    "Until",
    "Spec",
    "Violation",
    "GLOBAL",
    "event",
    "never",
    "always",
    "response",
    "until",
    "at_most_once",
]
