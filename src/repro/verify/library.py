"""The shipped spec library: middleware contracts as temporal specs.

These are the hand-written :class:`~repro.faults.invariants.InvariantChecker`
checks re-stated declaratively (where the spec language can express them),
plus the mission-level shapes the paper's scenarios imply ("every
photo-waypoint event is followed by a file-transfer completion within T").
Each builder returns a :class:`~repro.verify.spec.Spec` with an explicit
owner and bound, so campaigns can arm them piecemeal or take
:func:`standard_specs` wholesale.

The InvariantChecker remains the post-hoc oracle — the differential test
in ``tests/integration/test_verification.py`` runs both over the same
seeded chaos trace and requires them to agree. The specs add what the
checker cannot do: *online* detection, at the moment and container where
the contract broke, with the causing span attached.
"""

from __future__ import annotations

from typing import List, Optional

from repro.verify.spec import (
    GLOBAL,
    Spec,
    always,
    at_most_once,
    event,
    never,
    response,
)

#: Owner recorded on the built-in middleware contracts.
MIDDLEWARE_OWNER = "middleware-core"


def variable_validity(owner: str = MIDDLEWARE_OWNER) -> Spec:
    """No variable read is ever served from cache past its publisher's
    validity window. The ``var.serve`` probe reports the measured sample
    age and the window; the spec re-derives freshness, so a broken serve
    predicate cannot vouch for itself."""
    return Spec(
        name="var-validity",
        owner=owner,
        formula=always(
            event("var.serve"),
            that=lambda e: (
                e.attrs["validity"] <= 0 or e.attrs["age"] <= e.attrs["validity"]
            ),
        ),
        description="cached variable reads respect the validity window",
    )


def reliable_exactly_once(owner: str = MIDDLEWARE_OWNER) -> Spec:
    """Each reliable (source, channel, seq) is delivered at most once per
    receiver *within one stream epoch* — the dedup window holds even under
    replay attack. The epoch (bumped when the peer's link state resets on
    death/restart) scopes the guarantee exactly like the link layer does:
    a restarted sender legitimately reuses its sequence numbers."""
    return Spec(
        name="reliable-exactly-once",
        owner=owner,
        formula=at_most_once(event("reliable.deliver")),
        key=lambda e: (
            e.container,
            e.attrs["source"],
            e.attrs["channel"],
            e.attrs["epoch"],
            e.attrs["seq"],
        ),
        description="reliable frames are never delivered twice per epoch",
    )


def invocation_termination(
    owner: str = MIDDLEWARE_OWNER, within: float = 30.0
) -> Spec:
    """Every issued call terminates (result or defined error) within
    ``within`` virtual seconds — redirect loops included; the probe keys
    both ends by call id."""
    return Spec(
        name="invocation-termination",
        owner=owner,
        formula=response(
            event("rpc.call"), event("rpc.done"), within=within
        ),
        description="every invocation terminates with a result or error",
    )


def lifecycle_legality(owner: str = MIDDLEWARE_OWNER) -> Spec:
    """No service ever takes a transition outside the lifecycle table."""
    return Spec(
        name="lifecycle-legality",
        owner=owner,
        formula=always(event("svc.transition"), that=lambda e: e.attrs["legal"]),
        key=lambda e: (e.container, e.name),
        description="service lifecycle transitions stay inside the table",
    )


def no_resurrection(owner: str = MIDDLEWARE_OWNER) -> Spec:
    """An escalated (permanently failed) service never runs again."""
    return Spec(
        name="no-resurrection",
        owner=owner,
        formula=never(
            event(
                "svc.transition",
                where=lambda e: (
                    e.attrs["escalated"] and e.attrs["new"] == "running"
                ),
            )
        ),
        key=lambda e: (e.container, e.name),
        description="escalated services stay down",
    )


def convergence_response(
    owner: str = MIDDLEWARE_OWNER, within: float = 30.0
) -> Spec:
    """Control-plane convergence, online: every peer an observer marks dead
    is seen alive again within the heal window. Keyed per (observer, peer)
    pair. Arm only in campaigns that heal everything they break — a
    permanently retired container is, correctly, a violation."""
    return Spec(
        name="convergence-response",
        owner=owner,
        formula=response(event("peer.dead"), event("peer.alive"), within=within),
        key=lambda e: (e.container, e.attrs["peer"]),
        description="peers marked dead are re-discovered within the heal window",
    )


def mission_response(
    name: str,
    trigger_kind: str,
    trigger_name: str,
    reply_kind: str,
    reply_name: str,
    within: float,
    owner: str,
    per_container: bool = False,
) -> Spec:
    """Mission-level response shape: every ``trigger_name`` occurrence on
    ``trigger_kind`` is followed by ``reply_name`` on ``reply_kind`` within
    the bound — e.g. photo-waypoint event → file-transfer completion.
    ``per_container`` scopes the obligation to the observing container;
    the default treats the fleet as one pipeline."""
    return Spec(
        name=name,
        owner=owner,
        formula=response(
            event(trigger_kind, name=trigger_name),
            event(reply_kind, name=reply_name),
            within=within,
        ),
        key=(lambda e: e.container) if per_container else GLOBAL,
        description=(
            f"{trigger_name} is answered by {reply_name} within {within}s"
        ),
    )


def standard_specs(
    owner: str = MIDDLEWARE_OWNER,
    call_bound: float = 30.0,
    heal_bound: Optional[float] = None,
) -> List[Spec]:
    """The always-on middleware contracts. ``heal_bound`` arms
    :func:`convergence_response` too (opt-in — see its caveat)."""
    specs = [
        variable_validity(owner),
        reliable_exactly_once(owner),
        invocation_termination(owner, within=call_bound),
        lifecycle_legality(owner),
        no_resurrection(owner),
    ]
    if heal_bound is not None:
        specs.append(convergence_response(owner, within=heal_bound))
    return specs


__all__ = [
    "MIDDLEWARE_OWNER",
    "variable_validity",
    "reliable_exactly_once",
    "invocation_termination",
    "lifecycle_legality",
    "no_resurrection",
    "convergence_response",
    "mission_response",
    "standard_specs",
]
