"""PEPt Presentation + Encoding subsystems.

The paper (§4.1) allows variables, event payloads and invocation parameters
to be "a basic type (boolean, integer, floating point real, character string,
etc.) or a composition (vector, struct or union) of basic types … similar to
a C-like language". This package provides:

- the type system (:mod:`repro.encoding.types`),
- a compact binary wire codec and a JSON codec behind one pluggable
  :class:`Codec` interface (Fig. 4's pluggable Encoding subsystem),
- a schema-compiled variant of the binary codec
  (:class:`~repro.encoding.compiled.CompiledCodec`) — byte-identical wire
  format from flat, precompiled pack/unpack plans,
- a C-like declaration parser (:func:`parse_type`),
- a :class:`SchemaRegistry` with the well-known avionics schemas.
"""

from repro.encoding.binary import BinaryCodec
from repro.encoding.codec import Codec, get_codec, register_codec
from repro.encoding.compiled import CompiledCodec, compile_plan
from repro.encoding.jsoncodec import JsonCodec
from repro.encoding.schema import SchemaRegistry, parse_type
from repro.encoding.types import (
    BOOL,
    BYTES,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    STRING,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    DataType,
    PrimitiveType,
    StructType,
    UnionType,
    VectorType,
)

__all__ = [
    "BinaryCodec",
    "CompiledCodec",
    "compile_plan",
    "JsonCodec",
    "Codec",
    "get_codec",
    "register_codec",
    "SchemaRegistry",
    "parse_type",
    "DataType",
    "PrimitiveType",
    "StructType",
    "UnionType",
    "VectorType",
    "BOOL",
    "BYTES",
    "STRING",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FLOAT32",
    "FLOAT64",
]
