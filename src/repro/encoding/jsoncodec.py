"""JSON wire codec — the readable, interoperable alternative plug-in.

Exists to exercise the PEPt claim that Encoding is swappable (experiment
E10 measures its size/CPU cost against the binary codec). Encoding rules:

- unions → ``{"tag": <name>, "value": <inner>}``
- ``bytes`` → hex string
- everything else → the natural JSON mapping
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.encoding.codec import register_codec
from repro.encoding.types import (
    DataType,
    PrimitiveType,
    StructType,
    UnionType,
    VectorType,
)
from repro.util.errors import EncodingError


class JsonCodec:
    """UTF-8 JSON codec with the same type-checking as the binary codec."""

    name = "json"

    def encode(self, datatype: DataType, value: Any) -> bytes:
        datatype.validate(value)
        return json.dumps(
            self._to_jsonable(datatype, value), separators=(",", ":")
        ).encode("utf-8")

    def decode(self, datatype: DataType, data: bytes) -> Any:
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EncodingError(f"invalid JSON payload: {exc}") from exc
        value = self._from_jsonable(datatype, doc)
        datatype.validate(value)
        return value

    # -- helpers -------------------------------------------------------------
    def _to_jsonable(self, datatype: DataType, value: Any) -> Any:
        if isinstance(datatype, PrimitiveType):
            if datatype.name == "bytes":
                return bytes(value).hex()
            if datatype.name in ("float32", "float64") and not math.isfinite(value):
                raise EncodingError(f"JSON cannot carry non-finite float {value!r}")
            return value
        if isinstance(datatype, VectorType):
            return [self._to_jsonable(datatype.element, v) for v in value]
        if isinstance(datatype, StructType):
            return {
                fname: self._to_jsonable(ftype, value[fname])
                for fname, ftype in datatype.fields
            }
        if isinstance(datatype, UnionType):
            tag, inner = value
            return {"tag": tag, "value": self._to_jsonable(datatype.alternative(tag), inner)}
        raise EncodingError(f"cannot encode type {datatype!r}")

    def _from_jsonable(self, datatype: DataType, doc: Any) -> Any:
        if isinstance(datatype, PrimitiveType):
            if datatype.name == "bytes":
                if not isinstance(doc, str):
                    raise EncodingError("bytes field must be a hex string in JSON")
                try:
                    return bytes.fromhex(doc)
                except ValueError as exc:
                    raise EncodingError(f"invalid hex for bytes: {exc}") from exc
            if datatype.name in ("float32", "float64") and isinstance(doc, int):
                return float(doc)
            return doc
        if isinstance(datatype, VectorType):
            if not isinstance(doc, list):
                raise EncodingError("vector field must be a JSON array")
            return [self._from_jsonable(datatype.element, v) for v in doc]
        if isinstance(datatype, StructType):
            if not isinstance(doc, dict):
                raise EncodingError("struct field must be a JSON object")
            return {
                fname: self._from_jsonable(ftype, doc.get(fname))
                for fname, ftype in datatype.fields
                if fname in doc
            }
        if isinstance(datatype, UnionType):
            if not (isinstance(doc, dict) and "tag" in doc):
                raise EncodingError("union field must be a JSON object with 'tag'")
            tag = doc["tag"]
            return (tag, self._from_jsonable(datatype.alternative(tag), doc.get("value")))
        raise EncodingError(f"cannot decode type {datatype!r}")


register_codec(JsonCodec())

__all__ = ["JsonCodec"]
