"""Schema-compiled binary codec: flat pack/unpack plans, zero-copy decode.

:class:`~repro.encoding.binary.BinaryCodec` walks the schema tree with
``isinstance`` dispatch for every value it marshals. This module compiles a
:class:`DataType` **once** into a pair of closures — an encoder appending
byte chunks and a decoder tracking an offset into a ``memoryview`` — and
caches the plan per schema. Three flattening rules make the plans fast:

1. **Run coalescing** — adjacent fixed-width struct fields (including
   nested all-fixed structs and fixed-length vectors of fixed-width
   primitives) collapse into a single precomputed :class:`struct.Struct`
   pack/unpack.
2. **Vector batching** — vectors of fixed-width primitives pack/unpack all
   elements in one ``struct`` call instead of one Python call per element.
3. **Zero-copy decode** — decoding slices a ``memoryview`` with explicit
   offset tracking; strings decode straight out of the buffer and nothing
   is funneled through ``BytesIO``.

The wire format is byte-for-byte identical to ``BinaryCodec`` — the
differential property suites machine-check this on generated schemas. The
one intentional semantic difference: validation is *lazy*. ``encode`` packs
optimistically and only falls back to :meth:`DataType.validate` to raise
the precise :class:`EncodingError` when packing fails, so a handful of
malformed-but-packable values (a ``bool`` in an int field, extra struct
keys) encode instead of raising. Use ``BinaryCodec`` where strict upfront
validation matters more than throughput.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.encoding.binary import MAX_SEQUENCE_LENGTH
from repro.encoding.codec import register_codec
from repro.encoding.types import (
    DataType,
    PrimitiveType,
    StructType,
    UnionType,
    VectorType,
)
from repro.util.errors import EncodingError

#: struct format characters for the fixed-width primitives (always paired
#: with the little-endian "<" prefix). ``?`` packs/unpacks exactly the
#: 0x00/0x01 bytes BinaryCodec writes for bool.
_FIXED_CODES = {
    "bool": "?",
    "int8": "b",
    "int16": "h",
    "int32": "i",
    "int64": "q",
    "uint8": "B",
    "uint16": "H",
    "uint32": "I",
    "uint64": "Q",
    "float32": "f",
    "float64": "d",
}

_LEN = struct.Struct("<I")

#: Encoders receive ``(value, append)`` and push byte chunks; decoders
#: receive ``(buf, offset)`` and return ``(value, new_offset)``.
_Encoder = Callable[[Any, Callable[[bytes], None]], None]
_Decoder = Callable[[memoryview, int], Tuple[Any, int]]


class _Flat:
    """Flat layout of a fully fixed-width type: its struct format codes plus
    closures to splice values into / rebuild values from a scalar run."""

    __slots__ = ("codes", "scalar", "flatten", "build")

    def __init__(self, codes: str, scalar: bool, flatten, build):
        self.codes = codes
        self.scalar = scalar  # a single primitive (one unpacked slot)
        self.flatten = flatten  # (value, append_scalar) -> None
        self.build = build  # (values, i) -> (value, i)


def _flat_layout(datatype: DataType) -> Optional[_Flat]:
    """The flat layout of ``datatype``, or None if it is variable-size."""
    if isinstance(datatype, PrimitiveType):
        code = _FIXED_CODES.get(datatype.name)
        if code is None:
            return None

        def flatten(value, append):
            append(value)

        def build(values, i):
            return values[i], i + 1

        return _Flat(code, True, flatten, build)

    if isinstance(datatype, VectorType) and datatype.length is not None:
        inner = _flat_layout(datatype.element)
        if inner is None:
            return None
        n = datatype.length
        desc = datatype.describe()
        if inner.scalar:

            def flatten(value, append, _n=n, _desc=desc):
                if len(value) != _n:
                    raise EncodingError(
                        f"expected vector of length {_n} for {_desc}, got {len(value)}"
                    )
                for item in value:
                    append(item)

            def build(values, i, _n=n):
                return list(values[i : i + _n]), i + _n

        else:

            def flatten(value, append, _n=n, _f=inner.flatten, _desc=desc):
                if len(value) != _n:
                    raise EncodingError(
                        f"expected vector of length {_n} for {_desc}, got {len(value)}"
                    )
                for item in value:
                    _f(item, append)

            def build(values, i, _n=n, _b=inner.build):
                out = []
                for _ in range(_n):
                    item, i = _b(values, i)
                    out.append(item)
                return out, i

        return _Flat(inner.codes * n, False, flatten, build)

    if isinstance(datatype, StructType):
        parts: List[Tuple[str, _Flat]] = []
        for fname, ftype in datatype.fields:
            inner = _flat_layout(ftype)
            if inner is None:
                return None
            parts.append((fname, inner))
        entries = tuple(parts)

        def flatten(value, append, _entries=entries):
            for fname, flat in _entries:
                flat.flatten(value[fname], append)

        def build(values, i, _entries=entries):
            out = {}
            for fname, flat in _entries:
                out[fname], i = flat.build(values, i)
            return out, i

        return _Flat("".join(f.codes for _, f in parts), False, flatten, build)

    return None


# -- encoder compilation ---------------------------------------------------------


def _run_encoder(run: List[Tuple[str, _Flat]]):
    """One encode step for a coalesced run of fixed-width struct fields."""
    pack = struct.Struct("<" + "".join(f.codes for _, f in run)).pack
    if all(f.scalar for _, f in run):
        names = tuple(name for name, _ in run)

        def step(value, append, _pack=pack, _names=names):
            append(_pack(*[value[n] for n in _names]))

        return step

    entries = tuple(run)

    def step(value, append, _pack=pack, _entries=entries):
        args: List[Any] = []
        push = args.append
        for name, flat in _entries:
            flat.flatten(value[name], push)
        append(_pack(*args))

    return step


def _compile_encoder(datatype: DataType) -> _Encoder:
    flat = _flat_layout(datatype)
    if flat is not None:
        pack = struct.Struct("<" + flat.codes).pack
        if flat.scalar:

            def enc(value, append, _pack=pack):
                append(_pack(value))

            return enc
        if isinstance(datatype, StructType) and all(
            isinstance(ftype, PrimitiveType) for _, ftype in datatype.fields
        ):
            names = tuple(name for name, _ in datatype.fields)

            def enc(value, append, _pack=pack, _names=names):
                append(_pack(*[value[n] for n in _names]))

            return enc
        flatten = flat.flatten

        def enc(value, append, _pack=pack, _flatten=flatten):
            args: List[Any] = []
            _flatten(value, args.append)
            append(_pack(*args))

        return enc

    if isinstance(datatype, PrimitiveType):
        if datatype.name == "string":

            def enc(value, append, _lpack=_LEN.pack):
                raw = value.encode("utf-8")
                append(_lpack(len(raw)))
                append(raw)

            return enc
        if datatype.name == "bytes":

            def enc(value, append, _lpack=_LEN.pack):
                append(_lpack(len(value)))
                append(bytes(value))

            return enc
        raise EncodingError(f"cannot encode type {datatype!r}")

    if isinstance(datatype, VectorType):
        element = datatype.element
        code = (
            _FIXED_CODES.get(element.name)
            if isinstance(element, PrimitiveType)
            else None
        )
        if datatype.length is None:
            if code is not None:
                # Batch: one struct.pack for the whole element run.
                def enc(value, append, _lpack=_LEN.pack, _code=code):
                    n = len(value)
                    append(_lpack(n))
                    if n:
                        append(struct.pack("<%d%s" % (n, _code), *value))

                return enc
            elem_enc = _compile_encoder(element)

            def enc(value, append, _lpack=_LEN.pack, _e=elem_enc):
                append(_lpack(len(value)))
                for item in value:
                    _e(item, append)

            return enc
        # Fixed length with variable-size elements (fixed-width elements were
        # handled by the flat fast path above).
        elem_enc = _compile_encoder(element)
        length = datatype.length
        desc = datatype.describe()

        def enc(value, append, _n=length, _e=elem_enc, _desc=desc):
            if len(value) != _n:
                raise EncodingError(
                    f"expected vector of length {_n} for {_desc}, got {len(value)}"
                )
            for item in value:
                _e(item, append)

        return enc

    if isinstance(datatype, StructType):
        steps = []
        run: List[Tuple[str, _Flat]] = []
        for fname, ftype in datatype.fields:
            flat_field = _flat_layout(ftype)
            if flat_field is not None:
                run.append((fname, flat_field))
                continue
            if run:
                steps.append(_run_encoder(run))
                run = []
            field_enc = _compile_encoder(ftype)

            def step(value, append, _name=fname, _e=field_enc):
                _e(value[_name], append)

            steps.append(step)
        if run:
            steps.append(_run_encoder(run))
        if len(steps) == 1:
            return steps[0]
        step_tuple = tuple(steps)

        def enc(value, append, _steps=step_tuple):
            for step in _steps:
                step(value, append)

        return enc

    if isinstance(datatype, UnionType):
        if len(datatype.alternatives) > 256:
            raise EncodingError(
                f"union {datatype.name}: {len(datatype.alternatives)} alternatives "
                f"exceed the uint8 tag space"
            )
        table = {
            tag: (bytes((index,)), _compile_encoder(alt))
            for index, (tag, alt) in enumerate(datatype.alternatives)
        }
        uname = datatype.name

        def enc(value, append, _table=table, _uname=uname):
            tag, inner = value
            try:
                prefix, inner_enc = _table[tag]
            except (KeyError, TypeError):
                raise EncodingError(f"union {_uname}: unknown tag {tag!r}") from None
            append(prefix)
            inner_enc(inner, append)

        return enc

    raise EncodingError(f"cannot encode type {datatype!r}")


# -- decoder compilation ---------------------------------------------------------


def _read_length(buf: memoryview, offset: int) -> Tuple[int, int]:
    (length,) = _LEN.unpack_from(buf, offset)
    if length > MAX_SEQUENCE_LENGTH:
        raise EncodingError(f"sequence length {length} exceeds sanity limit")
    return length, offset + 4


def _run_decoder(run: List[Tuple[str, _Flat]]):
    """One decode step for a coalesced run of fixed-width struct fields."""
    unpacker = struct.Struct("<" + "".join(f.codes for _, f in run))
    if all(f.scalar for _, f in run):
        names = tuple(name for name, _ in run)

        def step(buf, offset, out, _unpack=unpacker.unpack_from, _size=unpacker.size, _names=names):
            out.update(zip(_names, _unpack(buf, offset)))
            return offset + _size

        return step

    entries = tuple(run)

    def step(buf, offset, out, _unpack=unpacker.unpack_from, _size=unpacker.size, _entries=entries):
        values = _unpack(buf, offset)
        i = 0
        for name, flat in _entries:
            out[name], i = flat.build(values, i)
        return offset + _size

    return step


def _compile_decoder(datatype: DataType) -> _Decoder:
    flat = _flat_layout(datatype)
    if flat is not None:
        unpacker = struct.Struct("<" + flat.codes)
        if flat.scalar:

            def dec(buf, offset, _unpack=unpacker.unpack_from, _size=unpacker.size):
                return _unpack(buf, offset)[0], offset + _size

            return dec
        if isinstance(datatype, StructType) and all(
            isinstance(ftype, PrimitiveType) for _, ftype in datatype.fields
        ):
            names = tuple(name for name, _ in datatype.fields)

            def dec(buf, offset, _unpack=unpacker.unpack_from, _size=unpacker.size, _names=names):
                return dict(zip(_names, _unpack(buf, offset))), offset + _size

            return dec
        build = flat.build

        def dec(buf, offset, _unpack=unpacker.unpack_from, _size=unpacker.size, _build=build):
            value, _ = _build(_unpack(buf, offset), 0)
            return value, offset + _size

        return dec

    if isinstance(datatype, PrimitiveType):
        if datatype.name == "string":

            def dec(buf, offset):
                length, offset = _read_length(buf, offset)
                end = offset + length
                if end > len(buf):
                    raise EncodingError(
                        f"truncated payload: wanted {length} bytes, "
                        f"got {len(buf) - offset}"
                    )
                return str(buf[offset:end], "utf-8"), end

            return dec
        if datatype.name == "bytes":

            def dec(buf, offset):
                length, offset = _read_length(buf, offset)
                end = offset + length
                if end > len(buf):
                    raise EncodingError(
                        f"truncated payload: wanted {length} bytes, "
                        f"got {len(buf) - offset}"
                    )
                return bytes(buf[offset:end]), end

            return dec
        raise EncodingError(f"cannot decode type {datatype!r}")

    if isinstance(datatype, VectorType):
        element = datatype.element
        code = (
            _FIXED_CODES.get(element.name)
            if isinstance(element, PrimitiveType)
            else None
        )
        if datatype.length is None:
            if code is not None:
                itemsize = struct.calcsize("<" + code)

                def dec(buf, offset, _code=code, _itemsize=itemsize):
                    count, offset = _read_length(buf, offset)
                    if not count:
                        return [], offset
                    values = struct.unpack_from("<%d%s" % (count, _code), buf, offset)
                    return list(values), offset + count * _itemsize

                return dec
            elem_dec = _compile_decoder(element)

            def dec(buf, offset, _e=elem_dec):
                count, offset = _read_length(buf, offset)
                out = []
                push = out.append
                for _ in range(count):
                    item, offset = _e(buf, offset)
                    push(item)
                return out, offset

            return dec
        elem_dec = _compile_decoder(element)
        length = datatype.length

        def dec(buf, offset, _n=length, _e=elem_dec):
            out = []
            push = out.append
            for _ in range(_n):
                item, offset = _e(buf, offset)
                push(item)
            return out, offset

        return dec

    if isinstance(datatype, StructType):
        steps = []
        run: List[Tuple[str, _Flat]] = []
        for fname, ftype in datatype.fields:
            flat_field = _flat_layout(ftype)
            if flat_field is not None:
                run.append((fname, flat_field))
                continue
            if run:
                steps.append(_run_decoder(run))
                run = []
            field_dec = _compile_decoder(ftype)

            def step(buf, offset, out, _name=fname, _d=field_dec):
                out[_name], offset = _d(buf, offset)
                return offset

            steps.append(step)
        if run:
            steps.append(_run_decoder(run))
        step_tuple = tuple(steps)

        def dec(buf, offset, _steps=step_tuple):
            out: Dict[str, Any] = {}
            for step in _steps:
                offset = step(buf, offset, out)
            return out, offset

        return dec

    if isinstance(datatype, UnionType):
        alternatives = tuple(
            (tag, _compile_decoder(alt)) for tag, alt in datatype.alternatives
        )
        uname = datatype.name

        def dec(buf, offset, _alts=alternatives, _count=len(alternatives), _uname=uname):
            try:
                index = buf[offset]
            except IndexError:
                raise EncodingError(
                    "truncated payload: wanted 1 byte for union tag, got 0"
                ) from None
            if index >= _count:
                raise EncodingError(f"union {_uname}: tag index {index} out of range")
            tag, alt_dec = _alts[index]
            value, offset = alt_dec(buf, offset + 1)
            return (tag, value), offset

        return dec

    raise EncodingError(f"cannot decode type {datatype!r}")


# -- generated-source plans ------------------------------------------------------
#
# The closure plans above are the general implementation (and the fallback);
# for the hot path the compiler goes one step further and emits straight-line
# Python source per schema — no per-field closure calls, no step loops — then
# ``exec``s it once. Unions and any construct the generator does not inline
# are delegated to the closure plans bound into the generated function's
# globals, so the two layers always agree.


def _seq_err(length):
    return EncodingError(f"sequence length {length} exceeds sanity limit")


def _trunc_err(wanted, got):
    return EncodingError(f"truncated payload: wanted {wanted} bytes, got {got}")


def _flat_value_expr(datatype: DataType, vals: str, index: int) -> Tuple[str, int]:
    """Expression rebuilding ``datatype`` from the scalar tuple ``vals``
    starting at ``index``; returns (source expression, next index)."""
    if isinstance(datatype, PrimitiveType):
        return f"{vals}[{index}]", index + 1
    if isinstance(datatype, VectorType):
        if isinstance(datatype.element, PrimitiveType):
            end = index + datatype.length
            return f"list({vals}[{index}:{end}])", end
        items = []
        for _ in range(datatype.length):
            expr, index = _flat_value_expr(datatype.element, vals, index)
            items.append(expr)
        return "[" + ", ".join(items) + "]", index
    # StructType — _flat_layout guarantees nothing else reaches here.
    fields = []
    for fname, ftype in datatype.fields:
        expr, index = _flat_value_expr(ftype, vals, index)
        fields.append(f"{fname!r}: {expr}")
    return "{" + ", ".join(fields) + "}", index


def _flat_arg_exprs(datatype: DataType, src: str) -> List[str]:
    """Argument expressions flattening ``src`` (which holds a value of fully
    fixed-width ``datatype``) into pack() arguments, in wire order."""
    if isinstance(datatype, PrimitiveType):
        return [src]
    if isinstance(datatype, VectorType):
        if isinstance(datatype.element, PrimitiveType):
            return [f"*{src}"]
        out: List[str] = []
        for i in range(datatype.length):
            out.extend(_flat_arg_exprs(datatype.element, f"{src}[{i}]"))
        return out
    out = []
    for fname, ftype in datatype.fields:
        out.extend(_flat_arg_exprs(ftype, f"{src}[{fname!r}]"))
    return out


class _SourceGen:
    """Shared plumbing for the encode/decode source generators."""

    def __init__(self, header: str):
        self.lines = [header]
        self.indent = 1
        self.counter = 0
        self.env: Dict[str, Any] = {
            "_ulen": _LEN.unpack_from,
            "_plen": _LEN.pack,
            "_MAX": MAX_SEQUENCE_LENGTH,
            "_seq_err": _seq_err,
            "_trunc_err": _trunc_err,
            "_unpack_from": struct.unpack_from,
            "_pack": struct.pack,
            "_join": b"".join,
        }

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def bind(self, prefix: str, obj: Any) -> str:
        name = self.fresh(prefix)
        self.env[name] = obj
        return name

    def build(self, name: str, datatype: DataType):
        source = "\n".join(self.lines)
        code = compile(
            source, f"<compiled {name} {datatype.describe()[:60]}>", "exec"
        )
        exec(code, self.env)
        return self.env[name]


class _DecoderGen(_SourceGen):
    """Emits ``_decode(buf, off) -> (value, off)`` over any buffer supporting
    slicing and ``struct.unpack_from`` — ``bytes`` stays ``bytes`` (cheapest
    slicing) and a ``memoryview`` input is sliced without copying."""

    def __init__(self):
        super().__init__("def _decode(buf, off):")
        self.w("buflen = len(buf)")

    def emit(self, datatype: DataType) -> str:
        flat = _flat_layout(datatype)
        if flat is not None:
            return self._emit_flat(datatype, flat)
        if isinstance(datatype, PrimitiveType):
            if datatype.name == "string":
                return self._emit_sized('str(buf[off:{end}], "utf-8")')
            if datatype.name == "bytes":
                return self._emit_sized("bytes(buf[off:{end}])")
            raise EncodingError(f"cannot decode type {datatype!r}")
        if isinstance(datatype, VectorType):
            return self._emit_vector(datatype)
        if isinstance(datatype, StructType):
            return self._emit_struct(datatype)
        if isinstance(datatype, UnionType):
            dec = self.bind("ud", _compile_decoder(datatype))
            value = self.fresh()
            self.w(f"{value}, off = {dec}(buf, off)")
            return value
        raise EncodingError(f"cannot decode type {datatype!r}")

    def _emit_length(self) -> str:
        count = self.fresh("n")
        self.w(f"({count},) = _ulen(buf, off)")
        self.w(f"if {count} > _MAX: raise _seq_err({count})")
        self.w("off += 4")
        return count

    def _emit_sized(self, template: str) -> str:
        count = self._emit_length()
        end = self.fresh("end")
        value = self.fresh()
        self.w(f"{end} = off + {count}")
        self.w(f"if {end} > buflen: raise _trunc_err({count}, buflen - off)")
        self.w(f"{value} = " + template.format(end=end))
        self.w(f"off = {end}")
        return value

    def _emit_flat(self, datatype: DataType, flat: _Flat) -> str:
        if flat.codes == "?" and flat.scalar:
            # A lone bool: index + compare beats a one-byte Struct.unpack
            # (IndexError on a truncated buffer is mapped to EncodingError
            # by the codec's top-level decode).
            value = self.fresh()
            self.w(f"{value} = buf[off] != 0")
            self.w("off += 1")
            return value
        unpacker = struct.Struct("<" + flat.codes)
        unpack = self.bind("u", unpacker.unpack_from)
        vals = self.fresh("vals")
        self.w(f"{vals} = {unpack}(buf, off)")
        self.w(f"off += {unpacker.size}")
        expr, _ = _flat_value_expr(datatype, vals, 0)
        value = self.fresh()
        self.w(f"{value} = {expr}")
        return value

    def _emit_vector(self, datatype: VectorType) -> str:
        element = datatype.element
        code = (
            _FIXED_CODES.get(element.name)
            if isinstance(element, PrimitiveType)
            else None
        )
        value = self.fresh()
        if datatype.length is None and code is not None:
            itemsize = struct.calcsize("<" + code)
            count = self._emit_length()
            self.w(f"if {count}:")
            self.w(
                f"    {value} = list(_unpack_from('<%d{code}' % {count}, buf, off))"
            )
            self.w(f"    off += {count} * {itemsize}")
            self.w("else:")
            self.w(f"    {value} = []")
            return value
        count = (
            self._emit_length() if datatype.length is None else str(datatype.length)
        )
        self.w(f"{value} = []")
        self.w(f"for _ in range({count}):")
        self.indent += 1
        item = self.emit(element)
        self.w(f"{value}.append({item})")
        self.indent -= 1
        return value

    def _emit_struct(self, datatype: StructType) -> str:
        field_exprs: List[Tuple[str, str]] = []
        run: List[Tuple[str, DataType]] = []

        def flush_run():
            if not run:
                return
            codes = "".join(_flat_layout(ftype).codes for _, ftype in run)
            # The lone-bool fast path must be exactly one field: zero-length
            # fixed vectors contribute no codes, so a run like
            # (bool, bool[0]) also has codes "?" but still needs every
            # field materialized.
            if len(run) == 1 and codes == "?" and _flat_layout(run[0][1]).scalar:
                value = self.fresh()
                self.w(f"{value} = buf[off] != 0")
                self.w("off += 1")
                field_exprs.append((run[0][0], value))
                run.clear()
                return
            unpacker = struct.Struct("<" + codes)
            unpack = self.bind("u", unpacker.unpack_from)
            vals = self.fresh("vals")
            self.w(f"{vals} = {unpack}(buf, off)")
            self.w(f"off += {unpacker.size}")
            index = 0
            for fname, ftype in run:
                expr, index = _flat_value_expr(ftype, vals, index)
                field_exprs.append((fname, expr))
            run.clear()

        for fname, ftype in datatype.fields:
            if _flat_layout(ftype) is not None:
                run.append((fname, ftype))
                continue
            flush_run()
            field_exprs.append((fname, self.emit(ftype)))
        flush_run()
        value = self.fresh()
        body = ", ".join(f"{n!r}: {e}" for n, e in field_exprs)
        self.w(f"{value} = {{{body}}}")
        return value


class _EncoderGen(_SourceGen):
    """Emits ``_encode(value) -> bytes``: straight-line appends into one
    parts list, joined once."""

    def __init__(self):
        super().__init__("def _encode(value):")
        self.w("parts = []")
        self.w("ap = parts.append")

    def emit(self, datatype: DataType, src: str) -> None:
        flat = _flat_layout(datatype)
        if flat is not None:
            if flat.codes == "?" and flat.scalar:
                # A lone bool between variable fields: branch beats a
                # one-byte Struct.pack call.
                self.w(f'ap(b"\\x01" if {src} else b"\\x00")')
                return
            # Arity-check every fixed vector before packing: with no count on
            # the wire, two compensating length mistakes could otherwise pack
            # "successfully" into wrong bytes.
            for vec_src, vec_type in _flat_vector_guards(datatype, src):
                err = self.bind("verr", _fixed_length_error(vec_type))
                self.w(f"if len({vec_src}) != {vec_type.length}:")
                self.w(f"    raise {err}(len({vec_src}))")
            pack = self.bind("p", struct.Struct("<" + flat.codes).pack)
            args = ", ".join(_flat_arg_exprs(datatype, src))
            self.w(f"ap({pack}({args}))")
            return
        if isinstance(datatype, PrimitiveType):
            if datatype.name == "string":
                raw = self.fresh("raw")
                self.w(f'{raw} = {src}.encode("utf-8")')
                self.w(f"ap(_plen(len({raw})))")
                self.w(f"ap({raw})")
                return
            if datatype.name == "bytes":
                raw = self.fresh("raw")
                self.w(f"{raw} = {src}")
                self.w(f"ap(_plen(len({raw})))")
                self.w(f"ap(bytes({raw}))")
                return
            raise EncodingError(f"cannot encode type {datatype!r}")
        if isinstance(datatype, VectorType):
            self._emit_vector(datatype, src)
            return
        if isinstance(datatype, StructType):
            for fname, ftype in datatype.fields:
                self.emit(ftype, f"{src}[{fname!r}]")
            return
        if isinstance(datatype, UnionType):
            enc = self.bind("ue", _compile_encoder(datatype))
            self.w(f"{enc}({src}, ap)")
            return
        raise EncodingError(f"cannot encode type {datatype!r}")

    def _emit_vector(self, datatype: VectorType, src: str) -> None:
        element = datatype.element
        code = (
            _FIXED_CODES.get(element.name)
            if isinstance(element, PrimitiveType)
            else None
        )
        if datatype.length is None:
            seq = self.fresh("seq")
            count = self.fresh("n")
            self.w(f"{seq} = {src}")
            self.w(f"{count} = len({seq})")
            self.w(f"ap(_plen({count}))")
            if code is not None:
                self.w(f"if {count}:")
                self.w(f"    ap(_pack('<%d{code}' % {count}, *{seq}))")
                return
            item = self.fresh("item")
            self.w(f"for {item} in {seq}:")
            self.indent += 1
            self.emit(element, item)
            self.indent -= 1
            return
        # Fixed length, variable-size elements (fixed-width elements took the
        # flat path above). Guard the arity — there is no wire count to catch
        # a mismatch later.
        seq = self.fresh("seq")
        self.w(f"{seq} = {src}")
        self.w(f"if len({seq}) != {datatype.length}:")
        err = self.bind("verr", _fixed_length_error(datatype))
        self.w(f"    raise {err}(len({seq}))")
        item = self.fresh("item")
        self.w(f"for {item} in {seq}:")
        self.indent += 1
        self.emit(element, item)
        self.indent -= 1


def _flat_vector_guards(
    datatype: DataType, src: str
) -> List[Tuple[str, VectorType]]:
    """(source expression, vector type) for every fixed vector inside a
    fully fixed-width ``datatype`` rooted at ``src``."""
    if isinstance(datatype, PrimitiveType):
        return []
    if isinstance(datatype, VectorType):
        out = [(src, datatype)]
        if not isinstance(datatype.element, PrimitiveType):
            for i in range(datatype.length):
                out.extend(_flat_vector_guards(datatype.element, f"{src}[{i}]"))
        return out
    out = []
    for fname, ftype in datatype.fields:
        out.extend(_flat_vector_guards(ftype, f"{src}[{fname!r}]"))
    return out


def _fixed_length_error(datatype: VectorType):
    expected, desc = datatype.length, datatype.describe()

    def make(got):
        return EncodingError(
            f"expected vector of length {expected} for {desc}, got {got}"
        )

    return make


def _generate_decoder(datatype: DataType) -> _Decoder:
    gen = _DecoderGen()
    value = gen.emit(datatype)
    gen.w(f"return {value}, off")
    return gen.build("_decode", datatype)


def _generate_encoder(datatype: DataType) -> Callable[[Any], bytes]:
    gen = _EncoderGen()
    gen.emit(datatype, "value")
    gen.w("return _join(parts)")
    return gen.build("_encode", datatype)


# -- plan cache ------------------------------------------------------------------

def _wrap_closure_encoder(encoder: _Encoder) -> Callable[[Any], bytes]:
    def encode_value(value, _enc=encoder, _join=b"".join):
        parts: List[bytes] = []
        _enc(value, parts.append)
        return _join(parts)

    return encode_value


def _build_plan(datatype: DataType) -> Tuple[Callable[[Any], bytes], _Decoder]:
    """(value → bytes encoder, (buf, offset) → (value, offset) decoder),
    preferring generated source and falling back to the closure plans."""
    try:
        encoder = _generate_encoder(datatype)
    except SyntaxError:  # pragma: no cover — codegen bug safety net
        encoder = _wrap_closure_encoder(_compile_encoder(datatype))
    try:
        decoder = _generate_decoder(datatype)
    except SyntaxError:  # pragma: no cover — codegen bug safety net
        decoder = _compile_decoder(datatype)
    return encoder, decoder


#: Hashing a DataType re-renders describe() recursively, so the hot lookup is
#: keyed by object identity; a second describe()-keyed level shares compiled
#: plans between equal-but-distinct schema instances. Both caches keep a
#: reference to their datatype, so a live id() can never be recycled into a
#: stale entry. Bounded so adversarial schema churn cannot grow them forever.
_CACHE_LIMIT = 4096
_PlanEntry = Tuple[DataType, Callable[[Any], bytes], _Decoder]
_BY_ID: Dict[int, _PlanEntry] = {}
_BY_KEY: Dict[str, _PlanEntry] = {}


def _plan(datatype: DataType) -> _PlanEntry:
    entry = _BY_ID.get(id(datatype))
    if entry is not None and entry[0] is datatype:
        return entry
    key = datatype.describe()
    shared = _BY_KEY.get(key)
    if shared is None:
        encoder, decoder = _build_plan(datatype)
        shared = (datatype, encoder, decoder)
        if len(_BY_KEY) >= _CACHE_LIMIT:
            _BY_KEY.clear()
        _BY_KEY[key] = shared
    entry = (datatype, shared[1], shared[2])
    if len(_BY_ID) >= _CACHE_LIMIT:
        _BY_ID.clear()
    _BY_ID[id(datatype)] = entry
    return entry


def compile_plan(datatype: DataType) -> Tuple[Callable[[Any], bytes], _Decoder]:
    """Compile (or fetch the cached) plan: a ``value -> bytes`` encoder and a
    ``(buf, offset) -> (value, offset)`` decoder."""
    entry = _plan(datatype)
    return entry[1], entry[2]


# -- the codec -------------------------------------------------------------------


class CompiledCodec:
    """Drop-in :class:`Codec` producing ``BinaryCodec``-identical bytes from
    schema-compiled plans."""

    name = "compiled"

    def encode(self, datatype: DataType, value: Any) -> bytes:
        encoder = _plan(datatype)[1]
        try:
            return encoder(value)
        except EncodingError:
            raise
        except Exception:
            # Slow path: re-run the reference validator for its precise
            # EncodingError; if the value validates (float32 overflow,
            # surrogate strings, …) surface the original error, exactly as
            # BinaryCodec would.
            datatype.validate(value)
            raise

    def decode(self, datatype: DataType, data) -> Any:
        value, consumed, total = self._decode(datatype, data)
        if consumed != total:
            raise EncodingError(
                f"{total - consumed} trailing bytes after decoding "
                f"{datatype.describe()}"
            )
        return value

    def decode_prefix(self, datatype: DataType, data) -> Tuple[Any, int]:
        """Decode one value off the front of ``data``; (value, consumed)."""
        value, consumed, _ = self._decode(datatype, data)
        return value, consumed

    def _decode(self, datatype: DataType, data) -> Tuple[Any, int, int]:
        # The decoder slices whatever buffer it is given: ``bytes`` input is
        # sliced as bytes (cheapest), a ``memoryview`` of a larger buffer is
        # sliced without copying. Nothing goes through BytesIO.
        decoder = _plan(datatype)[2]
        try:
            value, consumed = decoder(data, 0)
        except EncodingError:
            raise
        except (struct.error, IndexError) as exc:
            raise EncodingError(f"truncated payload: {exc}") from exc
        return value, consumed, len(data)


register_codec(CompiledCodec())

__all__ = ["CompiledCodec", "compile_plan"]
