"""Schema registry and a C-like type declaration parser.

The paper states the presentation layer datatypes are "similar to a C-like
language" (§4.1). :func:`parse_type` accepts exactly the notation that
:meth:`DataType.describe` produces, plus field-suffix array syntax, so
schemas round-trip through their textual form:

    struct Position { float64 lat; float64 lon; float32 alt; }
    union Reading { float64 scalar; float64 samples[4]; }
    int32[]

The :class:`SchemaRegistry` maps names to types; containers exchange schema
*names* on the wire and resolve them locally, keeping announce packets small.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.encoding.types import (
    PRIMITIVES,
    DataType,
    StructType,
    UnionType,
    VectorType,
)
from repro.util.errors import ConfigurationError, EncodingError

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+|[{}\[\];]|\S")


class _Tokens:
    """A trivial cursor over the token stream."""

    def __init__(self, text: str):
        self.tokens: List[str] = _TOKEN_RE.findall(text)
        self.pos = 0
        self.text = text

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise EncodingError(f"unexpected end of type declaration: {self.text!r}")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise EncodingError(
                f"expected {token!r} but found {got!r} in {self.text!r}"
            )

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


#: Memo for registry-free parses. Data-plane receive paths re-parse the
#: same handful of offered type strings on every sample; DataType objects
#: are immutable after construction, so sharing one instance per text is
#: safe. Registry-backed parses are never cached (typedefs can change).
_PARSE_MEMO: dict = {}
_PARSE_MEMO_MAX = 1024


def parse_type(text: str, registry: Optional["SchemaRegistry"] = None) -> DataType:
    """Parse a C-like type declaration into a :class:`DataType`.

    ``registry`` resolves bare names that are not primitives (typedefs).
    """
    if registry is None:
        cached = _PARSE_MEMO.get(text)
        if cached is not None:
            return cached
    tokens = _Tokens(text)
    datatype = _parse(tokens, registry)
    if not tokens.exhausted:
        raise EncodingError(f"trailing tokens after type in {text!r}")
    if registry is None:
        if len(_PARSE_MEMO) >= _PARSE_MEMO_MAX:
            _PARSE_MEMO.clear()
        _PARSE_MEMO[text] = datatype
    return datatype


def _parse(tokens: _Tokens, registry: Optional["SchemaRegistry"]) -> DataType:
    tok = tokens.next()
    if tok == "struct":
        datatype: DataType = _parse_composite(tokens, registry, is_union=False)
    elif tok == "union":
        datatype = _parse_composite(tokens, registry, is_union=True)
    elif tok in PRIMITIVES:
        datatype = PRIMITIVES[tok]
    elif registry is not None and registry.contains(tok):
        datatype = registry.get(tok)
    else:
        raise EncodingError(f"unknown type name {tok!r}")
    return _parse_array_suffix(tokens, datatype)


def _parse_array_suffix(tokens: _Tokens, datatype: DataType) -> DataType:
    while tokens.peek() == "[":
        tokens.next()
        tok = tokens.next()
        if tok == "]":
            datatype = VectorType(datatype)
        else:
            if not tok.isdigit():
                raise EncodingError(f"bad vector length {tok!r}")
            datatype = VectorType(datatype, length=int(tok))
            tokens.expect("]")
    return datatype


def _parse_composite(
    tokens: _Tokens, registry: Optional["SchemaRegistry"], is_union: bool
) -> DataType:
    name = tokens.next()
    tokens.expect("{")
    fields: List[Tuple[str, DataType]] = []
    while tokens.peek() != "}":
        ftype = _parse(tokens, registry)
        fname = tokens.next()
        # C-style suffix arrays: float64 samples[4];
        ftype = _parse_array_suffix(tokens, ftype)
        tokens.expect(";")
        fields.append((fname, ftype))
    tokens.expect("}")
    if is_union:
        return UnionType(name, fields)
    return StructType(name, fields)


class SchemaRegistry:
    """Name → :class:`DataType` mapping with parse support.

    Each container holds one registry; services register the schemas of
    their variables, events and function signatures at install time.
    """

    def __init__(self):
        self._types: Dict[str, DataType] = {}

    def register(self, name: str, datatype: DataType) -> None:
        existing = self._types.get(name)
        if existing is not None and existing != datatype:
            raise ConfigurationError(
                f"schema {name!r} already registered with a different type"
            )
        self._types[name] = datatype

    def register_text(self, name: str, declaration: str) -> DataType:
        """Parse ``declaration`` (resolving typedefs) and register it."""
        datatype = parse_type(declaration, registry=self)
        self.register(name, datatype)
        return datatype

    def contains(self, name: str) -> bool:
        return name in self._types

    def get(self, name: str) -> DataType:
        try:
            return self._types[name]
        except KeyError:
            raise ConfigurationError(f"unknown schema {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._types)


# -- well-known avionics schemas used across examples and benchmarks --------

#: GPS fix published by the GPS service (§5's ``position`` variable).
POSITION_SCHEMA = parse_type(
    "struct Position { float64 lat; float64 lon; float64 alt; "
    "float64 ground_speed; float64 heading; float64 timestamp; }"
)

#: Attitude sample from the flight computer.
ATTITUDE_SCHEMA = parse_type(
    "struct Attitude { float64 roll; float64 pitch; float64 yaw; float64 timestamp; }"
)

#: Event payload raised when a photo is commanded or completed.
PHOTO_EVENT_SCHEMA = parse_type(
    "struct PhotoEvent { uint32 waypoint; float64 lat; float64 lon; string resource; }"
)

#: Detection report from the video-processing service.
DETECTION_SCHEMA = parse_type(
    "struct Detection { string resource; uint32 feature_count; float64 score; "
    "float64 lat; float64 lon; }"
)

#: Generic status/alarm event (§4.2's "error alarms or warnings").
ALARM_SCHEMA = parse_type(
    "union Alarm { string warning; string error; uint32 code; }"
)


def default_registry() -> SchemaRegistry:
    """A registry pre-loaded with the well-known avionics schemas."""
    registry = SchemaRegistry()
    registry.register("Position", POSITION_SCHEMA)
    registry.register("Attitude", ATTITUDE_SCHEMA)
    registry.register("PhotoEvent", PHOTO_EVENT_SCHEMA)
    registry.register("Detection", DETECTION_SCHEMA)
    registry.register("Alarm", ALARM_SCHEMA)
    return registry


__all__ = [
    "SchemaRegistry",
    "parse_type",
    "default_registry",
    "POSITION_SCHEMA",
    "ATTITUDE_SCHEMA",
    "PHOTO_EVENT_SCHEMA",
    "DETECTION_SCHEMA",
    "ALARM_SCHEMA",
]
