"""The middleware type system (PEPt Presentation subsystem).

Values are plain Python objects — ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list`` for vectors, ``dict`` for structs and ``(tag, value)``
tuples for unions — so services never import wire-format machinery.
:meth:`DataType.validate` rejects a value *before* it reaches a codec, which
keeps encoding errors out of the fast path and gives services actionable
messages.
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional, Sequence, Tuple

from repro.util.errors import EncodingError


class DataType:
    """Base class of all type descriptors."""

    #: short tag used by codecs and ``repr``; set by subclasses.
    kind: str = "abstract"

    def validate(self, value: Any) -> None:
        """Raise :class:`EncodingError` unless ``value`` conforms."""
        raise NotImplementedError

    def describe(self) -> str:
        """A C-like rendering of the type, parseable by ``parse_type``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.describe())

    def fingerprint(self) -> str:
        """A stable wire-compatibility fingerprint of this type.

        Two types with the same fingerprint encode and decode identically:
        the digest is taken over :meth:`describe`, which captures field
        order, field types, and vector shapes — exactly the properties a
        peer depends on. Renaming a *field* changes the fingerprint (field
        names ride in the describe text and matter to document shape);
        so does any reorder, type change, insertion, or removal. The
        schema lockfile (``schemas.lock.json``, rule REP008) pins these
        per message kind.
        """
        return hashlib.sha256(self.describe().encode("utf-8")).hexdigest()[:16]


class PrimitiveType(DataType):
    """A fixed basic type: bool, sized ints, floats, string, bytes."""

    _INT_RANGES = {
        "int8": (-(1 << 7), (1 << 7) - 1),
        "int16": (-(1 << 15), (1 << 15) - 1),
        "int32": (-(1 << 31), (1 << 31) - 1),
        "int64": (-(1 << 63), (1 << 63) - 1),
        "uint8": (0, (1 << 8) - 1),
        "uint16": (0, (1 << 16) - 1),
        "uint32": (0, (1 << 32) - 1),
        "uint64": (0, (1 << 64) - 1),
    }

    def __init__(self, name: str):
        if name not in self._INT_RANGES and name not in (
            "bool",
            "float32",
            "float64",
            "string",
            "bytes",
        ):
            raise ValueError(f"unknown primitive type: {name}")
        self.name = name
        self.kind = name

    def validate(self, value: Any) -> None:
        name = self.name
        if name == "bool":
            if not isinstance(value, bool):
                raise EncodingError(f"expected bool, got {type(value).__name__}")
        elif name in self._INT_RANGES:
            if isinstance(value, bool) or not isinstance(value, int):
                raise EncodingError(f"expected {name}, got {type(value).__name__}")
            lo, hi = self._INT_RANGES[name]
            if not (lo <= value <= hi):
                raise EncodingError(f"{value} out of range for {name} [{lo}, {hi}]")
        elif name in ("float32", "float64"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EncodingError(f"expected {name}, got {type(value).__name__}")
        elif name == "string":
            if not isinstance(value, str):
                raise EncodingError(f"expected string, got {type(value).__name__}")
        elif name == "bytes":
            if not isinstance(value, (bytes, bytearray)):
                raise EncodingError(f"expected bytes, got {type(value).__name__}")

    def describe(self) -> str:
        return self.name


BOOL = PrimitiveType("bool")
INT8 = PrimitiveType("int8")
INT16 = PrimitiveType("int16")
INT32 = PrimitiveType("int32")
INT64 = PrimitiveType("int64")
UINT8 = PrimitiveType("uint8")
UINT16 = PrimitiveType("uint16")
UINT32 = PrimitiveType("uint32")
UINT64 = PrimitiveType("uint64")
FLOAT32 = PrimitiveType("float32")
FLOAT64 = PrimitiveType("float64")
STRING = PrimitiveType("string")
BYTES = PrimitiveType("bytes")

PRIMITIVES = {
    t.name: t
    for t in (
        BOOL,
        INT8,
        INT16,
        INT32,
        INT64,
        UINT8,
        UINT16,
        UINT32,
        UINT64,
        FLOAT32,
        FLOAT64,
        STRING,
        BYTES,
    )
}


class VectorType(DataType):
    """Homogeneous sequence; ``length`` fixes the arity when given."""

    kind = "vector"

    def __init__(self, element: DataType, length: Optional[int] = None):
        if length is not None and length < 0:
            raise ValueError("vector length must be non-negative")
        self.element = element
        self.length = length

    def validate(self, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise EncodingError(f"expected vector, got {type(value).__name__}")
        if self.length is not None and len(value) != self.length:
            raise EncodingError(
                f"expected vector of length {self.length}, got {len(value)}"
            )
        for i, item in enumerate(value):
            try:
                self.element.validate(item)
            except EncodingError as exc:
                raise EncodingError(f"vector element {i}: {exc}") from exc

    def describe(self) -> str:
        if self.length is None:
            return f"{self.element.describe()}[]"
        return f"{self.element.describe()}[{self.length}]"


class StructType(DataType):
    """Named, ordered fields; values are ``dict`` with exactly those keys."""

    kind = "struct"

    def __init__(self, name: str, fields: Sequence[Tuple[str, DataType]]):
        if not fields:
            raise ValueError(f"struct {name!r} must have at least one field")
        names = [f[0] for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"struct {name!r} has duplicate field names")
        self.name = name
        self.fields: List[Tuple[str, DataType]] = list(fields)

    def validate(self, value: Any) -> None:
        if not isinstance(value, dict):
            raise EncodingError(f"expected struct dict, got {type(value).__name__}")
        expected = {f[0] for f in self.fields}
        got = set(value)
        if expected != got:
            missing = expected - got
            extra = got - expected
            raise EncodingError(
                f"struct {self.name}: missing fields {sorted(missing)}, "
                f"unexpected fields {sorted(extra)}"
            )
        for fname, ftype in self.fields:
            try:
                ftype.validate(value[fname])
            except EncodingError as exc:
                raise EncodingError(f"struct {self.name}.{fname}: {exc}") from exc

    def describe(self) -> str:
        body = " ".join(f"{t.describe()} {n};" for n, t in self.fields)
        return f"struct {self.name} {{ {body} }}"


class UnionType(DataType):
    """Tagged union; values are ``(tag_name, value)`` pairs."""

    kind = "union"

    def __init__(self, name: str, alternatives: Sequence[Tuple[str, DataType]]):
        if not alternatives:
            raise ValueError(f"union {name!r} must have at least one alternative")
        tags = [a[0] for a in alternatives]
        if len(set(tags)) != len(tags):
            raise ValueError(f"union {name!r} has duplicate tags")
        self.name = name
        self.alternatives: List[Tuple[str, DataType]] = list(alternatives)
        self._by_tag = dict(self.alternatives)

    def tag_index(self, tag: str) -> int:
        for i, (t, _) in enumerate(self.alternatives):
            if t == tag:
                return i
        raise EncodingError(f"union {self.name}: unknown tag {tag!r}")

    def alternative(self, tag: str) -> DataType:
        try:
            return self._by_tag[tag]
        except KeyError:
            raise EncodingError(f"union {self.name}: unknown tag {tag!r}") from None

    def validate(self, value: Any) -> None:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise EncodingError(
                f"expected union (tag, value) pair, got {type(value).__name__}"
            )
        tag, inner = value
        alt = self.alternative(tag)
        try:
            alt.validate(inner)
        except EncodingError as exc:
            raise EncodingError(f"union {self.name}.{tag}: {exc}") from exc

    def describe(self) -> str:
        body = " ".join(f"{t.describe()} {n};" for n, t in self.alternatives)
        return f"union {self.name} {{ {body} }}"


__all__ = [
    "DataType",
    "PrimitiveType",
    "VectorType",
    "StructType",
    "UnionType",
    "PRIMITIVES",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FLOAT32",
    "FLOAT64",
    "STRING",
    "BYTES",
]
