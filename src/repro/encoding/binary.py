"""Compact binary wire codec.

Format (little-endian throughout):

- ``bool`` → 1 byte (0/1)
- sized ints/floats → fixed width via :mod:`struct`
- ``string`` → uint32 byte length + UTF-8 bytes
- ``bytes`` → uint32 length + raw bytes
- vector → (uint32 count unless fixed-length) + elements back to back
- struct → fields in declaration order, no padding
- union → uint8 alternative index + encoded alternative

This mirrors what the paper's C# prototype would do with manual marshalling
and is the codec all benchmarks use unless stated otherwise.
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import Any, BinaryIO

from repro.encoding.codec import register_codec
from repro.encoding.types import (
    DataType,
    PrimitiveType,
    StructType,
    UnionType,
    VectorType,
)
from repro.util.errors import EncodingError

_PRIM_FORMATS = {
    "int8": "<b",
    "int16": "<h",
    "int32": "<i",
    "int64": "<q",
    "uint8": "<B",
    "uint16": "<H",
    "uint32": "<I",
    "uint64": "<Q",
    "float32": "<f",
    "float64": "<d",
}

#: Precompiled Struct per fixed-width primitive — ``struct.calcsize`` /
#: ``struct.pack`` on a format string re-parse it on every call.
_PRIM_STRUCTS = {name: struct.Struct(fmt) for name, fmt in _PRIM_FORMATS.items()}

_LEN = struct.Struct("<I")
_TAG = struct.Struct("<B")

#: Refuse to decode strings/vectors longer than this; guards against a
#: corrupted length prefix allocating gigabytes.
MAX_SEQUENCE_LENGTH = 1 << 24


class BinaryCodec:
    """The default, compact, schema-driven binary codec."""

    name = "binary"

    # -- public API ---------------------------------------------------------
    def encode(self, datatype: DataType, value: Any) -> bytes:
        datatype.validate(value)
        out = BytesIO()
        self._write(datatype, value, out)
        return out.getvalue()

    def decode(self, datatype: DataType, data: bytes) -> Any:
        stream = BytesIO(data)
        value = self._read(datatype, stream)
        trailing = stream.read(1)
        if trailing:
            raise EncodingError(
                f"{len(trailing) + len(stream.read())} trailing bytes after "
                f"decoding {datatype.describe()}"
            )
        return value

    def decode_prefix(self, datatype: DataType, data: bytes) -> "tuple[Any, int]":
        """Decode one value from the front of ``data``.

        Returns ``(value, consumed)`` where ``consumed`` is the number of
        bytes the value occupied — trailing bytes are the caller's problem.
        Used by the wire layer to peel a struct payload off a frame that may
        carry an optional trace-context tail."""
        stream = BytesIO(data)
        value = self._read(datatype, stream)
        return value, stream.tell()

    # -- encode -------------------------------------------------------------
    def _write(self, datatype: DataType, value: Any, out: BinaryIO) -> None:
        if isinstance(datatype, PrimitiveType):
            self._write_primitive(datatype, value, out)
        elif isinstance(datatype, VectorType):
            if datatype.length is None:
                out.write(_LEN.pack(len(value)))
            for item in value:
                self._write(datatype.element, item, out)
        elif isinstance(datatype, StructType):
            for fname, ftype in datatype.fields:
                self._write(ftype, value[fname], out)
        elif isinstance(datatype, UnionType):
            tag, inner = value
            index = datatype.tag_index(tag)
            out.write(_TAG.pack(index))
            self._write(datatype.alternatives[index][1], inner, out)
        else:
            raise EncodingError(f"cannot encode type {datatype!r}")

    def _write_primitive(self, datatype: PrimitiveType, value: Any, out: BinaryIO) -> None:
        name = datatype.name
        if name == "bool":
            out.write(b"\x01" if value else b"\x00")
        elif name == "string":
            raw = value.encode("utf-8")
            out.write(_LEN.pack(len(raw)))
            out.write(raw)
        elif name == "bytes":
            out.write(_LEN.pack(len(value)))
            out.write(bytes(value))
        else:
            try:
                out.write(_PRIM_STRUCTS[name].pack(value))
            except struct.error as exc:
                raise EncodingError(f"cannot pack {value!r} as {name}: {exc}") from exc

    # -- decode -------------------------------------------------------------
    def _read(self, datatype: DataType, stream: BinaryIO) -> Any:
        if isinstance(datatype, PrimitiveType):
            return self._read_primitive(datatype, stream)
        if isinstance(datatype, VectorType):
            if datatype.length is None:
                count = self._read_length(stream)
            else:
                count = datatype.length
            return [self._read(datatype.element, stream) for _ in range(count)]
        if isinstance(datatype, StructType):
            return {
                fname: self._read(ftype, stream) for fname, ftype in datatype.fields
            }
        if isinstance(datatype, UnionType):
            raw = self._take(stream, _TAG.size)
            (index,) = _TAG.unpack(raw)
            if index >= len(datatype.alternatives):
                raise EncodingError(
                    f"union {datatype.name}: tag index {index} out of range"
                )
            tag, alt = datatype.alternatives[index]
            return (tag, self._read(alt, stream))
        raise EncodingError(f"cannot decode type {datatype!r}")

    def _read_primitive(self, datatype: PrimitiveType, stream: BinaryIO) -> Any:
        name = datatype.name
        if name == "bool":
            return self._take(stream, 1) != b"\x00"
        if name == "string":
            return self._take(stream, self._read_length(stream)).decode("utf-8")
        if name == "bytes":
            return self._take(stream, self._read_length(stream))
        prim = _PRIM_STRUCTS[name]
        (value,) = prim.unpack(self._take(stream, prim.size))
        return value

    def _read_length(self, stream: BinaryIO) -> int:
        (length,) = _LEN.unpack(self._take(stream, _LEN.size))
        if length > MAX_SEQUENCE_LENGTH:
            raise EncodingError(f"sequence length {length} exceeds sanity limit")
        return length

    @staticmethod
    def _take(stream: BinaryIO, n: int) -> bytes:
        data = stream.read(n)
        if len(data) != n:
            raise EncodingError(f"truncated payload: wanted {n} bytes, got {len(data)}")
        return data


register_codec(BinaryCodec())

__all__ = ["BinaryCodec", "MAX_SEQUENCE_LENGTH"]
