"""The pluggable Codec interface (PEPt Encoding subsystem).

Fig. 4 of the paper shows Encoding as a pluggable subsystem so "different
algorithms and implementations for the same layer" can be evaluated. Codecs
register by name; containers pick one per deployment (experiment E10 sweeps
them).
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, runtime_checkable

from repro.encoding.types import DataType
from repro.util.errors import ConfigurationError


@runtime_checkable
class Codec(Protocol):
    """Marshals typed values to/from wire bytes."""

    #: registry key, e.g. ``"binary"``
    name: str

    def encode(self, datatype: DataType, value: Any) -> bytes:
        """Validate and marshal ``value`` according to ``datatype``."""
        ...

    def decode(self, datatype: DataType, data: bytes) -> Any:
        """Unmarshal bytes produced by :meth:`encode` with the same type."""
        ...


_REGISTRY: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> None:
    """Register a codec instance under ``codec.name``."""
    _REGISTRY[codec.name] = codec


def get_codec(name: str) -> Codec:
    """Look up a registered codec.

    The built-in ``"binary"`` and ``"json"`` codecs self-register on import
    of :mod:`repro.encoding`.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_codecs() -> list:
    return sorted(_REGISTRY)


__all__ = ["Codec", "register_codec", "get_codec", "available_codecs"]
