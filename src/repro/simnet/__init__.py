"""Simulated network substrate.

Replaces the paper's testbed LAN (embedded boards on Ethernet) with a
deterministic model: per-link latency/jitter/loss/bandwidth, true multicast
semantics (one emission reaches every group member), node up/down state for
fault injection, and wire-level statistics used by the bandwidth experiments
(E3, E4 in DESIGN.md).
"""

from repro.simnet.addressing import Address, GroupName
from repro.simnet.models import LinkModel
from repro.simnet.network import SimNetwork, SimNic
from repro.simnet.packet import Packet
from repro.simnet.stats import NetworkStats

__all__ = [
    "Address",
    "GroupName",
    "LinkModel",
    "SimNetwork",
    "SimNic",
    "Packet",
    "NetworkStats",
]
