"""The simulated network itself.

A :class:`SimNetwork` connects :class:`SimNic` objects (one per node) through
configurable :class:`LinkModel` behaviour. Multicast follows a broadcast-
medium model: the sender pays serialization once per emission, and every
group member receives a copy subject to its own propagation delay and loss
draw — exactly the property the paper's variable and file primitives exploit.

Fleet-scale missions (1,000+ nodes) hammer the emission path, so the
network keeps two per-emission caches — the resolved ``(LinkModel,
SeededRng)`` pair per directed node pair, and the sorted receiver list per
``(sender, group)`` — and groups same-arrival multicast deliveries into one
kernel event. Both paths produce identical packet traces; constructing the
network with ``optimized=False`` selects the original per-send resolution
(the baseline `bench_fleet.py` measures against).

Zones model radio reach for hierarchical fleets: when zone isolation is
enabled, a multicast emission only walks receivers that share a zone with
the sender (unzoned nodes hear everything), so a 1,000-container broadcast
costs one zone's membership, not the fleet's. Unicast is never filtered.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.kernel import Simulator
from repro.simnet.addressing import Address, GroupName
from repro.simnet.models import LinkModel
from repro.simnet.packet import Packet
from repro.simnet.stats import NetworkStats
from repro.util.errors import TransportError
from repro.util.rng import SeededRng

Receiver = Callable[[Packet], None]


class SimNic:
    """A node's network interface.

    The PEPt Transport layer binds to one of these; services never touch it.
    """

    def __init__(self, network: "SimNetwork", node: str):
        self._network = network
        self.node = node
        self._receiver: Optional[Receiver] = None
        self.up = True

    def set_receiver(self, receiver: Receiver) -> None:
        """Install the callback invoked for every delivered packet."""
        self._receiver = receiver

    def send(self, packet: Packet) -> None:
        """Emit a packet onto the medium."""
        self._network._emit(self, packet)

    def join(self, group: GroupName) -> None:
        self._network._join(self.node, group)

    def leave(self, group: GroupName) -> None:
        self._network._leave(self.node, group)

    def _deliver(self, packet: Packet) -> None:
        if self._receiver is not None:
            self._receiver(packet)


class SimNetwork:
    """A LAN segment of simulated nodes.

    Parameters
    ----------
    sim:
        The discrete-event kernel that provides time and scheduling.
    rng:
        Experiment-level random stream; the network forks per-link streams
        from it so adding nodes does not perturb existing links' draws.
    default_link:
        Behaviour of any node pair without an explicit override.
    optimized:
        Select the cached emission path (default). ``False`` keeps the
        original per-send dict-chain resolution — packet-trace-identical,
        only slower; the fleet benchmark uses it as its baseline.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: SeededRng,
        default_link: Optional[LinkModel] = None,
        supports_multicast: bool = True,
        optimized: bool = True,
    ):
        self._sim = sim
        self._rng = rng
        self._default_link = default_link or LinkModel()
        #: §3: multicast is exploited "when the underlying network allows
        #: it". False models a network without it: every group send is
        #: charged one emission (and serialization) per member — the
        #: baseline of experiment E3.
        self.supports_multicast = supports_multicast
        self._optimized = optimized
        self._nics: Dict[str, SimNic] = {}
        self._links: Dict[Tuple[str, str], LinkModel] = {}
        self._link_rngs: Dict[Tuple[str, str], SeededRng] = {}
        self._groups: Dict[GroupName, Set[str]] = {}
        # Per-sender "uplink busy until" time implementing serialization delay.
        self._uplink_free_at: Dict[str, float] = {}
        #: Resolved (LinkModel, SeededRng) per directed pair. The RNG
        #: objects are owned by ``_link_rngs`` — invalidating this cache
        #: must never re-fork a stream or draw order would reset.
        self._pair_cache: Dict[Tuple[str, str], Tuple[LinkModel, SeededRng]] = {}
        #: (sender, group) -> (sorted receivers excluding sender, sender in
        #: group). Cleared wholesale on any membership or zone change.
        self._reach_cache: Dict[Tuple[str, GroupName], Tuple[List[str], bool]] = {}
        #: Zone membership per node (a node may sit in several zones — a
        #: relay bridges its zone and the backbone). Empty = unzoned.
        self._node_zones: Dict[str, Set[str]] = {}
        self._zone_isolation = False
        self.stats = NetworkStats()
        self._trace: Optional[List[Packet]] = None

    # -- topology ----------------------------------------------------------
    def attach(self, node: str) -> SimNic:
        """Create (or return) the NIC for ``node``."""
        if node not in self._nics:
            self._nics[node] = SimNic(self, node)
        return self._nics[node]

    def nodes(self) -> List[str]:
        return sorted(self._nics)

    def set_link(self, src: str, dst: str, model: LinkModel, symmetric: bool = True) -> None:
        """Override the link model between two nodes."""
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model
        self._pair_cache.clear()

    def set_default_link(self, model: LinkModel) -> None:
        self._default_link = model
        self._pair_cache.clear()

    def link_for(self, src: str, dst: str) -> LinkModel:
        return self._links.get((src, dst), self._default_link)

    def set_node_up(self, node: str, up: bool) -> None:
        """Fault injection: a down node neither sends nor receives."""
        self.attach(node).up = up

    # -- zones -------------------------------------------------------------
    def add_node_to_zone(self, node: str, zone: str) -> None:
        """Place ``node`` in ``zone`` (additive — a relay sits in two)."""
        self._node_zones.setdefault(node, set()).add(zone)
        self._reach_cache.clear()

    def node_zones(self, node: str) -> Set[str]:
        return set(self._node_zones.get(node, set()))

    def set_zone_isolation(self, enabled: bool) -> None:
        """When enabled, multicast only reaches group members sharing a
        zone with the sender (unzoned nodes are reachable by everyone).
        Unicast traffic is never filtered."""
        self._zone_isolation = enabled
        self._reach_cache.clear()

    def _can_reach(self, src: str, dst: str) -> bool:
        src_zones = self._node_zones.get(src)
        if not src_zones:
            return True
        dst_zones = self._node_zones.get(dst)
        if not dst_zones:
            return True
        return not src_zones.isdisjoint(dst_zones)

    # -- tracing -----------------------------------------------------------
    def enable_trace(self) -> List[Packet]:
        """Start recording every delivered packet; returns the live list."""
        self._trace = []
        return self._trace

    # -- group membership ---------------------------------------------------
    def _join(self, node: str, group: GroupName) -> None:
        self._groups.setdefault(group, set()).add(node)
        self._reach_cache.clear()

    def _leave(self, node: str, group: GroupName) -> None:
        members = self._groups.get(group)
        if members is not None:
            members.discard(node)
            self._reach_cache.clear()

    def group_members(self, group: GroupName) -> Set[str]:
        """A *copy* of the group's membership — mutating the returned set
        must never touch live membership (or the reach cache would lie)."""
        return set(self._groups.get(group, ()))

    # -- transmission core ---------------------------------------------------
    def _link_rng(self, src: str, dst: str) -> SeededRng:
        key = (src, dst)
        if key not in self._link_rngs:
            self._link_rngs[key] = self._rng.fork(f"link:{src}->{dst}")
        return self._link_rngs[key]

    def _pair(self, src: str, dst: str) -> Tuple[LinkModel, SeededRng]:
        key = (src, dst)
        pair = self._pair_cache.get(key)
        if pair is None:
            pair = (self.link_for(src, dst), self._link_rng(src, dst))
            self._pair_cache[key] = pair
        return pair

    def _receivers_for(self, src: str, group: GroupName) -> Tuple[List[str], bool]:
        key = (src, group)
        cached = self._reach_cache.get(key)
        if cached is None:
            members = self._groups.get(group, ())
            receivers = sorted(m for m in members if m != src)
            if self._zone_isolation:
                receivers = [m for m in receivers if self._can_reach(src, m)]
            cached = (receivers, src in members)
            self._reach_cache[key] = cached
        return cached

    def _emit(self, nic: SimNic, packet: Packet) -> None:
        if not nic.up:
            self.stats.drops_down.add(packet.size)
            return
        src = nic.node
        if packet.source.node != src:
            raise TransportError(
                f"packet source {packet.source} does not match NIC node {src}"
            )
        # MTU is enforced against the *source's* default view of the medium;
        # the Protocol layer fragments before this point.
        mtu = self._default_link.mtu
        if len(packet.payload) > mtu:
            raise TransportError(
                f"payload of {len(packet.payload)} bytes exceeds MTU {mtu}; "
                "fragment at the protocol layer"
            )
        packet.sent_at = self._sim.now()

        # Multicast shares the default medium; unicast serializes at the
        # specific link's rate (a radio hop to the ground is slower than
        # the on-board Ethernet).
        model = self._default_link
        destination = packet.destination
        if isinstance(destination, Address):
            if self._optimized:
                model, _ = self._pair(src, destination.node)
            else:
                model = self.link_for(src, destination.node)
        if isinstance(destination, GroupName):
            if self._optimized:
                receivers, src_member = self._receivers_for(src, destination)
                if src_member:
                    # Loopback: multicast senders that joined their own
                    # group hear their packets too (IP_MULTICAST_LOOP).
                    receivers = receivers + [src]
            else:
                members = self._groups.get(destination, set())
                receivers = sorted(m for m in members if m != src)
                if self._zone_isolation:
                    receivers = [m for m in receivers if self._can_reach(src, m)]
                if src in members:
                    receivers.append(src)
            if not receivers:
                self.stats.record_emission(src, packet.size)
                self.stats.drops_nomember.add(packet.size)
                return
            if self.supports_multicast:
                # Serialization charged once per emission — the bandwidth
                # win measured by experiment E3.
                self.stats.record_emission(src, packet.size)
                tx_done = self._occupy_uplink(src, model, packet.size)
                if self._optimized:
                    self._schedule_deliveries(src, receivers, packet, tx_done)
                else:
                    for dst in receivers:
                        self._schedule_delivery(src, dst, packet, tx_done)
            else:
                # No multicast in the underlying network: one emission (and
                # one serialization slot) per receiver.
                for dst in receivers:
                    self.stats.record_emission(src, packet.size)
                    tx_done = self._occupy_uplink(src, model, packet.size)
                    self._schedule_delivery(src, dst, packet, tx_done)
        else:
            self.stats.record_emission(src, packet.size)
            tx_done = self._occupy_uplink(src, model, packet.size)
            if self._optimized:
                self._schedule_deliveries(
                    src, (destination.node,), packet, tx_done
                )
            else:
                self._schedule_delivery(src, destination.node, packet, tx_done)

    def _occupy_uplink(self, src: str, model: LinkModel, size: int) -> float:
        """Reserve the sender's FIFO uplink; returns serialization-done time."""
        free_at = max(self._uplink_free_at.get(src, 0.0), self._sim.now())
        tx_done = free_at + model.serialization_delay(size)
        self._uplink_free_at[src] = tx_done
        return tx_done

    # -- delivery, optimized path --------------------------------------------
    def _schedule_deliveries(
        self, src: str, receivers, packet: Packet, tx_done: float
    ) -> None:
        """Draw per-receiver loss/latency (in receiver order, exactly like
        the per-receiver path) and schedule ONE kernel event per distinct
        arrival instant, delivering to that instant's receivers in order.
        Relative delivery order is unchanged: same-arrival deliveries kept
        their receiver order before (heap ties break by insertion seq)."""
        nics = self._nics
        by_arrival: Dict[float, List[str]] = {}
        for dst in receivers:
            if dst not in nics:
                # Unknown destination: silently dropped, like a LAN.
                self.stats.drops_down.add(packet.size)
                continue
            if src == dst:
                # Local loopback: no propagation delay or loss.
                arrival = tx_done
            else:
                model, rng = self._pair(src, dst)
                if model.drops(rng):
                    self.stats.drops_loss.add(packet.size)
                    continue
                arrival = tx_done + model.propagation_delay(rng)
            group = by_arrival.get(arrival)
            if group is None:
                by_arrival[arrival] = [dst]
            else:
                group.append(dst)
        for arrival, group in by_arrival.items():
            self._sim.schedule_fire(
                arrival, self._make_delivery(group, packet)
            )

    def _make_delivery(self, group: List[str], packet: Packet):
        def deliver() -> None:
            delivered: Optional[Packet] = None
            nics = self._nics
            stats = self.stats
            for dst in group:
                nic = nics.get(dst)
                if nic is None or not nic.up:
                    stats.drops_down.add(packet.size)
                    continue
                if delivered is None:
                    # One Packet object serves the whole same-instant group:
                    # every field is identical and payload bytes are
                    # immutable, so receivers cannot tell copies apart.
                    delivered = Packet(
                        source=packet.source,
                        destination=packet.destination,
                        payload=packet.payload,
                        sent_at=packet.sent_at,
                        delivered_at=self._sim.now(),
                    )
                stats.record_delivery(dst, delivered.size)
                if self._trace is not None:
                    self._trace.append(delivered)
                nic._deliver(delivered)

        return deliver

    # -- delivery, reference path ---------------------------------------------
    def _schedule_delivery(self, src: str, dst: str, packet: Packet, tx_done: float) -> None:
        if dst not in self._nics:
            # Unknown destination: silently dropped, like a LAN.
            self.stats.drops_down.add(packet.size)
            return
        if src == dst:
            # Local loopback: no propagation delay or loss.
            arrival = tx_done
        else:
            model = self.link_for(src, dst)
            rng = self._link_rng(src, dst)
            if model.drops(rng):
                self.stats.drops_loss.add(packet.size)
                return
            arrival = tx_done + model.propagation_delay(rng)

        def deliver() -> None:
            nic = self._nics.get(dst)
            if nic is None or not nic.up:
                self.stats.drops_down.add(packet.size)
                return
            delivered = Packet(
                source=packet.source,
                destination=packet.destination,
                payload=packet.payload,
                sent_at=packet.sent_at,
                delivered_at=self._sim.now(),
            )
            self.stats.record_delivery(dst, delivered.size)
            if self._trace is not None:
                self._trace.append(delivered)
            nic._deliver(delivered)

        self._sim.schedule_at(arrival, deliver)


__all__ = ["SimNetwork", "SimNic", "Receiver"]
