"""The simulated network itself.

A :class:`SimNetwork` connects :class:`SimNic` objects (one per node) through
configurable :class:`LinkModel` behaviour. Multicast follows a broadcast-
medium model: the sender pays serialization once per emission, and every
group member receives a copy subject to its own propagation delay and loss
draw — exactly the property the paper's variable and file primitives exploit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.kernel import Simulator
from repro.simnet.addressing import Address, GroupName
from repro.simnet.models import LinkModel
from repro.simnet.packet import Packet
from repro.simnet.stats import NetworkStats
from repro.util.errors import TransportError
from repro.util.rng import SeededRng

Receiver = Callable[[Packet], None]


class SimNic:
    """A node's network interface.

    The PEPt Transport layer binds to one of these; services never touch it.
    """

    def __init__(self, network: "SimNetwork", node: str):
        self._network = network
        self.node = node
        self._receiver: Optional[Receiver] = None
        self.up = True

    def set_receiver(self, receiver: Receiver) -> None:
        """Install the callback invoked for every delivered packet."""
        self._receiver = receiver

    def send(self, packet: Packet) -> None:
        """Emit a packet onto the medium."""
        self._network._emit(self, packet)

    def join(self, group: GroupName) -> None:
        self._network._join(self.node, group)

    def leave(self, group: GroupName) -> None:
        self._network._leave(self.node, group)

    def _deliver(self, packet: Packet) -> None:
        if self._receiver is not None:
            self._receiver(packet)


class SimNetwork:
    """A LAN segment of simulated nodes.

    Parameters
    ----------
    sim:
        The discrete-event kernel that provides time and scheduling.
    rng:
        Experiment-level random stream; the network forks per-link streams
        from it so adding nodes does not perturb existing links' draws.
    default_link:
        Behaviour of any node pair without an explicit override.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: SeededRng,
        default_link: Optional[LinkModel] = None,
        supports_multicast: bool = True,
    ):
        self._sim = sim
        self._rng = rng
        self._default_link = default_link or LinkModel()
        #: §3: multicast is exploited "when the underlying network allows
        #: it". False models a network without it: every group send is
        #: charged one emission (and serialization) per member — the
        #: baseline of experiment E3.
        self.supports_multicast = supports_multicast
        self._nics: Dict[str, SimNic] = {}
        self._links: Dict[Tuple[str, str], LinkModel] = {}
        self._link_rngs: Dict[Tuple[str, str], SeededRng] = {}
        self._groups: Dict[GroupName, Set[str]] = {}
        # Per-sender "uplink busy until" time implementing serialization delay.
        self._uplink_free_at: Dict[str, float] = {}
        self.stats = NetworkStats()
        self._trace: Optional[List[Packet]] = None

    # -- topology ----------------------------------------------------------
    def attach(self, node: str) -> SimNic:
        """Create (or return) the NIC for ``node``."""
        if node not in self._nics:
            self._nics[node] = SimNic(self, node)
        return self._nics[node]

    def nodes(self) -> List[str]:
        return sorted(self._nics)

    def set_link(self, src: str, dst: str, model: LinkModel, symmetric: bool = True) -> None:
        """Override the link model between two nodes."""
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model

    def set_default_link(self, model: LinkModel) -> None:
        self._default_link = model

    def link_for(self, src: str, dst: str) -> LinkModel:
        return self._links.get((src, dst), self._default_link)

    def set_node_up(self, node: str, up: bool) -> None:
        """Fault injection: a down node neither sends nor receives."""
        self.attach(node).up = up

    # -- tracing -----------------------------------------------------------
    def enable_trace(self) -> List[Packet]:
        """Start recording every delivered packet; returns the live list."""
        self._trace = []
        return self._trace

    # -- group membership ---------------------------------------------------
    def _join(self, node: str, group: GroupName) -> None:
        self._groups.setdefault(group, set()).add(node)

    def _leave(self, node: str, group: GroupName) -> None:
        members = self._groups.get(group)
        if members is not None:
            members.discard(node)

    def group_members(self, group: GroupName) -> Set[str]:
        return set(self._groups.get(group, set()))

    # -- transmission core ---------------------------------------------------
    def _link_rng(self, src: str, dst: str) -> SeededRng:
        key = (src, dst)
        if key not in self._link_rngs:
            self._link_rngs[key] = self._rng.fork(f"link:{src}->{dst}")
        return self._link_rngs[key]

    def _emit(self, nic: SimNic, packet: Packet) -> None:
        if not nic.up:
            self.stats.drops_down.add(packet.size)
            return
        src = nic.node
        if packet.source.node != src:
            raise TransportError(
                f"packet source {packet.source} does not match NIC node {src}"
            )
        # MTU is enforced against the *source's* default view of the medium;
        # the Protocol layer fragments before this point.
        mtu = self._default_link.mtu
        if len(packet.payload) > mtu:
            raise TransportError(
                f"payload of {len(packet.payload)} bytes exceeds MTU {mtu}; "
                "fragment at the protocol layer"
            )
        packet.sent_at = self._sim.now()

        # Multicast shares the default medium; unicast serializes at the
        # specific link's rate (a radio hop to the ground is slower than
        # the on-board Ethernet).
        model = self._default_link
        if isinstance(packet.destination, Address):
            model = self.link_for(src, packet.destination.node)
        if isinstance(packet.destination, GroupName):
            members = self._groups.get(packet.destination, set())
            receivers = sorted(m for m in members if m != src)
            # Loopback: multicast senders that joined their own group hear
            # their packets too, matching IP_MULTICAST_LOOP defaults.
            if src in members:
                receivers.append(src)
            if not receivers:
                self.stats.record_emission(src, packet.size)
                self.stats.drops_nomember.add(packet.size)
                return
            if self.supports_multicast:
                # Serialization charged once per emission — the bandwidth
                # win measured by experiment E3.
                self.stats.record_emission(src, packet.size)
                tx_done = self._occupy_uplink(src, model, packet.size)
                for dst in receivers:
                    self._schedule_delivery(src, dst, packet, tx_done)
            else:
                # No multicast in the underlying network: one emission (and
                # one serialization slot) per receiver.
                for dst in receivers:
                    self.stats.record_emission(src, packet.size)
                    tx_done = self._occupy_uplink(src, model, packet.size)
                    self._schedule_delivery(src, dst, packet, tx_done)
        else:
            self.stats.record_emission(src, packet.size)
            tx_done = self._occupy_uplink(src, model, packet.size)
            self._schedule_delivery(src, packet.destination.node, packet, tx_done)

    def _occupy_uplink(self, src: str, model: LinkModel, size: int) -> float:
        """Reserve the sender's FIFO uplink; returns serialization-done time."""
        free_at = max(self._uplink_free_at.get(src, 0.0), self._sim.now())
        tx_done = free_at + model.serialization_delay(size)
        self._uplink_free_at[src] = tx_done
        return tx_done

    def _schedule_delivery(self, src: str, dst: str, packet: Packet, tx_done: float) -> None:
        if dst not in self._nics:
            # Unknown destination: silently dropped, like a LAN.
            self.stats.drops_down.add(packet.size)
            return
        if src == dst:
            # Local loopback: no propagation delay or loss.
            arrival = tx_done
        else:
            model = self.link_for(src, dst)
            rng = self._link_rng(src, dst)
            if model.drops(rng):
                self.stats.drops_loss.add(packet.size)
                return
            arrival = tx_done + model.propagation_delay(rng)

        def deliver() -> None:
            nic = self._nics.get(dst)
            if nic is None or not nic.up:
                self.stats.drops_down.add(packet.size)
                return
            delivered = Packet(
                source=packet.source,
                destination=packet.destination,
                payload=packet.payload,
                sent_at=packet.sent_at,
                delivered_at=self._sim.now(),
            )
            self.stats.record_delivery(dst, delivered.size)
            if self._trace is not None:
                self._trace.append(delivered)
            nic._deliver(delivered)

        self._sim.schedule_at(arrival, deliver)


__all__ = ["SimNetwork", "SimNic", "Receiver"]
