"""Link behaviour models.

One :class:`LinkModel` describes a directed node pair (or the network-wide
default): propagation latency with jitter, independent packet loss, a
serialization bandwidth, and an MTU. The values default to something like a
small switched Ethernet segment, the medium the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class LinkModel:
    """Parameters of one directed link.

    Attributes
    ----------
    latency:
        One-way propagation delay in seconds.
    jitter:
        Half-width of the uniform jitter added to ``latency``.
    loss:
        Independent per-packet loss probability in [0, 1].
    bandwidth_bps:
        Serialization rate in bits per second. ``0`` means infinite.
    mtu:
        Maximum payload size in bytes; larger packets are rejected (the
        Protocol layer must fragment before reaching the wire).
    """

    latency: float = 0.0005  # 0.5 ms — small LAN
    jitter: float = 0.0001
    loss: float = 0.0
    bandwidth_bps: float = 100_000_000.0  # 100 Mbit/s
    mtu: int = 1472  # Ethernet UDP payload

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not (0.0 <= self.loss <= 1.0):
            raise ValueError("loss must be a probability")
        if self.bandwidth_bps < 0:
            raise ValueError("bandwidth must be non-negative")
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")

    def serialization_delay(self, size_bytes: int) -> float:
        """Seconds needed to put ``size_bytes`` on the wire."""
        if self.bandwidth_bps == 0:
            return 0.0
        return (size_bytes * 8.0) / self.bandwidth_bps

    def propagation_delay(self, rng: SeededRng) -> float:
        """One sample of the propagation delay."""
        return rng.jittered(self.latency, self.jitter, floor=0.0)

    def drops(self, rng: SeededRng) -> bool:
        """Draw the independent loss event for one packet."""
        return rng.chance(self.loss)


#: A perfect link — zero latency, no loss, infinite bandwidth. Useful in
#: unit tests that exercise protocol logic rather than network behaviour.
PERFECT_LINK = LinkModel(latency=0.0, jitter=0.0, loss=0.0, bandwidth_bps=0.0, mtu=1 << 30)

#: A lossy radio-modem-like link (the UAV-to-ground segment in the paper's
#: scenario): higher latency, visible loss, constrained bandwidth.
RADIO_LINK = LinkModel(
    latency=0.020, jitter=0.005, loss=0.02, bandwidth_bps=1_000_000.0, mtu=1472
)

__all__ = ["LinkModel", "PERFECT_LINK", "RADIO_LINK"]
