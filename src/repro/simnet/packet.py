"""The unit of transmission on the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.simnet.addressing import Address, GroupName

Destination = Union[Address, GroupName]

# Fixed per-packet overhead charged by the simulated medium, standing in for
# Ethernet + IP + UDP headers (14 + 20 + 8 bytes, rounded).
WIRE_OVERHEAD_BYTES = 42


@dataclass
class Packet:
    """A datagram in flight.

    ``payload`` is opaque to the network; framing and demultiplexing happen
    in the PEPt Protocol layer above.
    """

    source: Address
    destination: Destination
    payload: bytes
    # Filled in by the network on delivery; useful for traces.
    sent_at: float = field(default=0.0)
    delivered_at: float = field(default=0.0)

    @property
    def size(self) -> int:
        """Bytes this packet occupies on the wire, headers included."""
        return len(self.payload) + WIRE_OVERHEAD_BYTES

    @property
    def is_multicast(self) -> bool:
        return isinstance(self.destination, GroupName)


__all__ = ["Packet", "Destination", "WIRE_OVERHEAD_BYTES"]
