"""Wire-level statistics.

The bandwidth claims in the paper (§4.1: "one packet sent can arrive to
multiple nodes"; §4.4: "huge performance benefits") are about *emissions* —
how many times a sender serializes a datagram — versus *deliveries*. The
network counts both, globally and per node.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.simnet.packet import WIRE_OVERHEAD_BYTES


@dataclass
class Counter:
    """One direction's packet/byte tally."""

    packets: int = 0
    bytes: int = 0

    def add(self, size: int) -> None:
        self.packets += 1
        self.bytes += size

    @property
    def overhead_bytes(self) -> int:
        """Bytes spent on fixed per-datagram headers — the cost batching
        amortizes (each packet pays :data:`WIRE_OVERHEAD_BYTES` once)."""
        return self.packets * WIRE_OVERHEAD_BYTES

    @property
    def payload_bytes(self) -> int:
        return self.bytes - self.overhead_bytes


@dataclass
class NetworkStats:
    """Aggregate and per-node counters maintained by :class:`SimNetwork`.

    - ``emissions``: datagrams handed to the medium (a multicast send counts
      once, no matter how many members the group has).
    - ``deliveries``: datagrams arriving at a NIC receiver.
    - ``drops_loss``: deliveries suppressed by the link loss model.
    - ``drops_down``: deliveries suppressed because a node was down.
    - ``drops_nomember``: multicast emissions that found no group member.
    """

    emissions: Counter = field(default_factory=Counter)
    deliveries: Counter = field(default_factory=Counter)
    drops_loss: Counter = field(default_factory=Counter)
    drops_down: Counter = field(default_factory=Counter)
    drops_nomember: Counter = field(default_factory=Counter)
    emissions_by_node: Dict[str, Counter] = field(
        default_factory=lambda: defaultdict(Counter)
    )
    deliveries_by_node: Dict[str, Counter] = field(
        default_factory=lambda: defaultdict(Counter)
    )

    def record_emission(self, node: str, size: int) -> None:
        self.emissions.add(size)
        self.emissions_by_node[node].add(size)

    def record_delivery(self, node: str, size: int) -> None:
        self.deliveries.add(size)
        self.deliveries_by_node[node].add(size)

    def snapshot(self) -> Dict[str, int]:
        """A flat dict convenient for printing benchmark rows."""
        return {
            "emissions": self.emissions.packets,
            "emitted_bytes": self.emissions.bytes,
            "emitted_overhead_bytes": self.emissions.overhead_bytes,
            "deliveries": self.deliveries.packets,
            "delivered_bytes": self.deliveries.bytes,
            "delivered_overhead_bytes": self.deliveries.overhead_bytes,
            "drops_loss": self.drops_loss.packets,
            "drops_down": self.drops_down.packets,
        }

    def export(self, registry, prefix: str = "net.", **labels: str) -> None:
        """Sync these counters into a unified
        :class:`~repro.observability.metrics.MetricsRegistry` as gauges
        (set, not incremented, so repeated exports stay idempotent). Called
        lazily at snapshot time — the packet hot path never pays for it."""
        pairs = [
            ("emissions", self.emissions),
            ("deliveries", self.deliveries),
            ("drops_loss", self.drops_loss),
            ("drops_down", self.drops_down),
            ("drops_nomember", self.drops_nomember),
        ]
        for name, counter in pairs:
            registry.gauge(f"{prefix}{name}_packets", **labels).set(counter.packets)
            registry.gauge(f"{prefix}{name}_bytes", **labels).set(counter.bytes)
            registry.gauge(f"{prefix}{name}_overhead_bytes", **labels).set(
                counter.overhead_bytes
            )
        for node, counter in self.emissions_by_node.items():
            registry.gauge(
                f"{prefix}emissions_packets", node=node, **labels
            ).set(counter.packets)
        for node, counter in self.deliveries_by_node.items():
            registry.gauge(
                f"{prefix}deliveries_packets", node=node, **labels
            ).set(counter.packets)


__all__ = ["NetworkStats", "Counter"]
