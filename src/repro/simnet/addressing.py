"""Network addressing.

A unicast :class:`Address` is ``(node, port)``; multicast destinations are
:class:`GroupName` strings (e.g. ``"mcast.var.gps.position"``). The service
container owns all port and group assignment — services never see these
types (§3, "Network management and abstraction").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Address:
    """Unicast endpoint: a node identifier plus a port number."""

    node: str
    port: int

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("node id must be non-empty")
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"


class GroupName(str):
    """A multicast group identifier.

    Conventional prefixes used by the middleware:

    - ``mcast.control`` — container announce/heartbeat traffic
    - ``mcast.var.<variable>`` — one group per published variable
    - ``mcast.file.<resource>`` — one group per file-transfer session
    """

    def __new__(cls, value: str) -> "GroupName":
        if not value.startswith("mcast."):
            raise ValueError(f"multicast group names must start with 'mcast.': {value!r}")
        return super().__new__(cls, value)


CONTROL_GROUP = GroupName("mcast.control")

#: Backbone group joined by relay and ground-station containers in a
#: federated fleet; zone summaries travel here (never raw zone traffic).
BACKBONE_GROUP = GroupName("mcast.control.backbone")

#: Network-model zone shared by every backbone member (relays bridge it
#: with their own zone; see ``SimNetwork.add_node_to_zone``).
BACKBONE_ZONE = "backbone"


def zone_control_group(zone: str) -> GroupName:
    """The control group of one fleet zone — announce/heartbeat traffic of
    a federated fleet stays inside the zone instead of flooding the domain."""
    return GroupName(f"mcast.control.zone.{zone}")


def variable_group(variable_name: str) -> GroupName:
    """The multicast group a published variable's samples travel on."""
    return GroupName(f"mcast.var.{variable_name}")


def file_group(resource_name: str) -> GroupName:
    """The multicast group a file-transfer session's chunks travel on."""
    return GroupName(f"mcast.file.{resource_name}")


__all__ = [
    "Address",
    "GroupName",
    "CONTROL_GROUP",
    "BACKBONE_GROUP",
    "BACKBONE_ZONE",
    "variable_group",
    "file_group",
    "zone_control_group",
]
