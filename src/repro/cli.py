"""Command-line interface.

    python -m repro.cli fly <mission.json> [--seed N] [--timeout S]
    python -m repro.cli validate <mission.json>
    python -m repro.cli inventory

``fly`` runs a mission document end to end on the simulation runtime and
prints a report; ``validate`` parses and summarizes a document;
``inventory`` prints the implementation inventory (experiment E8).
"""

from __future__ import annotations

import argparse
import sys

from repro.flight.missionspec import build_mission, load_mission_spec
from repro.runtime.simruntime import SimRuntime
from repro.util.errors import MiddlewareError


def _cmd_fly(args: argparse.Namespace) -> int:
    spec = load_mission_spec(args.mission)
    print(f"mission {spec.name!r}: {len(spec.plan)} waypoints, "
          f"{len(spec.plan.photo_waypoints)} photos, "
          f"{spec.plan.total_length_m():.0f} m track")
    runtime = SimRuntime(seed=args.seed)
    services = build_mission(runtime, spec)
    mission = services["mission"]
    runtime.start()
    completed = runtime.run_until(lambda: mission.complete, timeout=args.timeout)
    runtime.run_for(5.0)
    runtime.stop()

    storage = services["storage"]
    video = services["video"]
    ground = services["ground"]
    print(f"\ncompleted: {completed} at t={runtime.sim.now():.1f} s (virtual)")
    print(f"photos: {services['camera'].photos_taken}, "
          f"stored: {len(storage.stored_names())}, "
          f"detections: {video.detections}")
    stats = runtime.network.stats.snapshot()
    print(f"wire: {stats['emissions']} emissions, {stats['emitted_bytes']} B")
    if args.verbose:
        print("\n=== ground station terminal ===")
        for t, line in ground.terminal():
            print(f"{t:8.2f}  {line}")
    return 0 if completed else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = load_mission_spec(args.mission)
    print(f"name:            {spec.name}")
    print(f"origin:          {spec.origin.lat:.5f}, {spec.origin.lon:.5f}, "
          f"{spec.origin.alt:.0f} m")
    print(f"plan:            {spec.plan.name}, {len(spec.plan)} waypoints")
    print(f"photo waypoints: {spec.plan.photo_waypoints}")
    print(f"track length:    {spec.plan.total_length_m():.0f} m")
    print(f"cruise speed:    {spec.cruise_speed:.1f} m/s")
    eta = spec.plan.total_length_m() / spec.cruise_speed
    print(f"estimated time:  {eta:.0f} s")
    return 0


def _cmd_inventory(_args: argparse.Namespace) -> int:
    sys.path.insert(0, "benchmarks")
    try:
        from bench_inventory import run_experiment
    except ImportError:
        print("benchmarks/ not available in this installation", file=sys.stderr)
        return 1
    run_experiment()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UAV avionics middleware (Middleware 2007 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fly = sub.add_parser("fly", help="run a mission document on the simulator")
    fly.add_argument("mission", help="path to a mission JSON document")
    fly.add_argument("--seed", type=int, default=1)
    fly.add_argument("--timeout", type=float, default=900.0,
                     help="virtual-time limit in seconds")
    fly.add_argument("--verbose", action="store_true",
                     help="print the ground station terminal")
    fly.set_defaults(fn=_cmd_fly)

    validate = sub.add_parser("validate", help="parse and summarize a mission document")
    validate.add_argument("mission")
    validate.set_defaults(fn=_cmd_validate)

    inventory = sub.add_parser("inventory", help="print the implementation inventory")
    inventory.set_defaults(fn=_cmd_inventory)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except MiddlewareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; exit quietly.
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
