"""Command-line interface.

    python -m repro.cli fly <mission.json> [--seed N] [--timeout S]
    python -m repro.cli validate <mission.json>
    python -m repro.cli inventory
    python -m repro.cli trace <mission.json> [--seed N] [--json] [--flight]
    python -m repro.cli metrics <mission.json> [--seed N] [--json]
    python -m repro.cli attack <mission.json> --persona NAME [--undefended]
    python -m repro.cli verify <mission.json> [--seed N] [--trace] [--json]
    python -m repro.cli check [paths...] [--format json]

``fly`` runs a mission document end to end on the simulation runtime and
prints a report; ``validate`` parses and summarizes a document;
``inventory`` prints the implementation inventory (experiment E8);
``trace`` re-flies a mission with causal tracing enabled and dumps the
cross-container span forest; ``metrics`` dumps the unified fleet-wide
metrics snapshot after a flight; ``attack`` re-flies a mission with a
named attacker persona loose on the LAN (defenses armed unless
``--undefended``) and reports the admission/quarantine outcome; ``verify``
re-flies a mission with the runtime-verification monitors armed
(:mod:`repro.verify`) and reports spec violations; ``check`` runs the
architectural lint rules (see :mod:`repro.analysis`, also
``python -m repro.analysis``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.flight.missionspec import build_mission, load_mission_spec
from repro.observability.trace import format_span_tree
from repro.runtime.simruntime import SimRuntime
from repro.util.errors import MiddlewareError


def _fly_mission(args: argparse.Namespace, tracing: bool = False):
    """Run a mission document to completion; shared by fly/trace/metrics."""
    spec = load_mission_spec(args.mission)
    runtime = SimRuntime(seed=args.seed)
    services = build_mission(runtime, spec)
    if tracing:
        runtime.enable_tracing()
    mission = services["mission"]
    runtime.start()
    completed = runtime.run_until(lambda: mission.complete, timeout=args.timeout)
    runtime.run_for(5.0)
    runtime.stop()
    return spec, runtime, services, completed


def _cmd_fly(args: argparse.Namespace) -> int:
    spec = load_mission_spec(args.mission)
    print(f"mission {spec.name!r}: {len(spec.plan)} waypoints, "
          f"{len(spec.plan.photo_waypoints)} photos, "
          f"{spec.plan.total_length_m():.0f} m track")
    _, runtime, services, completed = _fly_mission(args)

    storage = services["storage"]
    video = services["video"]
    ground = services["ground"]
    print(f"\ncompleted: {completed} at t={runtime.sim.now():.1f} s (virtual)")
    print(f"photos: {services['camera'].photos_taken}, "
          f"stored: {len(storage.stored_names())}, "
          f"detections: {video.detections}")
    stats = runtime.network.stats.snapshot()
    print(f"wire: {stats['emissions']} emissions, {stats['emitted_bytes']} B")
    if args.verbose:
        print("\n=== ground station terminal ===")
        for t, line in ground.terminal():
            print(f"{t:8.2f}  {line}")
    return 0 if completed else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = load_mission_spec(args.mission)
    print(f"name:            {spec.name}")
    print(f"origin:          {spec.origin.lat:.5f}, {spec.origin.lon:.5f}, "
          f"{spec.origin.alt:.0f} m")
    print(f"plan:            {spec.plan.name}, {len(spec.plan)} waypoints")
    print(f"photo waypoints: {spec.plan.photo_waypoints}")
    print(f"track length:    {spec.plan.total_length_m():.0f} m")
    print(f"cruise speed:    {spec.cruise_speed:.1f} m/s")
    eta = spec.plan.total_length_m() / spec.cruise_speed
    print(f"estimated time:  {eta:.0f} s")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    spec, runtime, _, completed = _fly_mission(args, tracing=True)
    spans = runtime.trace_spans()
    roots = runtime.trace_tree()
    if args.json:
        print(json.dumps(
            {
                "mission": spec.name,
                "completed": completed,
                "spans": [span.to_dict() for span in spans],
            },
            indent=2,
        ))
    else:
        print(f"mission {spec.name!r}: {len(spans)} spans, "
              f"{len(roots)} root(s), completed={completed}")
        for line in format_span_tree(roots):
            print(line)
    if args.flight:
        print("\n=== flight recorders ===")
        for container_id, container in sorted(runtime.containers.items()):
            print(f"--- {container_id} ---")
            print(container.recorder.dump_json())
    return 0 if completed else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    spec, runtime, _, completed = _fly_mission(args)
    snapshot = runtime.metrics_snapshot()
    if args.json:
        print(json.dumps(
            {"mission": spec.name, "completed": completed, "metrics": snapshot},
            indent=2,
        ))
    else:
        print(f"mission {spec.name!r}: completed={completed}, "
              f"{len(snapshot)} metrics")
        for key, value in snapshot.items():
            print(f"{key} = {value}")
    return 0 if completed else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.faults.personas import PERSONAS

    spec = load_mission_spec(args.mission)
    runtime = SimRuntime(seed=args.seed)
    services = build_mission(runtime, spec)
    mission = services["mission"]
    containers = sorted(runtime.containers)
    target = args.target or containers[0]
    if target not in runtime.containers:
        print(f"error: no container {target!r} in this mission "
              f"(have: {', '.join(containers)})", file=sys.stderr)
        return 2
    persona_cls = PERSONAS[args.persona]
    kwargs = dict(
        target=target, start=args.start, duration=args.duration, rate=args.rate
    )
    if args.persona in ("nacker", "replayer"):
        # Spoof the identity of a legitimate peer of the target.
        spoof = next(c for c in containers if c != target)
        kwargs["spoof"] = spoof
    persona = persona_cls(runtime, **kwargs)

    runtime.start()
    if not args.undefended:
        runtime.enable_admission()
        runtime.harden_reliability()
    persona.launch()
    completed = runtime.run_until(lambda: mission.complete, timeout=args.timeout)
    runtime.run_for(5.0)
    runtime.stop()

    report = runtime.admission_report()
    snapshot = runtime.metrics_snapshot()
    defense_metrics = {
        key: value
        for key, value in snapshot.items()
        if key.split("{")[0]
        in (
            "admission_drops",
            "quarantines",
            "malformed_frames",
            "malformed_datagrams",
            "ingress_overflow",
            "reliability_abuse",
        )
    }
    if args.json:
        print(json.dumps(
            {
                "mission": spec.name,
                "completed": completed,
                "persona": args.persona,
                "target": target,
                "defended": not args.undefended,
                "attack_frames": persona.frames_sent,
                "attack_bytes": persona.bytes_sent,
                "admission": report,
                "metrics": defense_metrics,
            },
            indent=2,
        ))
    else:
        mode = "UNDEFENDED" if args.undefended else "defended"
        print(f"mission {spec.name!r} under {args.persona} -> {target} "
              f"({mode}): completed={completed}")
        print(f"attack traffic: {persona.frames_sent} frames, "
              f"{persona.bytes_sent} B ({persona.describe()})")
        if report:
            print("\nadmission per container:")
            for container_id, entry in report.items():
                quarantined = ", ".join(entry["quarantined"]) or "-"
                print(f"  {container_id}: admitted={entry['admitted']} "
                      f"dropped={entry['dropped']} quarantined={quarantined}")
        else:
            print("\nadmission: no drops recorded")
        if defense_metrics:
            print("\ndefense counters:")
            for key, value in defense_metrics.items():
                print(f"  {key} = {value}")
    return 0 if completed else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.library import standard_specs

    spec = load_mission_spec(args.mission)
    runtime = SimRuntime(seed=args.seed)
    services = build_mission(runtime, spec)
    if args.trace:
        runtime.enable_tracing()
    monitor = runtime.enable_verification(
        standard_specs(heal_bound=args.heal_bound), tracing=args.trace
    )
    mission = services["mission"]
    runtime.start()
    completed = runtime.run_until(lambda: mission.complete, timeout=args.timeout)
    runtime.run_for(5.0)
    report = runtime.verification_report()
    runtime.stop()

    clean = not any(v.severity == "error" for v in monitor.violations)
    if args.json:
        print(json.dumps(
            {"mission": spec.name, "completed": completed, **report}, indent=2
        ))
    else:
        print(f"mission {spec.name!r}: completed={completed}, "
              f"{report['events_observed']} events checked against "
              f"{len(report['specs'])} specs")
        for entry in report["specs"]:
            print(f"  spec {entry['name']} (owner {entry['owner']}, "
                  f"{entry['severity']})")
        if monitor.violations:
            print(f"\n{len(monitor.violations)} violation(s):")
            for violation in monitor.violations:
                where = (
                    f" span={violation.span_id}" if violation.span_id else ""
                )
                print(f"  t={violation.time:9.4f} {violation.container}: "
                      f"{violation.spec} [{violation.key!r}] "
                      f"{violation.reason}{where}")
        else:
            print("\nno violations")
        if report["pending"]:
            print("\npending obligations at end of run:")
            for name, entries in report["pending"].items():
                print(f"  {name}: {len(entries)}")
    return 0 if completed and clean else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as analysis_main

    return analysis_main(["check", *args.rest])


def _cmd_inventory(_args: argparse.Namespace) -> int:
    sys.path.insert(0, "benchmarks")
    try:
        from bench_inventory import run_experiment
    except ImportError:
        print("benchmarks/ not available in this installation", file=sys.stderr)
        return 1
    run_experiment()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UAV avionics middleware (Middleware 2007 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fly = sub.add_parser("fly", help="run a mission document on the simulator")
    fly.add_argument("mission", help="path to a mission JSON document")
    fly.add_argument("--seed", type=int, default=1)
    fly.add_argument("--timeout", type=float, default=900.0,
                     help="virtual-time limit in seconds")
    fly.add_argument("--verbose", action="store_true",
                     help="print the ground station terminal")
    fly.set_defaults(fn=_cmd_fly)

    validate = sub.add_parser("validate", help="parse and summarize a mission document")
    validate.add_argument("mission")
    validate.set_defaults(fn=_cmd_validate)

    inventory = sub.add_parser("inventory", help="print the implementation inventory")
    inventory.set_defaults(fn=_cmd_inventory)

    trace = sub.add_parser(
        "trace", help="fly a mission with tracing enabled, dump the span forest"
    )
    trace.add_argument("mission")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--timeout", type=float, default=900.0)
    trace.add_argument("--json", action="store_true", help="emit spans as JSON")
    trace.add_argument("--flight", action="store_true",
                       help="also dump every container's flight recorder")
    trace.set_defaults(fn=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="fly a mission, dump the unified metrics snapshot"
    )
    metrics.add_argument("mission")
    metrics.add_argument("--seed", type=int, default=1)
    metrics.add_argument("--timeout", type=float, default=900.0)
    metrics.add_argument("--json", action="store_true")
    metrics.set_defaults(fn=_cmd_metrics)

    attack = sub.add_parser(
        "attack",
        help="fly a mission with an attacker persona loose on the LAN",
    )
    attack.add_argument("mission")
    attack.add_argument(
        "--persona",
        choices=("flooder", "nacker", "replayer", "garbler"),
        default="flooder",
    )
    attack.add_argument("--target", default=None,
                        help="victim container id (default: first in mission)")
    attack.add_argument("--seed", type=int, default=1)
    attack.add_argument("--timeout", type=float, default=900.0)
    attack.add_argument("--start", type=float, default=2.0,
                        help="attack start (virtual seconds)")
    attack.add_argument("--duration", type=float, default=10.0)
    attack.add_argument("--rate", type=float, default=2000.0,
                        help="attack frames per second")
    attack.add_argument("--undefended", action="store_true",
                        help="leave admission control and hardening off")
    attack.add_argument("--json", action="store_true")
    attack.set_defaults(fn=_cmd_attack)

    verify = sub.add_parser(
        "verify",
        help="fly a mission with runtime-verification monitors armed",
    )
    verify.add_argument("mission")
    verify.add_argument("--seed", type=int, default=1)
    verify.add_argument("--timeout", type=float, default=900.0)
    verify.add_argument("--heal-bound", type=float, default=None,
                        help="also arm convergence-response with this window")
    verify.add_argument("--trace", action="store_true",
                        help="enable tracing so violations carry span ids")
    verify.add_argument("--json", action="store_true")
    verify.set_defaults(fn=_cmd_verify)

    check = sub.add_parser(
        "check", help="run the architectural lint rules (repro.analysis)"
    )
    check.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.analysis check`",
    )
    check.set_defaults(fn=_cmd_check)

    # argparse REMAINDER only engages after a positional: a bare option
    # like `repro check --update-schema-lock` would be rejected by the
    # top-level parser. Collect unknowns and forward them for `check`.
    args, extra = parser.parse_known_args(argv)
    if extra:
        if args.fn is not _cmd_check:
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
        args.rest = [*extra, *args.rest]
    try:
        return args.fn(args)
    except MiddlewareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; exit quietly.
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
