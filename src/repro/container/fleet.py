"""Fleet-scale discovery configuration.

At tens of containers the paper's flat control plane — every container
multicasting ANNOUNCE/HEARTBEAT to one domain-wide group — is fine. At a
thousand it is O(N²) control traffic and every directory holds every record.
:class:`FleetConfig` selects the two scale mechanisms, both **off by
default** so the seed behavior (and its packet traces) are untouched:

- **Gossip dissemination** (``gossip_enabled``): periodic announces and
  heartbeats become versioned rumors forwarded to ``gossip_fanout`` random
  live peers per round instead of multicast to everyone. Epidemic spread
  keeps convergence fast while per-container control traffic stays bounded
  by fanout, not fleet size.
- **Hierarchical federation** (``zone``): containers join a per-zone
  control group (:func:`repro.simnet.addressing.zone_control_group`), so
  raw announce/heartbeat traffic stays inside the zone. Containers with
  role ``relay`` or ``ground`` additionally join the backbone group and
  periodically publish :data:`~repro.protocol.frames.MessageKind.ZONE_SUMMARY`
  digests of their zone; relays forward foreign summaries down into their
  zone. A directory therefore holds full records for its own zone plus
  compact summaries of every other zone (UAV → relay → ground station).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simnet.addressing import CONTROL_GROUP, GroupName, zone_control_group
from repro.util.errors import ConfigurationError

#: Roles a fleet container can take. ``uav`` is a plain zone member;
#: ``relay`` and ``ground`` bridge their zone onto the backbone.
FLEET_ROLES = ("uav", "relay", "ground")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-scale discovery knobs. The default instance is inert: flat
    control group, no gossip, no summaries — byte-identical to the seed."""

    #: Disseminate periodic announce/heartbeat as gossip rumors instead of
    #: multicast to the control group.
    gossip_enabled: bool = False
    #: Live peers each gossip round forwards fresh rumors to.
    gossip_fanout: int = 3
    #: Seconds between gossip rounds (rumor flushes).
    gossip_interval: float = 0.1
    #: Rumor cap per GOSSIP frame; the remainder waits for the next round.
    gossip_max_rumors: int = 64

    #: Federation zone this container belongs to; ``None`` means the flat
    #: domain-wide control group.
    zone: Optional[str] = None
    #: "uav" | "relay" | "ground" — relay/ground also join the backbone.
    role: str = "uav"
    #: Seconds between ZONE_SUMMARY publications (relay/ground only).
    summary_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.role not in FLEET_ROLES:
            raise ConfigurationError(
                f"fleet role must be one of {FLEET_ROLES}, got {self.role!r}"
            )
        if self.role in ("relay", "ground") and self.zone is None:
            raise ConfigurationError(
                f"fleet role {self.role!r} requires a zone (it bridges the "
                "zone onto the backbone)"
            )
        if self.gossip_fanout < 1:
            raise ConfigurationError("gossip_fanout must be >= 1")
        if self.gossip_interval <= 0:
            raise ConfigurationError("gossip_interval must be positive")
        if self.gossip_max_rumors < 1:
            raise ConfigurationError("gossip_max_rumors must be >= 1")
        if self.summary_interval <= 0:
            raise ConfigurationError("summary_interval must be positive")

    @property
    def enabled(self) -> bool:
        """True when any fleet mechanism deviates from seed behavior."""
        return self.gossip_enabled or self.zone is not None

    @property
    def backbone_member(self) -> bool:
        return self.role in ("relay", "ground")

    def control_group(self) -> GroupName:
        """The control group this container announces/heartbeats on."""
        if self.zone is None:
            return CONTROL_GROUP
        return zone_control_group(self.zone)


__all__ = ["FleetConfig", "FLEET_ROLES"]
