"""The Service Container (§3).

One container per node. It is the only component that touches the network;
services are "entirely decoupled" and interact exclusively through the four
communication primitives. The container provides:

- **service management** — lifecycle, health watching, failure isolation;
- **name management** — discovery via announce/heartbeat multicast, a local
  proxy cache (:class:`Directory`), cache invalidation on failure;
- **network management** — port/group bookkeeping behind the transports;
- **resource management** — storage quotas, exclusive devices, CPU sharing
  through the pluggable scheduler.
"""

from repro.container.config import ContainerConfig
from repro.container.container import ServiceContainer
from repro.container.directory import Directory
from repro.container.lifecycle import ServiceState
from repro.container.records import ContainerRecord
from repro.container.resources import ResourceManager
from repro.container.supervisor import RestartPolicy, ServiceSupervisor

__all__ = [
    "ServiceContainer",
    "ContainerConfig",
    "Directory",
    "ContainerRecord",
    "ServiceState",
    "ResourceManager",
    "RestartPolicy",
    "ServiceSupervisor",
]
