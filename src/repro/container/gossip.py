"""Fleet-scale control-plane dissemination: gossip rumors and zone summaries.

Flat discovery multicasts every ANNOUNCE/HEARTBEAT to the whole domain —
O(N²) control traffic. At fleet scale this module replaces that fan-out with
two cooperating mechanisms, selected by :class:`~repro.container.fleet.FleetConfig`:

**Gossip** — a periodic control emission becomes a *rumor*: the original
announce/heartbeat/bye payload wrapped with its origin and a per-origin
monotonic version. Each gossip round the coordinator forwards fresh rumors
to ``gossip_fanout`` random live peers; receivers apply a rumor to their
directory exactly once (version dedup) and forward it onward. Epidemic
spread reaches N containers in O(log N) rounds while each container sends
O(fanout) frames per round regardless of fleet size.

**Zone summaries** — relay/ground containers periodically publish a
ZONE_SUMMARY digest of their zone's directory on the backbone group and
forward foreign summaries down into their own zone, giving every container
a compact map of the whole fleet without holding per-container records for
other zones.

Rumor payloads reuse the exact ANNOUNCE/HEARTBEAT/BYE encodings from
:mod:`repro.container.records`, so the directory merge logic is unchanged —
gossip only changes *how* control documents travel, never what they say.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.container.records import (
    decode_announce,
    decode_bye,
    decode_heartbeat,
)
from repro.encoding.compiled import CompiledCodec
from repro.encoding.types import (
    BYTES,
    STRING,
    UINT8,
    UINT16,
    UINT32,
    StructType,
    VectorType,
)
from repro.protocol.frames import Frame, MessageKind
from repro.simnet.addressing import BACKBONE_GROUP, zone_control_group
from repro.util.errors import ProtocolError
from repro.util.rng import SeededRng

_CODEC = CompiledCodec()

# -- wire schemas -------------------------------------------------------------

RUMOR_SCHEMA = StructType(
    "Rumor",
    [
        #: MessageKind value of the wrapped control payload
        #: (ANNOUNCE, HEARTBEAT or BYE).
        ("kind", UINT8),
        ("origin", STRING),
        #: Per-origin monotonic version; one counter spans all rumor kinds
        #: of an origin, so newer emissions always win the dedup.
        ("version", UINT32),
        #: The original control payload, byte-identical to its multicast form.
        ("payload", BYTES),
    ],
)

GOSSIP_SCHEMA = StructType("Gossip", [("rumors", VectorType(RUMOR_SCHEMA))])

SUMMARY_MEMBER_SCHEMA = StructType(
    "SummaryMember",
    [
        ("container", STRING),
        ("node", STRING),
        ("port", UINT16),
        ("incarnation", UINT32),
        ("alive", UINT8),  # 0/1; dead members propagate so other zones unbind
    ],
)

ZONE_SUMMARY_SCHEMA = StructType(
    "ZoneSummary",
    [
        ("zone", STRING),
        ("origin", STRING),  # the relay/ground container that published it
        ("version", UINT32),
        ("members", VectorType(SUMMARY_MEMBER_SCHEMA)),
    ],
)


def encode_gossip(doc: dict) -> bytes:
    return _CODEC.encode(GOSSIP_SCHEMA, doc)


def decode_gossip(payload: bytes) -> dict:
    return _CODEC.decode(GOSSIP_SCHEMA, payload)


def encode_zone_summary(doc: dict) -> bytes:
    return _CODEC.encode(ZONE_SUMMARY_SCHEMA, doc)


def decode_zone_summary(payload: bytes) -> dict:
    return _CODEC.decode(ZONE_SUMMARY_SCHEMA, payload)


#: Control kinds a rumor may wrap; anything else is a protocol violation.
_RUMOR_KINDS = {
    int(MessageKind.ANNOUNCE),
    int(MessageKind.HEARTBEAT),
    int(MessageKind.BYE),
}


class FleetCoordinator:
    """Per-container driver of gossip rounds and zone-summary traffic.

    Owned by :class:`~repro.container.container.ServiceContainer` when its
    :class:`~repro.container.fleet.FleetConfig` enables any fleet mechanism;
    absent otherwise (zero cost on the seed path).
    """

    def __init__(self, container, rng: Optional[SeededRng] = None):
        self._container = container
        self._fleet = container.config.fleet
        # Peer sampling must be seeded for bit-reproducible runs; derive a
        # stable per-container stream when the runtime supplies none.
        self._rng = (
            rng if rng is not None else SeededRng(0xF1EE7).fork(container.id)
        )
        #: Newest rumor version seen per (origin, kind) — the dedup table.
        self._versions: Dict[Tuple[str, int], int] = {}
        #: Rumors to forward on the next gossip round.
        self._fresh: List[dict] = []
        #: Monotonic version of our own emissions (all kinds share it).
        self._self_version = 0
        self._summary_version = 0
        #: Newest summary version applied per (zone, origin).
        self._applied_summaries: Dict[Tuple[str, str], int] = {}
        #: Membership last relayed into our zone per (zone, origin). Forwards
        #: are delta-suppressed: a refresh with unchanged membership stays on
        #: the backbone, so steady-state zone traffic is independent of the
        #: number of zones.
        self._forwarded_members: Dict[Tuple[str, str], List[dict]] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> List[object]:
        """Begin periodic work; returns cancellable timer handles the
        container folds into its own periodic set."""
        handles: List[object] = []
        if self._fleet.gossip_enabled:
            handles.append(
                self._container._every(self._fleet.gossip_interval, self.flush)
            )
        if self._fleet.backbone_member:
            handles.append(
                self._container._every(
                    self._fleet.summary_interval, self.publish_summary
                )
            )
        return handles

    # -- emission (called by the container instead of multicasting) --------
    def emit_announce(self, payload: bytes) -> None:
        self._emit_own(MessageKind.ANNOUNCE, payload)

    def emit_heartbeat(self, payload: bytes) -> None:
        self._emit_own(MessageKind.HEARTBEAT, payload)

    def emit_bye(self, payload: bytes) -> None:
        self._emit_own(MessageKind.BYE, payload)

    def _emit_own(self, kind: MessageKind, payload: bytes) -> None:
        self._self_version += 1
        rumor = {
            "kind": int(kind),
            "origin": self._container.id,
            "version": self._self_version,
            "payload": payload,
        }
        # Record our own version so an echoed copy is never re-applied.
        self._versions[(self._container.id, int(kind))] = self._self_version
        self._fresh.append(rumor)

    # -- gossip rounds ------------------------------------------------------
    def flush(self) -> None:
        """One gossip round: forward fresh rumors to ``fanout`` live peers."""
        if not self._fresh:
            return
        batch = self._fresh[: self._fleet.gossip_max_rumors]
        del self._fresh[: len(batch)]
        peers = self._sample_peers()
        if not peers:
            # Nobody known yet (bootstrap): the rumors are stale by the next
            # periodic emission anyway, so dropping them loses nothing.
            return
        frame = Frame(
            kind=MessageKind.GOSSIP,
            source=self._container.id,
            payload=encode_gossip({"rumors": batch}),
        )
        for peer in peers:
            self._container.send_unicast(peer, frame)

    def _sample_peers(self) -> List[str]:
        candidates = [
            r.container for r in self._container.directory.live_containers()
        ]
        k = min(self._fleet.gossip_fanout, len(candidates))
        if k == 0:
            return []
        if k == len(candidates):
            return candidates
        # live_containers() is sorted, so the draw is deterministic per seed.
        return self._rng.sample(candidates, k)

    def on_gossip(self, frame: Frame) -> None:
        doc = decode_gossip(frame.payload)
        for rumor in doc["rumors"]:
            self._apply_rumor(rumor)

    def _apply_rumor(self, rumor: dict) -> None:
        origin = rumor["origin"]
        if origin == self._container.id:
            return
        kind = rumor["kind"]
        if kind not in _RUMOR_KINDS:
            raise ProtocolError(f"gossip rumor wraps non-control kind {kind}")
        key = (origin, kind)
        if rumor["version"] <= self._versions.get(key, 0):
            return  # already seen (or newer) — rumor dies here
        # Decode before recording the version: a malformed payload must not
        # poison the dedup table (the sender gets quarantine-scored instead).
        directory = self._container.directory
        if kind == int(MessageKind.ANNOUNCE):
            document = decode_announce(rumor["payload"])
            self._versions[key] = rumor["version"]
            directory.handle_announce(document)
        elif kind == int(MessageKind.HEARTBEAT):
            document = decode_heartbeat(rumor["payload"])
            self._versions[key] = rumor["version"]
            directory.handle_heartbeat(document)
        else:  # BYE
            container_id = decode_bye(rumor["payload"])
            self._versions[key] = rumor["version"]
            directory.handle_bye(container_id)
        self._fresh.append(rumor)  # forward once, next round

    # -- zone summaries (federation) ----------------------------------------
    def publish_summary(self) -> None:
        """Publish this zone's digest on the backbone (relay/ground only)."""
        zone = self._fleet.zone
        if zone is None:
            return
        members = [
            {
                "container": self._container.id,
                "node": self._container.config.node,
                "port": self._container.config.port,
                "incarnation": self._container._incarnation,
                "alive": 1,
            }
        ]
        directory = self._container.directory
        for record in sorted(
            directory.all_records(), key=lambda r: r.container
        ):
            members.append(
                {
                    "container": record.container,
                    "node": record.address.node,
                    "port": record.address.port,
                    "incarnation": record.incarnation,
                    "alive": 1 if record.alive else 0,
                }
            )
        self._summary_version += 1
        doc = {
            "zone": zone,
            "origin": self._container.id,
            "version": self._summary_version,
            "members": members,
        }
        self._applied_summaries[(zone, self._container.id)] = self._summary_version
        self._container.send_group(
            BACKBONE_GROUP,
            Frame(
                kind=MessageKind.ZONE_SUMMARY,
                source=self._container.id,
                payload=encode_zone_summary(doc),
            ),
        )

    def on_zone_summary(self, frame: Frame) -> None:
        doc = decode_zone_summary(frame.payload)
        zone, origin = doc["zone"], doc["origin"]
        if zone == self._fleet.zone:
            return  # our own zone — we hold the full records already
        key = (zone, origin)
        if doc["version"] <= self._applied_summaries.get(key, 0):
            return
        self._applied_summaries[key] = doc["version"]
        self._container.directory.apply_zone_summary(doc)
        if (
            self._fleet.backbone_member
            and doc["members"] != self._forwarded_members.get(key)
        ):
            # Relay the foreign summary down into our zone — but only when
            # its membership actually changed (first sight, a join/leave, an
            # incarnation bump). Periodic same-content refreshes die here.
            self._forwarded_members[key] = doc["members"]
            self._container.send_group(
                zone_control_group(self._fleet.zone),
                Frame(
                    kind=MessageKind.ZONE_SUMMARY,
                    source=self._container.id,
                    payload=frame.payload,
                ),
            )


__all__ = [
    "FleetCoordinator",
    "RUMOR_SCHEMA",
    "GOSSIP_SCHEMA",
    "SUMMARY_MEMBER_SCHEMA",
    "ZONE_SUMMARY_SCHEMA",
    "encode_gossip",
    "decode_gossip",
    "encode_zone_summary",
    "decode_zone_summary",
]
