"""Control-plane message schemas and directory records.

Announce/heartbeat payloads are encoded with the middleware's own type
system — the control plane eats the same dog food as application data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.encoding.compiled import CompiledCodec
from repro.encoding.types import (
    FLOAT64,
    STRING,
    UINT16,
    UINT32,
    UINT64,
    StructType,
    VectorType,
)
from repro.simnet.addressing import Address

# Control-plane frames use the compiled binary codec: same bytes as the
# reference BinaryCodec, from flat precompiled pack/unpack plans.
_CODEC = CompiledCodec()

# -- offer schemas -----------------------------------------------------------

VAR_OFFER_SCHEMA = StructType(
    "VarOffer",
    [
        ("name", STRING),
        ("datatype", STRING),  # C-like description, parse_type-compatible
        ("validity", FLOAT64),  # seconds a sample stays usable (0 = forever)
        ("period", FLOAT64),  # nominal publication period (0 = aperiodic)
    ],
)

EVENT_OFFER_SCHEMA = StructType(
    "EventOffer",
    [("name", STRING), ("datatype", STRING)],
)

FUNC_OFFER_SCHEMA = StructType(
    "FuncOffer",
    [
        ("name", STRING),
        ("params", VectorType(STRING)),  # one C-like description per parameter
        ("result", STRING),  # "" for void
    ],
)

FILE_OFFER_SCHEMA = StructType(
    "FileOffer",
    [
        ("name", STRING),
        ("revision", UINT32),
        ("size", UINT64),
        ("chunk_size", UINT32),
    ],
)

ANNOUNCE_SCHEMA = StructType(
    "Announce",
    [
        ("container", STRING),
        ("node", STRING),
        ("port", UINT16),
        ("incarnation", UINT32),
        ("services", VectorType(STRING)),
        #: Services currently FAILED (escalated or awaiting restart) — the
        #: §3 "changes in the services status" notification, so peers can
        #: distinguish a withdrawn offer from a failed provider.
        ("failed_services", VectorType(STRING)),
        ("variables", VectorType(VAR_OFFER_SCHEMA)),
        ("events", VectorType(EVENT_OFFER_SCHEMA)),
        ("functions", VectorType(FUNC_OFFER_SCHEMA)),
        ("files", VectorType(FILE_OFFER_SCHEMA)),
    ],
)

HEARTBEAT_SCHEMA = StructType(
    "Heartbeat",
    [
        ("container", STRING),
        ("node", STRING),
        ("port", UINT16),
        ("incarnation", UINT32),
        ("load", UINT32),
        #: Total restart attempts made by this container's supervisor — a
        #: cheap cross-domain health signal (a climbing counter means a
        #: crash-looping service).
        ("restarts", UINT32),
    ],
)

BYE_SCHEMA = StructType("Bye", [("container", STRING)])


def encode_announce(doc: dict) -> bytes:
    return _CODEC.encode(ANNOUNCE_SCHEMA, doc)


def decode_announce(payload: bytes) -> dict:
    return _CODEC.decode(ANNOUNCE_SCHEMA, payload)


def encode_heartbeat(doc: dict) -> bytes:
    return _CODEC.encode(HEARTBEAT_SCHEMA, doc)


def decode_heartbeat(payload: bytes) -> dict:
    return _CODEC.decode(HEARTBEAT_SCHEMA, payload)


def encode_bye(container: str) -> bytes:
    return _CODEC.encode(BYE_SCHEMA, {"container": container})


def decode_bye(payload: bytes) -> str:
    return _CODEC.decode(BYE_SCHEMA, payload)["container"]


# -- directory records --------------------------------------------------------


@dataclass
class ContainerRecord:
    """Everything the local container knows about a remote one.

    This is the "proxy cache for the services it contains" (§3): a cached,
    possibly stale view refreshed by announces and heartbeats.
    """

    container: str
    address: Address
    incarnation: int
    services: List[str] = field(default_factory=list)
    failed_services: List[str] = field(default_factory=list)
    variables: Dict[str, dict] = field(default_factory=dict)  # name -> VarOffer
    events: Dict[str, dict] = field(default_factory=dict)
    functions: Dict[str, dict] = field(default_factory=dict)
    files: Dict[str, dict] = field(default_factory=dict)
    last_seen: float = 0.0
    load: int = 0
    #: Cumulative supervisor restart attempts reported via heartbeat.
    restarts: int = 0
    alive: bool = True
    #: Set on BYE: stale in-flight heartbeats of the same incarnation must
    #: not resurrect the record.
    said_bye: bool = False

    @classmethod
    def from_announce(cls, doc: dict, now: float) -> "ContainerRecord":
        return cls(
            container=doc["container"],
            address=Address(doc["node"], doc["port"]),
            incarnation=doc["incarnation"],
            services=list(doc["services"]),
            failed_services=list(doc.get("failed_services", [])),
            variables={v["name"]: v for v in doc["variables"]},
            events={e["name"]: e for e in doc["events"]},
            functions={f["name"]: f for f in doc["functions"]},
            files={f["name"]: f for f in doc["files"]},
            last_seen=now,
        )


__all__ = [
    "ContainerRecord",
    "ANNOUNCE_SCHEMA",
    "HEARTBEAT_SCHEMA",
    "BYE_SCHEMA",
    "VAR_OFFER_SCHEMA",
    "EVENT_OFFER_SCHEMA",
    "FUNC_OFFER_SCHEMA",
    "FILE_OFFER_SCHEMA",
    "encode_announce",
    "decode_announce",
    "encode_heartbeat",
    "decode_heartbeat",
    "encode_bye",
    "decode_bye",
]
