"""The Service Container.

One per node (§3). Owns the PEPt stack (codec → protocol links → frame
transport), the pluggable scheduler, the name directory and the four
primitive managers; hosts and watches the services installed on this node.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.container.config import ContainerConfig
from repro.container.directory import Directory
from repro.container.egress import DEFAULT_BANDS, EgressShaper
from repro.container.gossip import FleetCoordinator
from repro.container.lifecycle import ServiceRecord, ServiceState
from repro.container.links import ReliableLinks, TcpLinks
from repro.container.records import (
    ContainerRecord,
    decode_announce,
    decode_bye,
    decode_heartbeat,
    encode_announce,
    encode_bye,
    encode_heartbeat,
)
from repro.container.resources import ResourceManager
from repro.analysis.sanitizers.payload import PayloadSanitizer
from repro.container.supervisor import RestartPolicy, ServiceSupervisor
from repro.encoding.codec import get_codec
from repro.observability.metrics import MetricsRegistry
from repro.observability.probes import ProbeBus
from repro.observability.recorder import FlightRecorder
from repro.observability.trace import Tracer
from repro.primitives.events import EventManager
from repro.primitives.filetransfer import FileTransferManager
from repro.primitives.invocation import InvocationManager
from repro.primitives.variables import VariableManager
from repro.primitives import wire
from repro.protocol.admission import AdmissionController, IngressScheduler
from repro.protocol.frames import Frame, FrameFlags, MessageKind
from repro.sched.model import SimScheduler
from repro.sched.policies import make_policy
from repro.simnet.addressing import BACKBONE_GROUP, Address, GroupName
from repro.transport.frame_transport import FrameTransport
from repro.util.clock import Clock
from repro.util.errors import (
    ConfigurationError,
    EncodingError,
    ProtocolError,
    ServiceError,
)
from repro.util.rng import SeededRng

#: Frame kinds the container treats as control plane (processed inline,
#: before the scheduler).
_CONTROL_KINDS = {
    MessageKind.ANNOUNCE,
    MessageKind.HEARTBEAT,
    MessageKind.BYE,
    MessageKind.GOSSIP,
    MessageKind.ZONE_SUMMARY,
}


class ServiceContainer:
    """The middleware runtime on one node.

    Parameters
    ----------
    config:
        All tunables (:class:`ContainerConfig`).
    clock:
        Time source shared with the runtime.
    timers:
        Anything with ``schedule(delay, fn) -> cancellable handle``; the
        simulation runtime passes its :class:`~repro.sim.Simulator`.
    transport:
        The PEPt Transport plug-in, already bound to this node.
    rng:
        Seeded stream for supervision jitter; the simulation runtime passes
        a fork of the experiment seed so runs stay bit-reproducible. When
        omitted, a stream derived from the container id is used.
    """

    def __init__(
        self,
        config: ContainerConfig,
        clock: Clock,
        timers,
        transport: FrameTransport,
        rng: Optional[SeededRng] = None,
    ):
        self._config = config
        self._clock = clock
        self._timers = timers
        self._transport = transport
        self._codec = get_codec(config.codec)
        self._running = False
        self._incarnation = 0
        # Per-peer reliable-stream epoch: bumped whenever the peer's link
        # state is torn down (death/restart), i.e. whenever the dedup
        # window restarts. The reliable.deliver probe keys on it so
        # exactly-once specs match the link layer's actual dedup scope —
        # a restarted peer legitimately reuses sequence numbers.
        self._peer_epochs: Dict[str, int] = {}
        self._announce_pending = False
        self._periodic_handles: List[object] = []

        # Observability: tracer (no-op unless enabled), unified metrics,
        # bounded flight recorder. Created before anything that counts.
        self.tracer = Tracer(
            config.container_id, clock, enabled=config.tracing_enabled
        )
        self.metrics = MetricsRegistry()
        self.recorder = FlightRecorder(
            clock, capacity=config.flight_recorder_capacity
        )
        # Monitor-probe stream: dormant (one bool read per emit site) until a
        # runtime-verification monitor subscribes. Wire-inert either way.
        self.probes = ProbeBus(config.container_id, clock)
        self.payload_sanitizer = PayloadSanitizer(
            mode=config.payload_sanitizer,
            recorder=self.recorder,
            metrics=self.metrics,
            strict=config.payload_sanitizer_strict,
        )
        self._tx_counters: Dict[MessageKind, object] = {}
        self._rx_counters: Dict[MessageKind, object] = {}
        self._retransmit_counter = self.metrics.counter("retransmits")

        self.directory = Directory(
            clock=clock,
            local_container=config.container_id,
            liveness_timeout=config.liveness_timeout,
            # At fleet scale, reads must never serve a record past its
            # liveness timeout even between housekeeping sweeps.
            strict_liveness_reads=config.fleet.enabled,
        )
        #: The control group we announce on: domain-wide by default, the
        #: zone's group in a federated fleet.
        self._control_group = config.fleet.control_group()
        #: Gossip/federation driver; None on the (default) seed path.
        self.fleet = (
            FleetCoordinator(
                self, rng=rng.fork("gossip") if rng is not None else None
            )
            if config.fleet.enabled
            else None
        )
        self.scheduler = SimScheduler(
            timers=timers,
            clock=clock,
            policy=make_policy(config.scheduler_policy),
            cpu=config.cpu_model,
            on_error=self._on_task_error,
            record=config.scheduler_record,
        )
        self.resources = ResourceManager(config.resource_limits)
        self.egress = EgressShaper(
            clock=clock,
            timers=timers,
            send=self._transport.send,
            rate_bps=config.egress_rate_bps,
            batching=config.batching_enabled,
            batch_mtu=config.batch_mtu_bytes,
            batch_flush_interval=config.batch_flush_interval,
            source=config.container_id,
            piggyback=self._piggyback_acks,
            queue_limit=config.egress_queue_limit,
            overflow_policy=config.egress_overflow_policy,
            overflow_policies=config.egress_overflow_policies,
            on_overflow=self._on_egress_overflow,
            metrics=self.metrics,
            # Scatter-capable transports (the async UDP data plane) take
            # batches as unjoined buffer lists all the way to the socket.
            zero_copy=transport.supports_scatter,
        )
        self.admission = AdmissionController(
            clock=clock,
            classify=self._band_of,
            policy=config.admission,
            metrics=self.metrics,
            recorder=self.recorder,
        )
        self._ingress: Optional[IngressScheduler] = None
        self._abuse_logged: Dict[str, float] = {}
        self._transport.set_protocol_error_handler(self._on_protocol_error)
        self.links = ReliableLinks(
            clock=clock,
            timers=timers,
            local=config.container_id,
            send_to_peer=self._send_frame_to_peer,
            deliver=self._dispatch_reliable,
            on_peer_failure=self._on_link_failure,
            policy=config.retransmit,
            ack_delay=config.ack_coalesce_delay,
            ack_max_pending=config.ack_coalesce_max_pending,
            on_peer_slow=self._on_peer_slow,
            hardening=config.reliability_hardening,
            on_peer_abuse=self._on_peer_abuse,
        )
        self.tcp_links = TcpLinks(
            clock=clock,
            timers=timers,
            local=config.container_id,
            send_to_peer=self._send_frame_to_peer,
            deliver=self._on_tcp_event_payload,
        )
        self.variables = VariableManager(self)
        self.events = EventManager(self)
        self.invocations = InvocationManager(self)
        self.files = FileTransferManager(self)
        self._services: Dict[str, ServiceRecord] = {}
        self.supervisor = ServiceSupervisor(self, rng=rng)
        #: Per-container runtime-verification engine; armed lazily at
        #: start() when ``config.verification`` asks for it (or externally
        #: by a fleet-wide verify.FleetMonitor, which leaves this None).
        self.monitor = None
        self._monitor_tap = None
        self._emergency_handlers: List[Callable[[str], None]] = []
        self.emergencies: List[str] = []

        # Directory events rewire the primitives (§3: cache clear/update).
        self.directory.on_container_up(self._on_container_up)
        self.directory.on_container_down(self._on_container_down)
        self.directory.on_container_restart(self._on_container_restart)
        # Offers can appear after first contact (a heartbeat may beat the
        # announce, or a provider adds services later); re-run the rebind.
        self.directory.on_offers_changed(self._on_container_up)

    # -- identity and plumbing accessors (PrimitiveHost protocol) -------------
    @property
    def id(self) -> str:
        return self._config.container_id

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def timers(self):
        return self._timers

    @property
    def codec(self):
        return self._codec

    @property
    def config(self) -> ContainerConfig:
        return self._config

    @property
    def running(self) -> bool:
        return self._running

    def submit(self, label: str, fn: Callable[[], None]) -> None:
        # Deferred work inherits the causal context active at submit time,
        # so spans opened inside the task chain to the message (or call)
        # that scheduled it — the cross-container propagation mechanism.
        if self.tracer.enabled and self.tracer.current is not None:
            context = self.tracer.current

            def traced():
                with self.tracer.activate(context):
                    fn()

            self.scheduler.submit(label, traced)
            return
        self.scheduler.submit(label, fn)

    # -- frame plumbing ----------------------------------------------------------
    def _note_tx(self, frame: Frame) -> None:
        counter = self._tx_counters.get(frame.kind)
        if counter is None:
            counter = self._tx_counters[frame.kind] = self.metrics.counter(
                "frames_sent", kind=frame.kind.name
            )
        counter.inc()
        if frame.flags & int(FrameFlags.RETRANSMIT):
            self._retransmit_counter.inc()
        self.recorder.record(
            "tx", kind=frame.kind.name, seq=frame.seq, bytes=len(frame.payload)
        )

    def _note_rx(self, frame: Frame) -> None:
        counter = self._rx_counters.get(frame.kind)
        if counter is None:
            counter = self._rx_counters[frame.kind] = self.metrics.counter(
                "frames_received", kind=frame.kind.name
            )
        counter.inc()
        self.recorder.record(
            "rx",
            kind=frame.kind.name,
            source=frame.source,
            seq=frame.seq,
            bytes=len(frame.payload),
        )

    def send_unicast(self, peer: str, frame: Frame) -> bool:
        if peer == self.id:
            self._dispatch(frame)
            return True
        if not self._running:
            return False
        address = self.directory.address_of(peer)
        if address is None:
            return False
        self._note_tx(frame)
        self.egress.send(address, frame)
        return True

    def send_reliable(self, peer: str, kind: MessageKind, payload: bytes) -> None:
        if peer == self.id:
            # Local reliable delivery is trivially guaranteed.
            self._dispatch_reliable(
                Frame(kind=kind, source=self.id, payload=payload, channel=0)
            )
            return
        self.links.send(peer, kind, payload)

    def send_tcp_stream(self, peer: str, payload: bytes) -> None:
        if peer == self.id:
            self._on_tcp_event_payload(peer, payload)
            return
        self.tcp_links.send(peer, payload)

    def send_group(self, group: GroupName, frame: Frame) -> None:
        if not self._running:
            return
        self._note_tx(frame)
        self.egress.send(group, frame)

    def join_group(self, group: GroupName) -> None:
        self._transport.join(group)

    def leave_group(self, group: GroupName) -> None:
        self._transport.leave(group)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Open the transport, join the control group, start discovery."""
        if self._running:
            raise ConfigurationError(f"container {self.id} already started")
        self._incarnation += 1
        self._transport.open(self._config.port, self._on_frame)
        self._transport.join(self._control_group)
        if self._config.fleet.backbone_member:
            self._transport.join(BACKBONE_GROUP)
        self._running = True
        self._send_announce()
        self._periodic_handles = [
            self._every(self._config.announce_interval, self._periodic_announce),
            self._every(self._config.heartbeat_interval, self._send_heartbeat),
            self._every(self._config.housekeeping_interval, self._housekeeping),
        ]
        if self.fleet is not None:
            self._periodic_handles.extend(self.fleet.start())
        if self._config.verification != "off" and self.monitor is None:
            # Lazy import: repro.verify consumes container types; the
            # config knob must not make every container pay the import.
            from repro.verify.library import standard_specs
            from repro.verify.monitor import ContainerTap, MonitorEngine

            self.monitor = MonitorEngine(standard_specs())
            self._monitor_tap = ContainerTap(self, self.monitor)
        for record in list(self._services.values()):
            if record.state == ServiceState.INSTALLED:
                self._start_service(record)
            elif (
                record.state == ServiceState.STOPPED
                and self.supervisor.policy_for(record.name).mode == "always"
            ):
                # "always" means up whenever the container is.
                self._start_service(record)

    def stop(self) -> None:
        """Stop services, say BYE, close the transport."""
        if not self._running:
            return
        self.supervisor.cancel_all()
        for record in list(self._services.values()):
            if record.is_running:
                self._stop_service(record)
        bye_payload = encode_bye(self.id)
        self.send_group(
            self._control_group,
            Frame(kind=MessageKind.BYE, source=self.id, payload=bye_payload),
        )
        if self.fleet is not None and self._config.fleet.gossip_enabled:
            # The zone hears the multicast BYE; gossip carries it to the
            # rest of the fleet before the transport goes away.
            self.fleet.emit_bye(bye_payload)
            self.fleet.flush()
        # The BYE (and anything else batched) must leave before the
        # transport closes underneath the egress stage.
        self.egress.flush()
        for handle in self._periodic_handles:
            if hasattr(handle, "cancel"):
                handle.cancel()
        self._periodic_handles = []
        self._transport.close()
        self._running = False
        if self.payload_sanitizer.enabled:
            # Final aliasing checkpoint: catch mutations after the last
            # publish of each payload before the evidence goes away.
            self.payload_sanitizer.verify_all()

    # -- service management (§3) -------------------------------------------------
    def install_service(
        self, service, restart_policy: Optional[RestartPolicy] = None
    ) -> ServiceRecord:
        """Register a service with this container; started with the
        container (or immediately if the container is already running).
        ``restart_policy`` overrides the container's default supervision."""
        name = service.name
        if name in self._services:
            raise ConfigurationError(f"service {name!r} already installed")
        record = ServiceRecord(name=name, service=service)
        self._services[name] = record
        self.supervisor.register(name, restart_policy)
        service._attach(self, record)
        if self._running:
            self._start_service(record)
        return record

    def start_service(self, name: str) -> None:
        """Operator start: also forgives escalation and restart history."""
        record = self._require_service(name)
        if record.is_running:
            return
        record.escalated = False
        self.supervisor.reset(name)
        self._start_service(record)

    def stop_service(self, name: str) -> None:
        record = self._require_service(name)
        self.supervisor.cancel(name)
        if record.is_running:
            self._stop_service(record)
            # An "always" policy treats any stop-while-container-runs as a
            # condition to heal (the service should track container uptime).
            self.supervisor.on_stopped(record)

    def uninstall_service(self, name: str) -> None:
        """Stop (if needed) and remove a service from this container."""
        record = self._require_service(name)
        self.supervisor.forget(name)
        if record.is_running:
            self._stop_service(record)
        del self._services[name]
        self.announce_soon()

    def service_record(self, name: str) -> Optional[ServiceRecord]:
        return self._services.get(name)

    def service_state(self, name: str) -> ServiceState:
        return self._require_service(name).state

    def services(self) -> List[ServiceRecord]:
        return sorted(self._services.values(), key=lambda r: r.name)

    def service_failed(self, name: str, reason: str) -> None:
        """Mark a service failed, withdraw its provisions, notify the domain.

        Called by :class:`ServiceContext` when a service callback raises —
        the container "watch[es] for their correct operation and notif[ies]
        the rest of containers about changes in the services status". The
        supervisor then heals it per its restart policy.
        """
        record = self._services.get(name)
        if record is None or not record.can_fail:
            # Already failed, or a late guarded callback fired after the
            # service stopped — nothing left to tear down.
            return
        record.fail(reason)
        self.metrics.counter("service_failures").inc()
        self.recorder.record("lifecycle", service=name, state="failed", reason=reason)
        self._withdraw_provisions(name)
        self.resources.release_all(name)
        context = getattr(record.service, "ctx", None)
        if context is not None:
            context.cancel_timers()
        self.announce_soon()
        self.supervisor.on_failure(record)

    def on_emergency(self, handler: Callable[[str], None]) -> None:
        """Register the programmed emergency procedure (§4.3)."""
        self._emergency_handlers.append(handler)

    def emergency(self, reason: str) -> None:
        self.emergencies.append(reason)
        self.metrics.counter("emergencies").inc()
        self.recorder.record("emergency", reason=reason)
        for handler in list(self._emergency_handlers):
            handler(reason)

    # -- discovery (§3 name management) --------------------------------------------
    def announce_soon(self) -> None:
        """Coalesce offer changes into one announce on the next tick."""
        if not self._running or self._announce_pending:
            return
        self._announce_pending = True
        self._timers.schedule(0.0, self._flush_announce)

    def _flush_announce(self) -> None:
        if self._announce_pending and self._running:
            self._announce_pending = False
            self._send_announce()

    def _announce_doc(self) -> dict:
        return {
            "container": self.id,
            "node": self._transport.node,
            "port": self._config.port,
            "incarnation": self._incarnation,
            "services": [r.name for r in self.services() if r.is_running],
            "failed_services": [
                r.name for r in self.services() if r.state == ServiceState.FAILED
            ],
            "variables": self.variables.offers(),
            "events": self.events.offers(),
            "functions": self.invocations.offers(),
            "files": self.files.offers(),
        }

    def _send_announce(self) -> None:
        """Event-driven announce (start, offer change): always multicast to
        the control group; in gossip mode also seeded as a rumor so it
        reaches beyond the multicast horizon."""
        payload = encode_announce(self._announce_doc())
        self.send_group(
            self._control_group,
            Frame(kind=MessageKind.ANNOUNCE, source=self.id, payload=payload),
        )
        if self.fleet is not None and self._config.fleet.gossip_enabled:
            self.fleet.emit_announce(payload)

    def _periodic_announce(self) -> None:
        """The steady-state announce refresh. In gossip mode it rides the
        rumor mill instead of multicast — that is the fan-out being replaced."""
        if self.fleet is not None and self._config.fleet.gossip_enabled:
            self.fleet.emit_announce(encode_announce(self._announce_doc()))
            return
        self._send_announce()

    def _send_heartbeat(self) -> None:
        doc = {
            "container": self.id,
            "node": self._transport.node,
            "port": self._config.port,
            "incarnation": self._incarnation,
            "load": min(self.scheduler.load, 0xFFFFFFFF),
            "restarts": min(self.supervisor.restarts_attempted, 0xFFFFFFFF),
        }
        payload = encode_heartbeat(doc)
        if self.fleet is not None and self._config.fleet.gossip_enabled:
            self.fleet.emit_heartbeat(payload)
            return
        self.send_group(
            self._control_group,
            Frame(kind=MessageKind.HEARTBEAT, source=self.id, payload=payload),
        )

    def _housekeeping(self) -> None:
        self.directory.check_liveness()
        self._transport.on_tick()

    def _every(self, interval: float, fn: Callable[[], None]):
        """A self-rescheduling periodic timer; returns a cancellable shim."""
        state = {"cancelled": False, "handle": None}

        def fire():
            if state["cancelled"] or not self._running:
                return
            fn()
            state["handle"] = self._timers.schedule(interval, fire)

        state["handle"] = self._timers.schedule(interval, fire)

        class _Handle:
            def cancel(self_inner):
                state["cancelled"] = True
                handle = state["handle"]
                if handle is not None and hasattr(handle, "cancel"):
                    handle.cancel()

        return _Handle()

    # -- inbound frame dispatch ----------------------------------------------------
    @staticmethod
    def _band_of(kind: MessageKind) -> int:
        return DEFAULT_BANDS.get(kind, 4)

    def _on_frame(self, frame: Frame, source_address: Address) -> None:
        if frame.source == self.id:
            return  # our own multicast loopback
        # Admission is the first gate: a dropped frame generates no ACK, no
        # dispatch, no scheduler work — nothing an attacker could amplify.
        if not self.admission.admit(frame, source_address):
            return
        self._note_rx(frame)
        if frame.kind in _CONTROL_KINDS:
            try:
                self._handle_control(frame)
            except (ProtocolError, EncodingError) as exc:
                self._note_malformed(frame, exc)
            return
        if self.admission.policy.ingress_scheduling:
            self._ingress_scheduler().offer(frame, self._band_of(frame.kind))
            return
        self._ingest_data(frame)

    def _ingress_scheduler(self) -> IngressScheduler:
        if self._ingress is None:
            policy = self.admission.policy
            self._ingress = IngressScheduler(
                timers=self._timers,
                deliver=self._ingest_data,
                weights=policy.ingress_weights,
                queue_limit=policy.ingress_queue_limit,
                metrics=self.metrics,
            )
        return self._ingress

    def _ingest_data(self, frame: Frame) -> None:
        """Admitted data frame → reliability layers or direct dispatch.

        Malformed payloads inside well-formed frames (the frame header
        parsed; the payload does not) surface here as ProtocolError or
        EncodingError from the primitive decoders. They are counted and fed
        to admission quarantine scoring — never allowed to crash ingress,
        never silently swallowed (REP005).
        """
        try:
            # Channel 0 is the best-effort data plane — the common case at
            # telemetry rates — and skips the reliability layers outright.
            if frame.channel != 0:
                # Reliability layers consume their channels (and emit acks).
                if self.links.on_frame(frame):
                    return
                if self.tcp_links.on_frame(frame):
                    return
            self._dispatch(frame)
        except (ProtocolError, EncodingError) as exc:
            self._note_malformed(frame, exc)

    def _note_malformed(self, frame: Frame, exc: Exception) -> None:
        self.admission.note_malformed(frame.source)
        self.recorder.record(
            "protocol-error",
            source=frame.source,
            kind=frame.kind.name,
            error=type(exc).__name__,
        )

    def _on_protocol_error(self, exc: Exception, source_address: Address) -> None:
        """Undecodable datagram: no trustworthy source id exists, so the
        quarantine score is keyed on the network address instead."""
        self.metrics.counter("malformed_datagrams").inc()
        self.admission.note_malformed_address(source_address)

    def _on_peer_abuse(self, peer: str, reason: str) -> None:
        """A reliability abuse defense fired against ``peer``."""
        self.metrics.counter("reliability_abuse", peer=peer, reason=reason).inc()
        # Counters carry volume; the bounded recorder gets one entry per
        # (peer, reason) per second at most.
        key = f"{peer}:{reason}"
        now = self._clock.now()
        if now - self._abuse_logged.get(key, -1.0) >= 1.0:
            self._abuse_logged[key] = now
            self.recorder.record("reliability-abuse", peer=peer, reason=reason)

    def _handle_control(self, frame: Frame) -> None:
        if frame.kind == MessageKind.ANNOUNCE:
            self.directory.handle_announce(decode_announce(frame.payload))
        elif frame.kind == MessageKind.HEARTBEAT:
            self.directory.handle_heartbeat(decode_heartbeat(frame.payload))
        elif frame.kind == MessageKind.BYE:
            self.directory.handle_bye(decode_bye(frame.payload))
        elif frame.kind == MessageKind.GOSSIP:
            if self.fleet is not None:
                self.fleet.on_gossip(frame)
        elif frame.kind == MessageKind.ZONE_SUMMARY:
            if self.fleet is not None:
                self.fleet.on_zone_summary(frame)

    def _dispatch_reliable(self, frame: Frame) -> None:
        """Ordered reliable frames, already deduplicated by the link layer."""
        if self.probes.enabled and frame.seq > 0:
            # seq 0 marks the local-loopback path, which never crosses the
            # dedup window — probing it would false-fire exactly-once specs.
            epoch = self._peer_epochs.get(frame.source, 0)
            self.probes.emit(
                "reliable.deliver",
                frame.kind.name.lower(),
                key=(frame.source, frame.channel, epoch, frame.seq),
                attrs={
                    "source": frame.source,
                    "channel": frame.channel,
                    "seq": frame.seq,
                    "epoch": epoch,
                },
            )
        self._dispatch(frame)

    def _dispatch(self, frame: Frame) -> None:
        kind = frame.kind
        if kind == MessageKind.VAR_SAMPLE:
            self.variables.on_sample_frame(frame)
        elif kind == MessageKind.VAR_INITIAL_REQUEST:
            self.variables.on_initial_request(frame)
        elif kind == MessageKind.VAR_INITIAL_RESPONSE:
            self.variables.on_initial_response(frame)
        elif kind == MessageKind.EVENT:
            self.events.on_event_frame(frame)
        elif kind == MessageKind.EVENT_SUBSCRIBE:
            self.events.on_subscribe_frame(frame)
        elif kind == MessageKind.RPC_REQUEST:
            self.invocations.on_request_frame(frame)
        elif kind == MessageKind.RPC_RESPONSE:
            self.invocations.on_response_frame(frame)
        elif kind == MessageKind.FILE_ANNOUNCE:
            self.files.on_announce_frame(frame)
        elif kind == MessageKind.FILE_SUBSCRIBE:
            self.files.on_subscribe_frame(frame)
        elif kind == MessageKind.FILE_CHUNK:
            self.files.on_chunk_frame(frame)
        elif kind == MessageKind.FILE_STATUS_REQUEST:
            self.files.on_status_request_frame(frame)
        elif kind == MessageKind.FILE_COMPLETION_ACK:
            self.files.on_completion_ack_frame(frame)
        elif kind == MessageKind.FILE_COMPLETION_NACK:
            self.files.on_completion_nack_frame(frame)
        # Unknown kinds are dropped silently: forward compatibility.

    def _on_tcp_event_payload(self, peer: str, payload: bytes) -> None:
        doc, trace = wire.decode_traced(wire.EVENT_MESSAGE_SCHEMA, payload)
        self.events.on_event_payload(peer, doc, trace)

    # -- directory reactions -------------------------------------------------------
    def _on_container_up(self, record: ContainerRecord) -> None:
        self.events.on_provider_up(record.container)
        self.files.on_provider_up(record.container)

    def _on_container_down(self, record: ContainerRecord) -> None:
        self._peer_epochs[record.container] = (
            self._peer_epochs.get(record.container, 0) + 1
        )
        self.links.reset_peer(record.container)
        self.tcp_links.reset_peer(record.container)
        self.events.on_subscriber_down(record.container)
        self.files.on_subscriber_down(record.container)
        self.invocations.on_provider_down(record.container)

    def _on_container_restart(self, record: ContainerRecord) -> None:
        self._peer_epochs[record.container] = (
            self._peer_epochs.get(record.container, 0) + 1
        )
        self.links.reset_peer(record.container)
        self.tcp_links.reset_peer(record.container)
        self.events.on_subscriber_down(record.container)
        # Re-subscribe to whatever the restarted container still offers.
        self.events.on_provider_up(record.container)
        self.files.on_provider_up(record.container)

    # -- internals -----------------------------------------------------------
    def _send_frame_to_peer(self, peer: str, frame: Frame) -> None:
        if not self._running:
            return  # late timer after stop(); nothing to send on
        address = self.directory.address_of(peer)
        if address is None:
            return  # peer unknown/dead; retransmission or failure will handle it
        self._note_tx(frame)
        self.egress.send(address, frame)

    def _piggyback_acks(self, destination) -> List[Frame]:
        """Pending coalesced ACKs for whoever lives at ``destination`` —
        the batcher's piggyback hook. Group sends carry no ACKs (ACKs are
        strictly unicast)."""
        if not isinstance(destination, Address):
            return []
        peer = self.directory.container_at(destination)
        if peer is None:
            return []
        ack = self.links.pending_ack_frame(peer)
        if ack is None:
            return []
        self._note_tx(ack)
        return [ack]

    def _on_peer_slow(self, peer: str, frame: Frame) -> None:
        """The bounded reliable backlog to ``peer`` overflowed — the peer is
        alive but consuming too slowly. Evict it from event subscriptions:
        guaranteed delivery must never silently drop, so a subscriber that
        cannot keep up loses its subscription instead (it can re-subscribe
        once healthy; variables are fresh-or-worthless and shed via the
        egress drop-oldest policy rather than here)."""
        self.metrics.counter("slow_peer_sheds", kind=frame.kind.name).inc()
        self.recorder.record(
            "backpressure", peer=peer, kind=frame.kind.name, action="evict"
        )
        evicted = self.events.evict_subscriber(peer)
        if evicted:
            self.recorder.record("backpressure", peer=peer, action="evicted")

    def _on_egress_overflow(self, destination, band: int, policy: str, frame: Frame) -> None:
        self.recorder.record(
            "backpressure",
            band=band,
            policy=policy,
            kind=frame.kind.name,
            action="egress-overflow",
        )

    def _on_link_failure(self, peer: str, frame: Frame) -> None:
        """A reliable frame exhausted its retries: the peer is unreachable.

        Declare it dead locally (faster than the heartbeat timeout) so the
        primitives rebind.
        """
        record = self.directory.record(peer)
        if record is not None and record.alive:
            self.directory.handle_bye(peer)

    def _on_task_error(self, label: str, exc: Exception) -> None:
        # A scheduler task without a service guard raised; surface loudly in
        # the emergency channel rather than dying silently.
        self.emergency(f"unhandled error in {label} task: {exc!r}")

    def _withdraw_provisions(self, service: str) -> None:
        self.variables.withdraw_service(service)
        self.variables.unsubscribe_service(service)
        self.events.withdraw_service(service)
        self.events.unsubscribe_service(service)
        self.invocations.withdraw_service(service)
        self.files.withdraw_service(service)
        self.files.unsubscribe_service(service)

    def _require_service(self, name: str) -> ServiceRecord:
        record = self._services.get(name)
        if record is None:
            raise ServiceError(f"no service {name!r} installed in container {self.id}")
        return record

    def _start_service(self, record: ServiceRecord) -> None:
        self.recorder.record("lifecycle", service=record.name, state="starting")
        record.transition(ServiceState.STARTING)
        try:
            record.service.on_start()
        except Exception as exc:  # noqa: BLE001 — startup fault isolates the service
            if record.can_fail:
                # Not already failed through the context guard.
                record.fail(f"on_start raised: {exc!r}")
                self.metrics.counter("service_failures").inc()
                self.recorder.record(
                    "lifecycle", service=record.name, state="failed",
                    reason=f"on_start raised: {exc!r}",
                )
                self._withdraw_provisions(record.name)
                self.announce_soon()
                self.supervisor.on_failure(record)
            return
        if record.state != ServiceState.STARTING:
            # on_start failed the service through its context guard.
            return
        record.transition(ServiceState.RUNNING)
        self.recorder.record("lifecycle", service=record.name, state="running")
        self.announce_soon()

    def _stop_service(self, record: ServiceRecord) -> None:
        self.recorder.record("lifecycle", service=record.name, state="stopping")
        record.transition(ServiceState.STOPPING)
        try:
            record.service.on_stop()
        except Exception as exc:  # noqa: BLE001
            record.fail(f"on_stop raised: {exc!r}")
        else:
            record.transition(ServiceState.STOPPED)
        context = getattr(record.service, "ctx", None)
        if context is not None:
            context.cancel_timers()
        self._withdraw_provisions(record.name)
        self.resources.release_all(record.name)
        self.announce_soon()


__all__ = ["ServiceContainer"]
