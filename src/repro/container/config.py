"""Container configuration.

One dataclass gathers every tunable so experiments can sweep them without
touching code. Defaults match a small switched-Ethernet UAV LAN.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.container.fleet import FleetConfig
from repro.container.resources import ResourceLimits
from repro.container.supervisor import RestartPolicy
from repro.protocol.admission import AdmissionPolicy
from repro.protocol.reliability import ReliabilityHardening, RetransmitPolicy
from repro.sched.model import CpuModel
from repro.util.errors import ConfigurationError

#: Port every container binds (one container per node, so one port suffices).
CONTAINER_PORT = 47000


@dataclass
class ContainerConfig:
    """All knobs of one service container."""

    container_id: str
    node: str
    port: int = CONTAINER_PORT

    # PEPt plug-in selection.
    codec: str = "binary"
    scheduler_policy: str = "fixed_priority"
    #: "udp_ack" (the paper's app-layer mechanism) or "tcp" (the baseline).
    event_mapping: str = "udp_ack"

    # Discovery and failure detection (§3 name management).
    announce_interval: float = 1.0
    heartbeat_interval: float = 0.25
    liveness_timeout: float = 1.0
    housekeeping_interval: float = 0.5

    # Fleet-scale discovery (repro.container.fleet). The default is inert:
    # flat control group, no gossip, no zone summaries — control traffic
    # stays packet-identical to the seed.
    fleet: FleetConfig = field(default_factory=FleetConfig)

    # Reliability.
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    #: Abuse defenses for the reliable streams (NACK budgets, ACK-flood
    #: rejection, replay windows). Disabled by default: the protocol stays
    #: byte/behavior-identical to the seed. The env default lets CI arm the
    #: defenses fleet-wide (REPRO_RELIABILITY_HARDENING=1).
    reliability_hardening: ReliabilityHardening = field(
        default_factory=lambda: ReliabilityHardening(
            enabled=os.environ.get("REPRO_RELIABILITY_HARDENING", "") == "1"
        )
    )

    # Ingress admission control (repro.protocol.admission). Disabled by
    # default: frames reach dispatch exactly as in the seed. The env
    # default (REPRO_ADMISSION=1) arms the default policy fleet-wide.
    admission: AdmissionPolicy = field(
        default_factory=lambda: AdmissionPolicy(
            enabled=os.environ.get("REPRO_ADMISSION", "") == "1"
        )
    )

    # Supervision (§3 "watching for their correct operation"). The default
    # mode is "never" — failures are recorded but nothing auto-restarts —
    # matching the paper's passive watcher; per-service policies can be
    # passed to ``install_service``.
    restart_policy: RestartPolicy = field(
        default_factory=lambda: RestartPolicy(mode="never")
    )

    # Variables (§4.1).
    #: Subscriber warns after this many nominal periods without a sample.
    variable_timeout_periods: float = 3.0

    # Remote invocation (§4.3).
    call_timeout: float = 1.0
    #: "static" | "round_robin" | "least_loaded"
    call_binding: str = "round_robin"
    #: Automatic re-routes of a failed call before giving up.
    call_max_redirects: int = 2

    # File transmission (§4.4).
    #: False switches the transfer phase to per-subscriber unicast — the
    #: baseline experiment E4 compares multicast against.
    file_multicast: bool = True
    file_chunk_size: int = 1024
    #: Gap between successive chunk multicasts (paces the bulk stream).
    file_chunk_interval: float = 0.0002
    #: How long the publisher waits for completion ACK/NACKs per round.
    file_status_timeout: float = 0.05
    #: Retransmission rounds before stragglers are dropped.
    file_max_rounds: int = 50

    # Egress shaping — the §4.2/§7 network-reservation extension. ``None``
    # disables it (the paper's baseline); a bits-per-second value slightly
    # below the uplink rate makes outbound traffic queue *inside* the
    # container, where priority bands apply.
    egress_rate_bps: Optional[float] = None
    #: Bound on each (destination, band) egress queue while shaping;
    #: ``None`` keeps the seed's unbounded queues.
    egress_queue_limit: Optional[int] = None
    #: Overflow policy when a bounded egress queue is full:
    #: "block" | "drop-oldest" | "drop-newest".
    egress_overflow_policy: str = "drop-oldest"
    #: Per-band overrides of the overflow policy, band index → policy.
    egress_overflow_policies: Optional[Dict[int, str]] = None

    # Datagram batching (off by default: the wire stays byte-for-byte the
    # seed format). When on, small frames to the same destination share one
    # BATCH datagram up to ``batch_mtu_bytes``, held at most
    # ``batch_flush_interval`` seconds.
    batching_enabled: bool = False
    batch_mtu_bytes: int = 1200
    batch_flush_interval: float = 0.002
    #: Delay-and-merge window for ACKs on the reliable channel; 0 keeps the
    #: seed's one-ACK-per-frame behavior.
    ack_coalesce_delay: float = 0.0
    #: Pending-seq cap that forces an early coalesced-ACK flush.
    ack_coalesce_max_pending: int = 64

    # Observability. Tracing is off by default: untraced frames stay
    # byte-identical to the pre-tracing wire format and the hot path pays
    # nothing. The flight recorder always runs (bounded memory).
    tracing_enabled: bool = False
    flight_recorder_capacity: int = 256

    # Debug sanitizers (repro.analysis.sanitizers). "off" keeps the data
    # path byte/behavior-identical; "checksum" detects post-publish payload
    # mutation at the next checkpoint; "freeze" hands local subscribers
    # deep-frozen copies so mutation raises at the mutation site. The env
    # default lets CI turn the sanitizer on for a whole test run without
    # touching code (REPRO_PAYLOAD_SANITIZER=checksum).
    payload_sanitizer: str = field(
        default_factory=lambda: os.environ.get("REPRO_PAYLOAD_SANITIZER", "off")
    )
    #: Strict mode raises PayloadMutationError instead of only recording.
    payload_sanitizer_strict: bool = False

    # Runtime verification (repro.verify). "off" keeps the probe stream
    # dormant (one bool read per emit site); "standard" arms the shipped
    # middleware-contract specs on this container at start(). Fleet-level
    # monitoring (cross-container specs, one merged verdict) instead goes
    # through SimRuntime.enable_verification / verify.FleetMonitor. The env
    # default lets CI arm every container (REPRO_VERIFY=standard).
    verification: str = field(
        default_factory=lambda: os.environ.get("REPRO_VERIFY", "off")
    )

    # Scheduling.
    cpu_model: CpuModel = field(default_factory=CpuModel)
    scheduler_record: bool = False

    # Resources.
    resource_limits: ResourceLimits = field(default_factory=ResourceLimits)

    def __post_init__(self) -> None:
        if self.event_mapping not in ("udp_ack", "tcp"):
            raise ConfigurationError(
                f"event_mapping must be 'udp_ack' or 'tcp', got {self.event_mapping!r}"
            )
        if self.call_binding not in ("static", "round_robin", "least_loaded"):
            raise ConfigurationError(f"unknown call binding {self.call_binding!r}")
        if self.heartbeat_interval >= self.liveness_timeout:
            raise ConfigurationError(
                "liveness_timeout must exceed heartbeat_interval or every "
                "container flaps dead"
            )
        if self.file_chunk_size <= 0:
            raise ConfigurationError("file_chunk_size must be positive")
        if self.flight_recorder_capacity < 1:
            raise ConfigurationError("flight_recorder_capacity must be >= 1")
        policies = [self.egress_overflow_policy]
        policies.extend((self.egress_overflow_policies or {}).values())
        for policy in policies:
            if policy not in ("block", "drop-oldest", "drop-newest"):
                raise ConfigurationError(f"unknown egress overflow policy {policy!r}")
        if self.egress_queue_limit is not None and self.egress_queue_limit < 1:
            raise ConfigurationError("egress_queue_limit must be >= 1")
        if self.batch_mtu_bytes < 64:
            raise ConfigurationError("batch_mtu_bytes must be >= 64")
        if self.batch_flush_interval <= 0:
            raise ConfigurationError("batch_flush_interval must be positive")
        if self.ack_coalesce_delay < 0:
            raise ConfigurationError("ack_coalesce_delay must be >= 0")
        if self.ack_coalesce_max_pending < 1:
            raise ConfigurationError("ack_coalesce_max_pending must be >= 1")
        if self.payload_sanitizer not in ("off", "checksum", "freeze"):
            raise ConfigurationError(
                f"payload_sanitizer must be 'off', 'checksum' or 'freeze', "
                f"got {self.payload_sanitizer!r}"
            )
        if self.verification not in ("off", "standard"):
            raise ConfigurationError(
                f"verification must be 'off' or 'standard', "
                f"got {self.verification!r}"
            )


__all__ = ["ContainerConfig", "CONTAINER_PORT"]
