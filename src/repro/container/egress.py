"""Priority egress shaping — the §4.2/§7 network-reservation extension.

The paper notes that for events "reservation of time slots in both the
processor and the network will ensure this critical constraint" and defers
real-time support to future work. The processor half is the scheduler's
fixed priorities; this module is the network half: an optional egress stage
that classifies outbound frames into priority bands and drains them through
a token bucket. With shaping enabled, a saturating file transfer can no
longer queue hundreds of chunks ahead of an event on the node's uplink —
the event jumps the (container-side) queue.

Disabled by default (``ContainerConfig.egress_rate_bps = None``): frames
pass straight through, preserving the paper's baseline behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.protocol.frames import Frame, MessageKind
from repro.simnet.packet import WIRE_OVERHEAD_BYTES, Destination
from repro.util.clock import Clock

#: Frame kind → priority band (lower = more urgent). Mirrors the
#: scheduler's per-primitive priorities (§6).
DEFAULT_BANDS: Dict[MessageKind, int] = {
    # Control plane: failure detection must never starve.
    MessageKind.ANNOUNCE: 0,
    MessageKind.HEARTBEAT: 0,
    MessageKind.BYE: 0,
    MessageKind.ACK: 0,
    # Events are the latency-critical class (§4.2).
    MessageKind.EVENT: 1,
    MessageKind.EVENT_SUBSCRIBE: 1,
    MessageKind.EVENT_UNSUBSCRIBE: 1,
    # Variables are fresh-or-worthless.
    MessageKind.VAR_SAMPLE: 2,
    MessageKind.VAR_INITIAL_REQUEST: 2,
    MessageKind.VAR_INITIAL_RESPONSE: 2,
    # Invocations can queue briefly.
    MessageKind.RPC_REQUEST: 3,
    MessageKind.RPC_RESPONSE: 3,
    MessageKind.STREAM_SYN: 3,
    MessageKind.STREAM_SYNACK: 3,
    MessageKind.STREAM_SEGMENT: 3,
    MessageKind.STREAM_ACK: 3,
    # Bulk transfer is background work.
    MessageKind.FILE_ANNOUNCE: 4,
    MessageKind.FILE_SUBSCRIBE: 4,
    MessageKind.FILE_CHUNK: 4,
    MessageKind.FILE_STATUS_REQUEST: 4,
    MessageKind.FILE_COMPLETION_ACK: 4,
    MessageKind.FILE_COMPLETION_NACK: 4,
    MessageKind.FILE_DONE: 4,
    MessageKind.FRAGMENT: 3,
}

_NUM_BANDS = 5

SendFn = Callable[[Destination, Frame], None]


class EgressShaper:
    """Token-bucket paced, strict-priority egress queue.

    Parameters
    ----------
    rate_bps:
        Token refill rate in bits/second — set this slightly *below* the
        physical uplink rate so the queue forms here (where priorities
        apply) instead of in the NIC (where they don't). ``None`` disables
        shaping entirely.
    burst_bytes:
        Bucket depth; one MTU by default so a single frame never stalls.
    """

    def __init__(
        self,
        clock: Clock,
        timers,
        send: SendFn,
        rate_bps: Optional[float] = None,
        burst_bytes: int = 1600,
        bands: Optional[Dict[MessageKind, int]] = None,
    ):
        self._clock = clock
        self._timers = timers
        self._send = send
        self._rate_bps = rate_bps
        self._burst = float(burst_bytes)
        self._bands = dict(DEFAULT_BANDS if bands is None else bands)
        self._queues: List[Deque[Tuple[Destination, Frame, int]]] = [
            deque() for _ in range(_NUM_BANDS)
        ]
        self._tokens = self._burst
        self._last_refill = clock.now()
        self._drain_timer = None
        # Telemetry.
        self.shaped_frames = 0
        self.passthrough_frames = 0
        self.max_queue_depth = 0

    @property
    def enabled(self) -> bool:
        return self._rate_bps is not None

    #: Tolerance for float rounding in token arithmetic (bytes).
    _EPSILON = 1e-9

    def send(self, destination: Destination, frame: Frame) -> None:
        """Send now if tokens allow, else queue by priority band.

        Frames larger than the burst use deficit accounting: they send once
        the bucket is full and drive it negative, so the long-run rate
        stays exact and oversized frames still make progress.
        """
        if not self.enabled:
            self.passthrough_frames += 1
            self._send(destination, frame)
            return
        size = self._frame_size(frame)
        self._refill()
        if self._tokens + self._EPSILON >= min(size, self._burst) and not self._pending():
            self._tokens -= size
            self._send(destination, frame)
            return
        band = self._bands.get(frame.kind, _NUM_BANDS - 1)
        self._queues[band].append((destination, frame, size))
        self.shaped_frames += 1
        self.max_queue_depth = max(self.max_queue_depth, self._pending())
        self._arm_drain()

    @property
    def queued(self) -> int:
        return self._pending()

    # -- internals -----------------------------------------------------------
    def _pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def _frame_size(self, frame: Frame) -> int:
        return frame.header_size + len(frame.payload) + WIRE_OVERHEAD_BYTES

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last_refill
        self._last_refill = now
        if elapsed > 0:
            self._tokens = min(
                self._burst, self._tokens + elapsed * self._rate_bps / 8.0
            )

    def _arm_drain(self) -> None:
        if self._drain_timer is not None:
            return
        # Time until enough tokens exist for the most urgent queued frame.
        head = next(
            (q[0] for q in self._queues if q), None
        )
        if head is None:
            return
        required = min(head[2], self._burst)
        needed = max(0.0, required - self._tokens)
        if needed <= self._EPSILON:
            delay = 0.0
        else:
            # Floor the delay so float rounding can never produce a timer
            # that fires without advancing tokens (a zero-progress spin).
            delay = max(needed * 8.0 / self._rate_bps, 1e-6)
        self._drain_timer = self._timers.schedule(delay, self._drain)

    def _drain(self) -> None:
        self._drain_timer = None
        self._refill()
        while True:
            queue = next((q for q in self._queues if q), None)
            if queue is None:
                return
            destination, frame, size = queue[0]
            if self._tokens + self._EPSILON < min(size, self._burst):
                self._arm_drain()
                return
            queue.popleft()
            self._tokens -= size
            self._send(destination, frame)


__all__ = ["EgressShaper", "DEFAULT_BANDS"]
