"""Priority egress shaping and data-plane scaling — the §4.2/§7 extension.

The paper notes that for events "reservation of time slots in both the
processor and the network will ensure this critical constraint" and defers
real-time support to future work. The processor half is the scheduler's
fixed priorities; this module is the network half, a three-stage outbound
pipeline:

1. **Batching** (optional): small frames to the same destination are packed
   into one ``BATCH`` datagram per priority band, amortizing the fixed
   per-packet wire overhead (see :mod:`repro.protocol.batching`). A short
   flush deadline bounds the added latency; a batch never spans bands.
2. **Bounded queues** (optional): when shaping backs traffic up, each
   (destination, band) queue is capped at ``queue_limit`` frames with an
   explicit per-band overflow policy — ``block`` (refuse admission and
   signal backpressure), ``drop-oldest`` (shed the stalest frame, right for
   fresh-or-worthless variables) or ``drop-newest``. A slow subscriber can
   no longer grow queues without bound.
3. **Token bucket + strict priority** (optional): classifies outbound
   frames into priority bands and drains them through a token bucket, so a
   saturating file transfer cannot queue hundreds of chunks ahead of an
   event on the node's uplink.

Everything is disabled by default (``ContainerConfig.egress_rate_bps =
None``, ``batching_enabled = False``, ``egress_queue_limit = None``):
frames pass straight through and the wire stays byte-for-byte the paper's
baseline format. All shedding and batching activity is surfaced as labeled
counters in the container's :class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.protocol.batching import FrameBatcher, PiggybackFn
from repro.protocol.frames import Frame, MessageKind
from repro.simnet.packet import WIRE_OVERHEAD_BYTES, Destination
from repro.util.clock import Clock
from repro.util.errors import ConfigurationError

#: Frame kind → priority band (lower = more urgent). Mirrors the
#: scheduler's per-primitive priorities (§6).
DEFAULT_BANDS: Dict[MessageKind, int] = {
    # Control plane: failure detection must never starve.
    MessageKind.ANNOUNCE: 0,
    MessageKind.HEARTBEAT: 0,
    MessageKind.BYE: 0,
    # Gossip rumors and zone summaries *are* the control plane at fleet
    # scale — they carry the liveness everyone else times out against.
    MessageKind.GOSSIP: 0,
    MessageKind.ZONE_SUMMARY: 0,
    MessageKind.ACK: 0,
    # A NACK is a retransmit request: it repairs the reliable stream, so it
    # rides the control band with the ACKs it complements.
    MessageKind.NACK: 0,
    # Events are the latency-critical class (§4.2).
    MessageKind.EVENT: 1,
    MessageKind.EVENT_SUBSCRIBE: 1,
    MessageKind.EVENT_UNSUBSCRIBE: 1,
    # Variables are fresh-or-worthless.
    MessageKind.VAR_SAMPLE: 2,
    MessageKind.VAR_INITIAL_REQUEST: 2,
    MessageKind.VAR_INITIAL_RESPONSE: 2,
    # Invocations can queue briefly.
    MessageKind.RPC_REQUEST: 3,
    MessageKind.RPC_RESPONSE: 3,
    MessageKind.STREAM_SYN: 3,
    MessageKind.STREAM_SYNACK: 3,
    MessageKind.STREAM_SEGMENT: 3,
    MessageKind.STREAM_ACK: 3,
    # Bulk transfer is background work.
    MessageKind.FILE_ANNOUNCE: 4,
    MessageKind.FILE_SUBSCRIBE: 4,
    MessageKind.FILE_CHUNK: 4,
    MessageKind.FILE_STATUS_REQUEST: 4,
    MessageKind.FILE_COMPLETION_ACK: 4,
    MessageKind.FILE_COMPLETION_NACK: 4,
    MessageKind.FILE_DONE: 4,
    MessageKind.FRAGMENT: 3,
    # A batch inherits the band it was accumulated under; this entry is
    # only the fallback for batches injected from outside the batcher.
    MessageKind.BATCH: 1,
}

_NUM_BANDS = 5

#: Admissible overflow policies for a bounded (destination, band) queue.
OVERFLOW_POLICIES = ("block", "drop-oldest", "drop-newest")

SendFn = Callable[[Destination, Frame], None]
#: Overflow callback: (destination, band, policy, affected frame).
OverflowFn = Callable[[Destination, int, str, Frame], None]


class EgressShaper:
    """Batching + bounded-queue + token-bucket egress stage.

    Parameters
    ----------
    rate_bps:
        Token refill rate in bits/second — set this slightly *below* the
        physical uplink rate so the queue forms here (where priorities
        apply) instead of in the NIC (where they don't). ``None`` disables
        shaping entirely.
    burst_bytes:
        Bucket depth; one MTU by default so a single frame never stalls.
    batching / batch_mtu / batch_flush_interval / source / piggyback:
        Datagram batching stage (see :class:`FrameBatcher`). ``source`` is
        the container id stamped on assembled BATCH frames; required when
        batching is on.
    zero_copy:
        Assemble multi-frame batches as scatter/gather
        :class:`~repro.protocol.batching.WireDatagram` buffer lists instead
        of joined BATCH frames — set when the transport underneath supports
        ``send_buffers`` (byte-identical on the wire either way).
    queue_limit:
        Per-(destination, band) cap on queued frames while shaping;
        ``None`` keeps the seed's unbounded queues.
    overflow_policy / overflow_policies:
        Default policy and optional per-band overrides applied when a
        bounded queue is full.
    on_overflow:
        Called once per shed/refused frame — the container's backpressure
        signal.
    metrics:
        A :class:`MetricsRegistry`; batching and shedding counters land
        here labeled by band/policy/kind.
    """

    def __init__(
        self,
        clock: Clock,
        timers,
        send: SendFn,
        rate_bps: Optional[float] = None,
        burst_bytes: int = 1600,
        bands: Optional[Dict[MessageKind, int]] = None,
        batching: bool = False,
        batch_mtu: int = 1200,
        batch_flush_interval: float = 0.002,
        source: str = "",
        piggyback: Optional[PiggybackFn] = None,
        queue_limit: Optional[int] = None,
        overflow_policy: str = "drop-oldest",
        overflow_policies: Optional[Dict[int, str]] = None,
        on_overflow: Optional[OverflowFn] = None,
        metrics=None,
        zero_copy: bool = False,
    ):
        self._clock = clock
        self._timers = timers
        self._send = send
        self._rate_bps = rate_bps
        self._burst = float(burst_bytes)
        self._bands = dict(DEFAULT_BANDS if bands is None else bands)
        self._queues: List[Deque[Tuple[Destination, Frame, int]]] = [
            deque() for _ in range(_NUM_BANDS)
        ]
        self._tokens = self._burst
        self._last_refill = clock.now()
        self._drain_timer = None
        self._metrics = metrics
        # Bounded queues.
        self._queue_limit = queue_limit
        self._policies = self._resolve_policies(overflow_policy, overflow_policies)
        self._on_overflow = on_overflow
        self._depth: Dict[Tuple[Destination, int], int] = {}
        # Batching stage.
        self._batcher: Optional[FrameBatcher] = None
        if batching:
            self._batcher = FrameBatcher(
                clock=clock,
                timers=timers,
                source=source,
                emit=self._submit,
                mtu=batch_mtu,
                flush_interval=batch_flush_interval,
                piggyback=piggyback,
                zero_copy=zero_copy,
            )
        # Telemetry.
        self.shaped_frames = 0
        self.passthrough_frames = 0
        self.max_queue_depth = 0
        self.dropped_frames = 0
        self.blocked_frames = 0

    @staticmethod
    def _resolve_policies(
        default: str, overrides: Optional[Dict[int, str]]
    ) -> List[str]:
        policies = [default] * _NUM_BANDS
        for band, policy in (overrides or {}).items():
            policies[band] = policy
        for policy in policies:
            if policy not in OVERFLOW_POLICIES:
                raise ConfigurationError(f"unknown overflow policy {policy!r}")
        return policies

    @property
    def enabled(self) -> bool:
        return self._rate_bps is not None

    @property
    def batching_enabled(self) -> bool:
        return self._batcher is not None

    @property
    def batcher(self) -> Optional[FrameBatcher]:
        return self._batcher

    #: Tolerance for float rounding in token arithmetic (bytes).
    _EPSILON = 1e-9

    def send(self, destination: Destination, frame: Frame) -> None:
        """Entry point: classify into a band, batch if enabled, then shape."""
        band = self._bands.get(frame.kind, _NUM_BANDS - 1)
        if self._batcher is not None:
            self._batcher.add(destination, frame, band)
            return
        self._submit(destination, frame, band)

    def flush(self) -> None:
        """Flush any pending batches (e.g. just before container stop)."""
        if self._batcher is not None:
            self._batcher.flush()

    def _submit(self, destination: Destination, frame: Frame, band: int) -> None:
        """Send now if tokens allow, else queue by priority band.

        Frames larger than the burst use deficit accounting: they send once
        the bucket is full and drive it negative, so the long-run rate
        stays exact and oversized frames still make progress.
        """
        if self._batcher is not None:
            self._note_batch_stats()
        if not self.enabled:
            self.passthrough_frames += 1
            self._send(destination, frame)
            return
        size = self._frame_size(frame)
        self._refill()
        if self._tokens + self._EPSILON >= min(size, self._burst) and not self._pending():
            self._tokens -= size
            self._send(destination, frame)
            return
        self._enqueue(destination, frame, band, size)

    def _enqueue(
        self, destination: Destination, frame: Frame, band: int, size: int
    ) -> None:
        key = (destination, band)
        if (
            self._queue_limit is not None
            and self._depth.get(key, 0) >= self._queue_limit
        ):
            policy = self._policies[band]
            if policy == "drop-oldest":
                evicted = self._pop_oldest(destination, band)
                if evicted is not None:
                    self.dropped_frames += 1
                    self._note_overflow(destination, band, policy, evicted)
                    # fall through: the fresh frame takes the freed slot
            elif policy == "drop-newest":
                self.dropped_frames += 1
                self._note_overflow(destination, band, policy, frame)
                return
            else:  # "block": refuse admission, signal backpressure upstream
                self.blocked_frames += 1
                self._note_overflow(destination, band, policy, frame)
                return
        self._queues[band].append((destination, frame, size))
        self._depth[key] = self._depth.get(key, 0) + 1
        self.shaped_frames += 1
        self.max_queue_depth = max(self.max_queue_depth, self._pending())
        self._arm_drain()

    @property
    def queued(self) -> int:
        return self._pending()

    def queued_to(self, destination: Destination, band: int) -> int:
        """Current queue depth for one (destination, band) — the bounded
        quantity."""
        return self._depth.get((destination, band), 0)

    # -- internals -----------------------------------------------------------
    def _pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def _pop_oldest(self, destination: Destination, band: int) -> Optional[Frame]:
        queue = self._queues[band]
        for i, (dest, frame, _size) in enumerate(queue):
            if dest == destination:
                del queue[i]
                self._dec_depth((destination, band))
                return frame
        return None

    def _dec_depth(self, key: Tuple[Destination, int]) -> None:
        depth = self._depth.get(key, 0) - 1
        if depth <= 0:
            self._depth.pop(key, None)
        else:
            self._depth[key] = depth

    def _note_overflow(
        self, destination: Destination, band: int, policy: str, frame: Frame
    ) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "egress_overflow",
                band=str(band),
                policy=policy,
                kind=frame.kind.name,
            ).inc()
        if self._on_overflow is not None:
            self._on_overflow(destination, band, policy, frame)

    def _note_batch_stats(self) -> None:
        """Mirror the batcher's tallies into the metrics registry (cheap:
        counters are set-on-read gauges of monotonic ints)."""
        if self._metrics is None or self._batcher is None:
            return
        b = self._batcher
        self._metrics.gauge("egress_batches").set(b.batches_sent)
        self._metrics.gauge("egress_batched_frames").set(b.batched_frames)
        self._metrics.gauge("egress_single_flushes").set(b.single_flushes)
        self._metrics.gauge("egress_piggybacked_acks").set(b.piggybacked_acks)

    def _frame_size(self, frame: Frame) -> int:
        # A zero-copy WireDatagram knows its wire size without joining its
        # buffers; a plain Frame is sized from header + payload as before.
        wire = getattr(frame, "wire_size", None)
        if wire is not None:
            return wire + WIRE_OVERHEAD_BYTES
        return frame.header_size + len(frame.payload) + WIRE_OVERHEAD_BYTES

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last_refill
        self._last_refill = now
        if elapsed > 0:
            self._tokens = min(
                self._burst, self._tokens + elapsed * self._rate_bps / 8.0
            )

    def _arm_drain(self) -> None:
        if self._drain_timer is not None:
            return
        # Time until enough tokens exist for the most urgent queued frame.
        head = next(
            (q[0] for q in self._queues if q), None
        )
        if head is None:
            return
        required = min(head[2], self._burst)
        needed = max(0.0, required - self._tokens)
        if needed <= self._EPSILON:
            delay = 0.0
        else:
            # Floor the delay so float rounding can never produce a timer
            # that fires without advancing tokens (a zero-progress spin).
            delay = max(needed * 8.0 / self._rate_bps, 1e-6)
        self._drain_timer = self._timers.schedule(delay, self._drain)

    def _drain(self) -> None:
        self._drain_timer = None
        self._refill()
        while True:
            band, queue = next(
                ((i, q) for i, q in enumerate(self._queues) if q), (None, None)
            )
            if queue is None:
                return
            destination, frame, size = queue[0]
            if self._tokens + self._EPSILON < min(size, self._burst):
                self._arm_drain()
                return
            queue.popleft()
            self._dec_depth((destination, band))
            self._tokens -= size
            self._send(destination, frame)


__all__ = ["EgressShaper", "DEFAULT_BANDS", "OVERFLOW_POLICIES"]
