"""Per-peer reliable messaging links.

Every pair of containers shares one ordered reliable stream (events, remote
invocations, subscriptions and file control all ride it), created lazily in
each direction. A second, TCP-modelled stream exists purely so experiment E5
can map events "over TCP" and compare.

Sans-io: the managers emit frames through the container and arm their
retransmission timers through whatever timer service the runtime provides.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.protocol.frames import Frame, MessageKind
from repro.protocol.reliability import (
    ReliabilityHardening,
    ReliableReceiver,
    ReliableSender,
    RetransmitPolicy,
)
from repro.protocol.tcp_like import TcpLikeReceiver, TcpLikeSender
from repro.util.clock import Clock

#: Channel carrying the main reliable stream between two containers.
RELIABLE_CHANNEL = 1
#: Channel carrying the TCP-modelled stream (experiment E5 only).
TCP_CHANNEL = 2

SendToPeer = Callable[[str, Frame], None]  # (destination container, frame)
DeliverFrame = Callable[[Frame], None]  # reliable frame ready for dispatch
PeerFailure = Callable[[str, Frame], None]  # (peer, frame that gave up)
PeerSlow = Callable[[str, Frame], None]  # (peer, frame shed by bounded backlog)
PeerAbuse = Callable[[str, str], None]  # (peer, defense that fired)


class ReliableLinks:
    """Manages one :class:`ReliableSender`/:class:`ReliableReceiver` pair
    per remote container."""

    def __init__(
        self,
        clock: Clock,
        timers,
        local: str,
        send_to_peer: SendToPeer,
        deliver: DeliverFrame,
        on_peer_failure: Optional[PeerFailure] = None,
        policy: Optional[RetransmitPolicy] = None,
        ack_delay: float = 0.0,
        ack_max_pending: int = 64,
        on_peer_slow: Optional[PeerSlow] = None,
        hardening: Optional[ReliabilityHardening] = None,
        on_peer_abuse: Optional[PeerAbuse] = None,
    ):
        self._clock = clock
        self._timers = timers
        self._local = local
        self._send_to_peer = send_to_peer
        self._deliver = deliver
        self._on_peer_failure = on_peer_failure
        self._on_peer_slow = on_peer_slow
        self._policy = policy or RetransmitPolicy()
        self._ack_delay = ack_delay
        self._ack_max_pending = ack_max_pending
        self._hardening = hardening
        self._on_peer_abuse = on_peer_abuse
        self._senders: Dict[str, ReliableSender] = {}
        self._receivers: Dict[str, ReliableReceiver] = {}
        self._timer_handles: Dict[str, object] = {}

    @property
    def hardening(self) -> Optional[ReliabilityHardening]:
        return self._hardening

    def set_hardening(self, hardening: ReliabilityHardening) -> None:
        """Arm (or swap) abuse defenses on every existing and future stream —
        how ``SimRuntime.harden_reliability`` retrofits a running fleet."""
        self._hardening = hardening
        for sender in self._senders.values():
            sender._hardening = hardening
        for receiver in self._receivers.values():
            receiver._hardening = hardening

    # -- sending ---------------------------------------------------------------
    def send(self, peer: str, kind: MessageKind, payload: bytes) -> int:
        """Reliably send ``payload`` to ``peer``; returns the stream seq."""
        sender = self._sender_for(peer)
        seq = sender.send(kind, payload)
        self._arm_timer(peer, sender)
        return seq

    def pending_to(self, peer: str) -> int:
        sender = self._senders.get(peer)
        return sender.unacked if sender else 0

    def pending_ack_frame(self, peer: str) -> Optional[Frame]:
        """Drain the coalesced ACKs waiting for ``peer``, as one merged ACK
        frame ready to piggyback on an outbound batch (None when idle)."""
        receiver = self._receivers.get(peer)
        if receiver is None:
            return None
        acks = receiver.take_pending_acks()
        return acks[0] if acks else None

    # -- inbound frames ----------------------------------------------------------
    def on_frame(self, frame: Frame) -> bool:
        """Feed a frame that may belong to the reliable channel.

        Returns True when consumed (ACKs and duplicate suppression happen
        here; fresh data frames are passed to ``deliver``).
        """
        if frame.channel != RELIABLE_CHANNEL:
            return False
        if frame.kind == MessageKind.ACK:
            sender = self._senders.get(frame.source)
            if sender is not None:
                sender.on_ack_frame(frame)
                self._arm_timer(frame.source, sender)
            return True
        if frame.kind == MessageKind.NACK:
            # A NACK names *our* stream to the peer: it is an explicit
            # retransmit request, handled by the send side.
            sender = self._senders.get(frame.source)
            if sender is not None:
                sender.on_nack_frame(frame)
                self._arm_timer(frame.source, sender)
            return True
        self._receiver_for(frame.source).on_frame(frame)
        return True

    # -- peer lifecycle -----------------------------------------------------------
    def reset_peer(self, peer: str) -> None:
        """Forget stream state for a restarted/dead peer.

        Unacked frames are surfaced through the failure callback so their
        owners (event queues, pending calls) can react.
        """
        sender = self._senders.pop(peer, None)
        receiver = self._receivers.pop(peer, None)
        if receiver is not None:
            receiver._cancel_ack_timer()
        handle = self._timer_handles.pop(peer, None)
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()
        if sender is not None and self._on_peer_failure is not None:
            for state in list(sender._in_flight.values()):
                self._on_peer_failure(peer, state.frame)
            for frame in sender._backlog:
                self._on_peer_failure(peer, frame)

    def peers(self):
        return sorted(set(self._senders) | set(self._receivers))

    # -- internals -----------------------------------------------------------
    def _sender_for(self, peer: str) -> ReliableSender:
        sender = self._senders.get(peer)
        if sender is None:
            sender = ReliableSender(
                clock=self._clock,
                source=self._local,
                channel=RELIABLE_CHANNEL,
                emit=lambda frame, p=peer: self._send_to_peer(p, frame),
                on_failure=lambda seq, frame, p=peer: self._peer_failed(p, frame),
                policy=self._policy,
                on_overflow=lambda frame, p=peer: self._peer_slow(p, frame),
                hardening=self._hardening,
                on_abuse=lambda reason, p=peer: self._peer_abuse(p, reason),
            )
            self._senders[peer] = sender
        return sender

    def _receiver_for(self, peer: str) -> ReliableReceiver:
        receiver = self._receivers.get(peer)
        if receiver is None:
            receiver = ReliableReceiver(
                source=peer,
                channel=RELIABLE_CHANNEL,
                emit_ack=lambda ack, p=peer: self._send_to_peer(p, ack),
                deliver=self._deliver,
                ordered=True,
                ack_source=self._local,
                ack_delay=self._ack_delay,
                timers=self._timers,
                max_pending_acks=self._ack_max_pending,
                clock=self._clock,
                hardening=self._hardening,
                on_abuse=lambda reason, p=peer: self._peer_abuse(p, reason),
            )
            self._receivers[peer] = receiver
        return receiver

    def _peer_failed(self, peer: str, frame: Frame) -> None:
        if self._on_peer_failure is not None:
            self._on_peer_failure(peer, frame)

    def _peer_abuse(self, peer: str, reason: str) -> None:
        if self._on_peer_abuse is not None:
            self._on_peer_abuse(peer, reason)

    def _peer_slow(self, peer: str, frame: Frame) -> None:
        if self._on_peer_slow is not None:
            self._on_peer_slow(peer, frame)

    def _arm_timer(self, peer: str, sender: ReliableSender) -> None:
        handle = self._timer_handles.get(peer)
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()
        wakeup = sender.next_wakeup()
        if wakeup is None:
            self._timer_handles.pop(peer, None)
            return
        delay = max(0.0, wakeup - self._clock.now())

        def fire():
            sender.poll()
            self._arm_timer(peer, sender)

        self._timer_handles[peer] = self._timers.schedule(delay, fire)


class TcpLinks:
    """Per-peer TCP-modelled streams (the §4.2 baseline, experiment E5)."""

    def __init__(
        self,
        clock: Clock,
        timers,
        local: str,
        send_to_peer: SendToPeer,
        deliver: Callable[[str, bytes], None],  # (peer, message payload)
        rto: float = 0.2,
    ):
        self._clock = clock
        self._timers = timers
        self._local = local
        self._send_to_peer = send_to_peer
        self._deliver = deliver
        self._rto = rto
        self._senders: Dict[str, TcpLikeSender] = {}
        self._receivers: Dict[str, TcpLikeReceiver] = {}
        self._timer_handles: Dict[str, object] = {}

    def send(self, peer: str, payload: bytes) -> None:
        sender = self._sender_for(peer)
        sender.send(payload)
        self._arm_timer(peer, sender)

    def on_frame(self, frame: Frame) -> bool:
        if frame.channel != TCP_CHANNEL:
            return False
        peer = frame.source
        if frame.kind in (MessageKind.STREAM_SYNACK, MessageKind.STREAM_ACK):
            sender = self._senders.get(peer)
            if sender is not None:
                sender.on_frame(frame)
                self._arm_timer(peer, sender)
            return True
        if frame.kind in (MessageKind.STREAM_SYN, MessageKind.STREAM_SEGMENT):
            self._receiver_for(peer).on_frame(frame)
            return True
        return False

    def reset_peer(self, peer: str) -> None:
        self._senders.pop(peer, None)
        self._receivers.pop(peer, None)
        handle = self._timer_handles.pop(peer, None)
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()

    # -- internals -----------------------------------------------------------
    def _sender_for(self, peer: str) -> TcpLikeSender:
        sender = self._senders.get(peer)
        if sender is None:
            sender = TcpLikeSender(
                clock=self._clock,
                source=self._local,
                channel=TCP_CHANNEL,
                emit=lambda frame, p=peer: self._send_to_peer(p, frame),
                rto=self._rto,
            )
            self._senders[peer] = sender
        return sender

    def _receiver_for(self, peer: str) -> TcpLikeReceiver:
        receiver = self._receivers.get(peer)
        if receiver is None:
            receiver = TcpLikeReceiver(
                source=self._local,
                channel=TCP_CHANNEL,
                emit=lambda frame, p=peer: self._send_to_peer(p, frame),
                deliver=lambda payload, p=peer: self._deliver(p, payload),
            )
            self._receivers[peer] = receiver
        return receiver

    def _arm_timer(self, peer: str, sender: TcpLikeSender) -> None:
        handle = self._timer_handles.get(peer)
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()
        wakeup = sender.next_wakeup()
        if wakeup is None:
            self._timer_handles.pop(peer, None)
            return
        delay = max(0.0, wakeup - self._clock.now())

        def fire():
            sender.poll()
            self._arm_timer(peer, sender)

        self._timer_handles[peer] = self._timers.schedule(delay, fire)


__all__ = ["ReliableLinks", "TcpLinks", "RELIABLE_CHANNEL", "TCP_CHANNEL"]
