"""Service supervision: restart policies, backoff, escalation.

The paper's container "watch[es] for their correct operation and notif[ies]
the rest of containers about changes in the services status" (§3). The
seed only *recorded* failure; the supervisor closes the loop:

- a failed service is rescheduled for restart under an exponential-backoff
  schedule with seeded jitter (so a fleet of identical nodes never restarts
  in lockstep);
- restarts draw on a budget — at most ``max_restarts`` attempts inside a
  sliding ``restart_window`` — and when the budget is exhausted the failure
  **escalates**: the service is marked permanently failed, its withdrawal
  is broadcast (peers fail over to redundant providers, §4.3), and the
  container's emergency procedure fires;
- every action is counted in a :class:`~repro.util.stats.Tally` so tests
  and benchmarks can assert on restarts attempted, backoff delays drawn,
  escalations and time-to-recovery.

The supervisor is deliberately sans-io: it only talks to the container's
timer source and clock, so it behaves identically under the simulated and
threaded runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.container.lifecycle import ServiceRecord, ServiceState
from repro.util.errors import ConfigurationError
from repro.util.rng import SeededRng
from repro.util.stats import Tally

#: Legal restart modes.
#: - ``never``      — failures are recorded, nothing restarts (seed behaviour);
#: - ``on-failure`` — restart after a FAILED transition;
#: - ``always``     — additionally restart after a plain stop_service()
#:   (the systemd meaning: the service should be up whenever its container
#:   is, however it went down).
RESTART_MODES = ("never", "on-failure", "always")


@dataclass(frozen=True)
class RestartPolicy:
    """Per-service restart tunables (container default in
    :class:`~repro.container.config.ContainerConfig.restart_policy`)."""

    mode: str = "on-failure"
    #: First backoff delay; doubles (``backoff_factor``) per recent attempt.
    backoff_initial: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    #: Symmetric jitter as a fraction of the delay (0 = deterministic).
    jitter: float = 0.25
    #: Budget: escalate after this many restarts inside ``restart_window``.
    max_restarts: int = 5
    restart_window: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in RESTART_MODES:
            raise ConfigurationError(
                f"restart mode must be one of {RESTART_MODES}, got {self.mode!r}"
            )
        if self.backoff_initial <= 0.0:
            raise ConfigurationError("backoff_initial must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff_initial:
            raise ConfigurationError("backoff_max must be >= backoff_initial")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if self.max_restarts < 1:
            raise ConfigurationError("max_restarts must be >= 1")
        if self.restart_window <= 0.0:
            raise ConfigurationError("restart_window must be positive")

    def delay_for(self, attempt: int, rng: Optional[SeededRng] = None) -> float:
        """Backoff before restart number ``attempt`` (0-based), jittered."""
        base = min(self.backoff_max, self.backoff_initial * self.backoff_factor ** attempt)
        if rng is None or self.jitter <= 0.0:
            return base
        return rng.jittered(base, base * self.jitter, floor=0.0)


@dataclass
class _Plan:
    """The supervisor's per-service state."""

    policy: RestartPolicy
    #: Times of recent restart attempts (pruned to the policy window).
    attempts: List[float] = field(default_factory=list)
    #: When the current outage began (None while the service is healthy).
    failed_at: Optional[float] = None
    timer: object = field(default=None, repr=False)

    def recent_attempts(self, now: float) -> List[float]:
        window = self.policy.restart_window
        self.attempts = [t for t in self.attempts if now - t <= window]
        return self.attempts

    def cancel_timer(self) -> None:
        if self.timer is not None and hasattr(self.timer, "cancel"):
            self.timer.cancel()
        self.timer = None


class ServiceSupervisor:
    """Watches a container's services and heals them per policy.

    Owned by :class:`~repro.container.container.ServiceContainer`; the
    container forwards failures (``on_failure``) and stops (``on_stopped``)
    and exposes the supervisor as ``container.supervisor``.
    """

    def __init__(self, container, rng: Optional[SeededRng] = None):
        self._container = container
        self._rng = rng if rng is not None else SeededRng(1).fork(
            f"supervisor:{container.id}"
        )
        # Supervision tallies live in the container's unified registry as
        # ``supervision.*`` (a private registry when the host has none —
        # test doubles).
        self.stats = Tally(
            registry=getattr(container, "metrics", None), prefix="supervision."
        )
        self._plans: Dict[str, _Plan] = {}

    # -- policy bookkeeping -------------------------------------------------
    def register(self, name: str, policy: Optional[RestartPolicy] = None) -> None:
        """Track a service; ``policy`` overrides the container default."""
        self._plans[name] = _Plan(policy=policy or self._container.config.restart_policy)

    def forget(self, name: str) -> None:
        plan = self._plans.pop(name, None)
        if plan is not None:
            plan.cancel_timer()

    def policy_for(self, name: str) -> RestartPolicy:
        plan = self._plans.get(name)
        if plan is None:
            return self._container.config.restart_policy
        return plan.policy

    def reset(self, name: str) -> None:
        """Forgive the service's history (an operator restarted it)."""
        plan = self._plans.get(name)
        if plan is not None:
            plan.cancel_timer()
            plan.attempts.clear()
            plan.failed_at = None

    def cancel(self, name: str) -> None:
        """Drop any pending restart (requested stop / uninstall)."""
        plan = self._plans.get(name)
        if plan is not None:
            plan.cancel_timer()
            plan.failed_at = None

    def cancel_all(self) -> None:
        for plan in self._plans.values():
            plan.cancel_timer()

    # -- container notifications ---------------------------------------------
    def on_failure(self, record: ServiceRecord) -> None:
        """A service transitioned to FAILED; heal it if its policy says so."""
        plan = self._plan(record.name)
        self.stats.incr("failures")
        if plan.policy.mode == "never" or record.escalated:
            return
        self._schedule(record, plan)

    def on_stopped(self, record: ServiceRecord) -> None:
        """A service was stopped while its container keeps running; an
        ``always`` policy brings it back."""
        plan = self._plan(record.name)
        if plan.policy.mode != "always" or record.escalated:
            return
        self._schedule(record, plan)

    # -- introspection --------------------------------------------------------
    def pending_restarts(self) -> List[str]:
        return sorted(n for n, p in self._plans.items() if p.timer is not None)

    def snapshot(self) -> Dict[str, object]:
        return self.stats.snapshot()

    @property
    def restarts_attempted(self) -> int:
        return self.stats.count("restarts_attempted")

    @property
    def escalations(self) -> int:
        return self.stats.count("escalations")

    # -- internals -----------------------------------------------------------
    def _plan(self, name: str) -> _Plan:
        plan = self._plans.get(name)
        if plan is None:
            plan = _Plan(policy=self._container.config.restart_policy)
            self._plans[name] = plan
        return plan

    def _schedule(self, record: ServiceRecord, plan: _Plan) -> None:
        if not self._container.running or plan.timer is not None:
            return
        now = self._container.clock.now()
        if plan.failed_at is None:
            plan.failed_at = now
        recent = plan.recent_attempts(now)
        if len(recent) >= plan.policy.max_restarts:
            self._escalate(record, plan)
            return
        delay = plan.policy.delay_for(len(recent), self._rng)
        self.stats.incr("restarts_scheduled")
        self.stats.observe("backoff_delay", delay)
        plan.timer = self._container.timers.schedule(
            delay, lambda: self._attempt(record.name)
        )

    def _attempt(self, name: str) -> None:
        plan = self._plans.get(name)
        if plan is None:
            return
        plan.timer = None
        record = self._container.service_record(name)
        if record is None or not self._container.running or record.escalated:
            return
        if record.state not in (ServiceState.FAILED, ServiceState.STOPPED):
            return  # an operator beat us to it
        plan.attempts.append(self._container.clock.now())
        self.stats.incr("restarts_attempted")
        # May fail again synchronously, re-entering on_failure with a
        # longer backoff (or escalation) — that is the crash-loop path.
        self._container._start_service(record)
        if record.is_running:
            self.stats.incr("restarts_succeeded")
            if plan.failed_at is not None:
                self.stats.observe(
                    "recovery_time", self._container.clock.now() - plan.failed_at
                )
                plan.failed_at = None

    def _escalate(self, record: ServiceRecord, plan: _Plan) -> None:
        record.escalated = True
        plan.cancel_timer()
        self.stats.incr("escalations")
        recorder = getattr(self._container, "recorder", None)
        if recorder is not None:
            recorder.record(
                "escalation", service=record.name, reason=record.failure_reason
            )
        if plan.failed_at is not None:
            self.stats.observe(
                "escalation_after", self._container.clock.now() - plan.failed_at
            )
        # Provisions were withdrawn when the service failed; the announce
        # broadcasts the (now permanent) status change so peers rebind to
        # redundant providers, and the emergency hook lets the application
        # run its programmed procedure (§4.3).
        self._container.announce_soon()
        self._container.emergency(
            f"service {record.name!r} escalated: restart budget exhausted "
            f"({plan.policy.max_restarts} restarts in "
            f"{plan.policy.restart_window}s); last failure: {record.failure_reason}"
        )


__all__ = ["RestartPolicy", "ServiceSupervisor", "RESTART_MODES"]
