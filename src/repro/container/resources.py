"""Node-local shared resource management.

"Given that each network distributed node has a unique container, and that
all the services in that node are layered on top of it, the container is the
right place to centralize the management of the shared resources of the
node: memory, CPU time, input/output devices that are accessed in exclusive
mode" (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.util.errors import ResourceError


@dataclass
class ResourceLimits:
    """Per-node budgets enforced by the container."""

    storage_bytes: int = 64 * 1024 * 1024  # a small flash card
    max_open_devices: int = 8


class ResourceManager:
    """Tracks storage allocations and exclusive device ownership.

    CPU sharing is handled by the scheduler; this class covers the two
    resources services grab explicitly: bulk storage (the Storage service's
    "inner file system") and exclusive-mode devices (camera, radio).
    """

    def __init__(self, limits: Optional[ResourceLimits] = None):
        self._limits = limits or ResourceLimits()
        self._storage_used: Dict[str, int] = {}  # service -> bytes
        self._devices: Dict[str, str] = {}  # device -> owning service

    # -- storage ---------------------------------------------------------------
    @property
    def storage_used(self) -> int:
        return sum(self._storage_used.values())

    @property
    def storage_free(self) -> int:
        return self._limits.storage_bytes - self.storage_used

    def allocate_storage(self, service: str, nbytes: int) -> None:
        """Reserve ``nbytes`` for ``service``; raises when the node is full."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative storage")
        if nbytes > self.storage_free:
            raise ResourceError(
                f"storage exhausted: {service!r} wants {nbytes} B, "
                f"{self.storage_free} B free"
            )
        self._storage_used[service] = self._storage_used.get(service, 0) + nbytes

    def release_storage(self, service: str, nbytes: Optional[int] = None) -> None:
        """Release ``nbytes`` (or everything) held by ``service``."""
        held = self._storage_used.get(service, 0)
        if nbytes is None:
            nbytes = held
        if nbytes > held:
            raise ResourceError(
                f"{service!r} releasing {nbytes} B but only holds {held} B"
            )
        remaining = held - nbytes
        if remaining:
            self._storage_used[service] = remaining
        else:
            self._storage_used.pop(service, None)

    def storage_held_by(self, service: str) -> int:
        return self._storage_used.get(service, 0)

    # -- exclusive devices --------------------------------------------------------
    def acquire_device(self, device: str, service: str) -> None:
        """Grant exclusive access to ``device``; idempotent for the owner."""
        owner = self._devices.get(device)
        if owner is not None and owner != service:
            raise ResourceError(
                f"device {device!r} is held by {owner!r}; {service!r} must wait"
            )
        if owner is None and len(self._devices) >= self._limits.max_open_devices:
            raise ResourceError("too many open devices on this node")
        self._devices[device] = service

    def release_device(self, device: str, service: str) -> None:
        owner = self._devices.get(device)
        if owner is None:
            return
        if owner != service:
            raise ResourceError(
                f"{service!r} cannot release device {device!r} held by {owner!r}"
            )
        del self._devices[device]

    def device_owner(self, device: str) -> Optional[str]:
        return self._devices.get(device)

    def release_all(self, service: str) -> None:
        """Free every resource held by a stopped or failed service."""
        self._storage_used.pop(service, None)
        for device in [d for d, o in self._devices.items() if o == service]:
            del self._devices[device]


__all__ = ["ResourceManager", "ResourceLimits"]
