"""Service lifecycle management.

"The container is the responsible of starting and stopping the services it
contains. It is also on charge of watching for their correct operation and
notifying the rest of containers about changes in the services status." (§3)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.util.errors import ServiceError


class ServiceState(enum.Enum):
    INSTALLED = "installed"
    STARTING = "starting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal state transitions; anything else is a container bug surfaced loudly.
_TRANSITIONS = {
    ServiceState.INSTALLED: {ServiceState.STARTING},
    ServiceState.STARTING: {ServiceState.RUNNING, ServiceState.FAILED},
    ServiceState.RUNNING: {ServiceState.STOPPING, ServiceState.FAILED},
    ServiceState.STOPPING: {ServiceState.STOPPED, ServiceState.FAILED},
    ServiceState.STOPPED: {ServiceState.STARTING},
    ServiceState.FAILED: {ServiceState.STARTING},
}

#: Observer signature: ``(record, old_state, new_state)``.
TransitionObserver = Callable[["ServiceRecord", ServiceState, ServiceState], None]


def is_legal_transition(old: ServiceState, new: ServiceState) -> bool:
    return new in _TRANSITIONS[old]


@dataclass
class ServiceRecord:
    """The container's bookkeeping for one installed service."""

    name: str
    service: object  # repro.services.Service; kept loose to avoid a cycle
    state: ServiceState = ServiceState.INSTALLED
    failure_reason: Optional[str] = None
    restarts: int = 0
    #: Set by the supervisor when the restart budget is exhausted: the
    #: service stays FAILED until an operator restarts it explicitly.
    escalated: bool = False
    #: Optional hook fired after every state change (chaos invariant
    #: checkers chain onto this).
    observer: Optional[TransitionObserver] = field(default=None, repr=False)

    def transition(self, new_state: ServiceState) -> None:
        if not is_legal_transition(self.state, new_state):
            raise ServiceError(
                f"service {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        if new_state == ServiceState.STARTING:
            self.failure_reason = None
            if self.state in (ServiceState.STOPPED, ServiceState.FAILED):
                self.restarts += 1
        old = self.state
        self.state = new_state
        if self.observer is not None:
            self.observer(self, old, new_state)

    def fail(self, reason: str) -> None:
        """Mark the service FAILED — through the transitions table, so an
        illegal hop (e.g. INSTALLED -> FAILED) raises instead of being
        silently accepted."""
        self.failure_reason = reason
        self.transition(ServiceState.FAILED)

    @property
    def is_running(self) -> bool:
        return self.state == ServiceState.RUNNING

    @property
    def can_fail(self) -> bool:
        """Is FAILED reachable from the current state?"""
        return ServiceState.FAILED in _TRANSITIONS[self.state]


__all__ = [
    "ServiceState",
    "ServiceRecord",
    "TransitionObserver",
    "is_legal_transition",
]
