"""Service lifecycle management.

"The container is the responsible of starting and stopping the services it
contains. It is also on charge of watching for their correct operation and
notifying the rest of containers about changes in the services status." (§3)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.util.errors import ServiceError


class ServiceState(enum.Enum):
    INSTALLED = "installed"
    STARTING = "starting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal state transitions; anything else is a container bug surfaced loudly.
_TRANSITIONS = {
    ServiceState.INSTALLED: {ServiceState.STARTING},
    ServiceState.STARTING: {ServiceState.RUNNING, ServiceState.FAILED},
    ServiceState.RUNNING: {ServiceState.STOPPING, ServiceState.FAILED},
    ServiceState.STOPPING: {ServiceState.STOPPED, ServiceState.FAILED},
    ServiceState.STOPPED: {ServiceState.STARTING},
    ServiceState.FAILED: {ServiceState.STARTING},
}


@dataclass
class ServiceRecord:
    """The container's bookkeeping for one installed service."""

    name: str
    service: object  # repro.services.Service; kept loose to avoid a cycle
    state: ServiceState = ServiceState.INSTALLED
    failure_reason: Optional[str] = None
    restarts: int = 0

    def transition(self, new_state: ServiceState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"service {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        if new_state == ServiceState.STARTING:
            self.failure_reason = None
            if self.state in (ServiceState.STOPPED, ServiceState.FAILED):
                self.restarts += 1
        self.state = new_state

    def fail(self, reason: str) -> None:
        self.failure_reason = reason
        self.state = ServiceState.FAILED

    @property
    def is_running(self) -> bool:
        return self.state == ServiceState.RUNNING


__all__ = ["ServiceState", "ServiceRecord"]
