"""Name management: the container's directory of remote providers.

"The services are addressed by name, and the Service Container discovers the
real location in the network of the named service. … In case of service
malfunctioning, it is also the container responsibility to notify the other
containers in the domain and to choose another provider service if it is
available. In this way, the containers are able to clear and update their
caches." (§3)

The directory is fed by ANNOUNCE/HEARTBEAT/BYE frames and a periodic
liveness sweep; it raises callbacks when providers appear, disappear or
change incarnation, which the primitive managers use to rebind.

Fleet-scale additions (each inert unless used):

- An **L1 lookup cache**: ``live_containers`` and the ``providers_of_*``
  queries are answered from cached lists invalidated on every directory
  mutation, so the hot publish path stops re-sorting N records per send.
- A **reverse address index** for :meth:`container_at` (the ACK-piggyback
  path calls it per datagram).
- **Zone summaries**: compact digests of other federation zones, applied by
  the fleet coordinator; :meth:`address_of` falls back to summary addresses
  for containers outside the local zone.
- ``strict_liveness_reads``: when set, reads never return a record whose
  heartbeat is older than the liveness timeout, even if the housekeeping
  sweep has not run yet. Off by default — the seed trusts the sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.container.records import ContainerRecord
from repro.simnet.addressing import Address
from repro.util.clock import Clock

ContainerCallback = Callable[[ContainerRecord], None]


class Directory:
    """The proxy cache of remote containers and their offered names."""

    def __init__(
        self,
        clock: Clock,
        local_container: str,
        liveness_timeout: float,
        strict_liveness_reads: bool = False,
    ):
        self._clock = clock
        self._local = local_container
        self._liveness_timeout = liveness_timeout
        self._strict_reads = strict_liveness_reads
        self._records: Dict[str, ContainerRecord] = {}
        #: Reverse index address -> container id (live records only; repaired
        #: lazily on lookup misses).
        self._by_address: Dict[Address, str] = {}
        #: L1 cache: sorted live records, or None when dirty.
        self._live_cache: Optional[List[ContainerRecord]] = None
        #: L1 cache: ("variables"|"events"|..., name) -> candidate records.
        self._providers_cache: Dict[Tuple[str, str], List[ContainerRecord]] = {}
        #: Federation: zone -> latest applied ZONE_SUMMARY document.
        self._zone_summaries: Dict[str, dict] = {}
        #: Addresses learned from summaries (containers without full records).
        self._summary_addresses: Dict[str, Address] = {}
        self._on_up: List[ContainerCallback] = []
        self._on_down: List[ContainerCallback] = []
        self._on_change: List[ContainerCallback] = []
        self._on_restart: List[ContainerCallback] = []
        #: Bumped on every topology/offer change; readers (e.g. the
        #: primitive managers' datatype caches) compare it to know their
        #: derived state is still valid without re-walking records.
        self.revision = 0

    # -- callback registration ------------------------------------------------
    def on_container_up(self, callback: ContainerCallback) -> None:
        """Fires when a container is first seen or returns from the dead."""
        self._on_up.append(callback)

    def on_container_down(self, callback: ContainerCallback) -> None:
        """Fires on BYE or liveness timeout — the cache-clear trigger."""
        self._on_down.append(callback)

    def on_offers_changed(self, callback: ContainerCallback) -> None:
        """Fires when a live container's announce changes its offer set."""
        self._on_change.append(callback)

    def on_container_restart(self, callback: ContainerCallback) -> None:
        """Fires when a container re-announces with a new incarnation —
        reliable-stream state for it must be reset."""
        self._on_restart.append(callback)

    # -- control-plane input ----------------------------------------------------
    def handle_announce(self, doc: dict) -> Optional[ContainerRecord]:
        """Ingest an ANNOUNCE document. Returns the (new) record, or None if
        it was our own announce."""
        if doc["container"] == self._local:
            return None
        now = self._clock.now()
        fresh = ContainerRecord.from_announce(doc, now)
        old = self._records.get(fresh.container)
        self._records[fresh.container] = fresh
        # The record object is replaced wholesale even when nothing changed,
        # so cached lists would silently go stale: always invalidate.
        self._invalidate()
        if old is not None and old.address != fresh.address:
            self._drop_address(old.address, fresh.container)
        self._by_address[fresh.address] = fresh.container
        if old is None or not old.alive:
            self._notify(self._on_up, fresh)
        elif old.incarnation != fresh.incarnation:
            self._notify(self._on_restart, fresh)
            self._notify(self._on_change, fresh)
        elif self._offers_differ(old, fresh):
            self._notify(self._on_change, fresh)
        if old is not None and old.incarnation == fresh.incarnation:
            fresh.load = old.load
            fresh.restarts = old.restarts
        return fresh

    def handle_heartbeat(self, doc: dict) -> None:
        if doc["container"] == self._local:
            return
        record = self._records.get(doc["container"])
        now = self._clock.now()
        if (
            record is not None
            and record.said_bye
            and doc["incarnation"] == record.incarnation
        ):
            # A stale heartbeat that was in flight when the container said
            # BYE; only a fresh announce or a new incarnation revives it.
            return
        if record is None or not record.alive:
            # Heartbeat from an unknown/dead container: we missed or dropped
            # its announce. Record a minimal entry; the next periodic
            # announce will fill in the offers.
            record = ContainerRecord(
                container=doc["container"],
                address=Address(doc["node"], doc["port"]),
                incarnation=doc["incarnation"],
                last_seen=now,
            )
            self._records[doc["container"]] = record
            self._by_address[record.address] = record.container
            self._invalidate()
            self._notify(self._on_up, record)
            record.load = doc["load"]
            record.restarts = doc.get("restarts", 0)
            return
        if doc["incarnation"] != record.incarnation:
            # Restarted before we saw the new announce.
            record.incarnation = doc["incarnation"]
            new_address = Address(doc["node"], doc["port"])
            if record.address != new_address:
                self._drop_address(record.address, record.container)
                record.address = new_address
                self._by_address[new_address] = record.container
            self._notify(self._on_restart, record)
        record.last_seen = now
        record.load = doc["load"]
        record.restarts = doc.get("restarts", record.restarts)

    def handle_bye(self, container: str) -> None:
        record = self._records.get(container)
        if record is not None and record.alive:
            record.alive = False
            record.said_bye = True
            self._invalidate()
            self._notify(self._on_down, record)

    def check_liveness(self) -> List[ContainerRecord]:
        """Mark containers dead that missed their heartbeats; returns them.

        Call periodically (the container's housekeeping timer does).
        """
        now = self._clock.now()
        newly_dead = []
        for record in self._records.values():
            if record.alive and now - record.last_seen > self._liveness_timeout:
                record.alive = False
                newly_dead.append(record)
        if newly_dead:
            self._invalidate()
        for record in newly_dead:
            self._notify(self._on_down, record)
        return newly_dead

    # -- zone summaries (federation) -------------------------------------------
    def apply_zone_summary(self, doc: dict) -> bool:
        """Apply a ZONE_SUMMARY digest of a foreign zone. Returns True when
        it superseded the current view of that zone.

        Versions are monotonic per publisher; between publishers of the same
        zone the (version, origin) pair orders deterministically.
        """
        zone = doc["zone"]
        current = self._zone_summaries.get(zone)
        if current is not None and (doc["version"], doc["origin"]) <= (
            current["version"],
            current["origin"],
        ):
            return False
        if (
            current is not None
            and current["origin"] == doc["origin"]
            and current["members"] == doc["members"]
        ):
            # Same publisher, same membership: a periodic refresh. Keep the
            # newer version visible but skip the address-table rebuild.
            self._zone_summaries[zone] = doc
            return True
        if current is not None:
            for member in current["members"]:
                self._summary_addresses.pop(member["container"], None)
        self._zone_summaries[zone] = doc
        for member in doc["members"]:
            if member["alive"] and member["container"] != self._local:
                self._summary_addresses[member["container"]] = Address(
                    member["node"], member["port"]
                )
        return True

    @property
    def zone_summaries(self) -> Dict[str, dict]:
        """Latest applied summary per foreign zone (read-only by convention)."""
        return self._zone_summaries

    def known_zones(self) -> List[str]:
        return sorted(self._zone_summaries)

    def summary_address_of(self, container: str) -> Optional[Address]:
        """Address learned from a zone summary (no full record held)."""
        return self._summary_addresses.get(container)

    # -- queries -------------------------------------------------------------
    def record(self, container: str) -> Optional[ContainerRecord]:
        return self._records.get(container)

    def all_records(self) -> Iterable[ContainerRecord]:
        """Every held record, live or dead (summary publication walks this)."""
        return self._records.values()

    def address_of(self, container: str) -> Optional[Address]:
        record = self._records.get(container)
        if record is None:
            # Outside our zone? Summaries still give us a route (UAV → relay
            # → ground addressing without full records).
            return self._summary_addresses.get(container)
        if not record.alive:
            return None
        if self._strict_reads and self._is_stale(record):
            return None
        return record.address

    def container_at(self, address: Address) -> Optional[str]:
        """Reverse lookup: which live container sits at ``address``?"""
        container = self._by_address.get(address)
        if container is not None:
            record = self._records.get(container)
            if record is not None and record.alive and record.address == address:
                return container
        # Index miss (or a stale entry): fall back to the scan and repair.
        for record in self._records.values():
            if record.alive and record.address == address:
                self._by_address[address] = record.container
                return record.container
        return None

    def live_containers(self) -> List[ContainerRecord]:
        """All live records, sorted by container id.

        The order is deterministic by construction — peer sampling, provider
        binding and test assertions all rely on it.
        """
        cache = self._live_cache
        if cache is None:
            cache = self._live_cache = sorted(
                (r for r in self._records.values() if r.alive),
                key=lambda r: r.container,
            )
        if not self._strict_reads:
            return list(cache)
        return [r for r in cache if not self._is_stale(r)]

    def providers_of_variable(self, name: str) -> List[ContainerRecord]:
        return self._providers("variables", name)

    def providers_of_event(self, name: str) -> List[ContainerRecord]:
        return self._providers("events", name)

    def providers_of_function(self, name: str) -> List[ContainerRecord]:
        return self._providers("functions", name)

    def providers_of_file(self, name: str) -> List[ContainerRecord]:
        return self._providers("files", name)

    # -- internals -----------------------------------------------------------
    def _providers(self, offer_kind: str, name: str) -> List[ContainerRecord]:
        key = (offer_kind, name)
        cached = self._providers_cache.get(key)
        if cached is None:
            live = self._live_cache
            if live is None:
                live = self._live_cache = sorted(
                    (r for r in self._records.values() if r.alive),
                    key=lambda r: r.container,
                )
            cached = [r for r in live if name in getattr(r, offer_kind)]
            self._providers_cache[key] = cached
        if not self._strict_reads:
            return list(cached)
        return [r for r in cached if not self._is_stale(r)]

    def _is_stale(self, record: ContainerRecord) -> bool:
        return self._clock.now() - record.last_seen > self._liveness_timeout

    def _invalidate(self) -> None:
        self._live_cache = None
        self._providers_cache.clear()
        self.revision += 1

    def _drop_address(self, address: Address, expected: str) -> None:
        if self._by_address.get(address) == expected:
            del self._by_address[address]

    @staticmethod
    def _offers_differ(a: ContainerRecord, b: ContainerRecord) -> bool:
        return (
            a.variables != b.variables
            or a.events != b.events
            or a.functions != b.functions
            or a.files != b.files
            or a.services != b.services
            or a.failed_services != b.failed_services
            or a.address != b.address
        )

    def _notify(self, callbacks: List[ContainerCallback], record: ContainerRecord) -> None:
        for callback in list(callbacks):
            callback(record)


__all__ = ["Directory"]
