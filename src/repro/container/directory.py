"""Name management: the container's directory of remote providers.

"The services are addressed by name, and the Service Container discovers the
real location in the network of the named service. … In case of service
malfunctioning, it is also the container responsibility to notify the other
containers in the domain and to choose another provider service if it is
available. In this way, the containers are able to clear and update their
caches." (§3)

The directory is fed by ANNOUNCE/HEARTBEAT/BYE frames and a periodic
liveness sweep; it raises callbacks when providers appear, disappear or
change incarnation, which the primitive managers use to rebind.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.container.records import ContainerRecord
from repro.simnet.addressing import Address
from repro.util.clock import Clock

ContainerCallback = Callable[[ContainerRecord], None]


class Directory:
    """The proxy cache of remote containers and their offered names."""

    def __init__(self, clock: Clock, local_container: str, liveness_timeout: float):
        self._clock = clock
        self._local = local_container
        self._liveness_timeout = liveness_timeout
        self._records: Dict[str, ContainerRecord] = {}
        self._on_up: List[ContainerCallback] = []
        self._on_down: List[ContainerCallback] = []
        self._on_change: List[ContainerCallback] = []
        self._on_restart: List[ContainerCallback] = []

    # -- callback registration ------------------------------------------------
    def on_container_up(self, callback: ContainerCallback) -> None:
        """Fires when a container is first seen or returns from the dead."""
        self._on_up.append(callback)

    def on_container_down(self, callback: ContainerCallback) -> None:
        """Fires on BYE or liveness timeout — the cache-clear trigger."""
        self._on_down.append(callback)

    def on_offers_changed(self, callback: ContainerCallback) -> None:
        """Fires when a live container's announce changes its offer set."""
        self._on_change.append(callback)

    def on_container_restart(self, callback: ContainerCallback) -> None:
        """Fires when a container re-announces with a new incarnation —
        reliable-stream state for it must be reset."""
        self._on_restart.append(callback)

    # -- control-plane input ----------------------------------------------------
    def handle_announce(self, doc: dict) -> Optional[ContainerRecord]:
        """Ingest an ANNOUNCE document. Returns the (new) record, or None if
        it was our own announce."""
        if doc["container"] == self._local:
            return None
        now = self._clock.now()
        fresh = ContainerRecord.from_announce(doc, now)
        old = self._records.get(fresh.container)
        self._records[fresh.container] = fresh
        if old is None or not old.alive:
            self._notify(self._on_up, fresh)
        elif old.incarnation != fresh.incarnation:
            self._notify(self._on_restart, fresh)
            self._notify(self._on_change, fresh)
        elif self._offers_differ(old, fresh):
            self._notify(self._on_change, fresh)
        if old is not None and old.incarnation == fresh.incarnation:
            fresh.load = old.load
            fresh.restarts = old.restarts
        return fresh

    def handle_heartbeat(self, doc: dict) -> None:
        if doc["container"] == self._local:
            return
        record = self._records.get(doc["container"])
        now = self._clock.now()
        if (
            record is not None
            and record.said_bye
            and doc["incarnation"] == record.incarnation
        ):
            # A stale heartbeat that was in flight when the container said
            # BYE; only a fresh announce or a new incarnation revives it.
            return
        if record is None or not record.alive:
            # Heartbeat from an unknown/dead container: we missed or dropped
            # its announce. Record a minimal entry; the next periodic
            # announce will fill in the offers.
            record = ContainerRecord(
                container=doc["container"],
                address=Address(doc["node"], doc["port"]),
                incarnation=doc["incarnation"],
                last_seen=now,
            )
            self._records[doc["container"]] = record
            self._notify(self._on_up, record)
            record.load = doc["load"]
            record.restarts = doc.get("restarts", 0)
            return
        if doc["incarnation"] != record.incarnation:
            # Restarted before we saw the new announce.
            record.incarnation = doc["incarnation"]
            record.address = Address(doc["node"], doc["port"])
            self._notify(self._on_restart, record)
        record.last_seen = now
        record.load = doc["load"]
        record.restarts = doc.get("restarts", record.restarts)

    def handle_bye(self, container: str) -> None:
        record = self._records.get(container)
        if record is not None and record.alive:
            record.alive = False
            record.said_bye = True
            self._notify(self._on_down, record)

    def check_liveness(self) -> List[ContainerRecord]:
        """Mark containers dead that missed their heartbeats; returns them.

        Call periodically (the container's housekeeping timer does).
        """
        now = self._clock.now()
        newly_dead = []
        for record in self._records.values():
            if record.alive and now - record.last_seen > self._liveness_timeout:
                record.alive = False
                newly_dead.append(record)
        for record in newly_dead:
            self._notify(self._on_down, record)
        return newly_dead

    # -- queries -------------------------------------------------------------
    def record(self, container: str) -> Optional[ContainerRecord]:
        return self._records.get(container)

    def address_of(self, container: str) -> Optional[Address]:
        record = self._records.get(container)
        if record is None or not record.alive:
            return None
        return record.address

    def container_at(self, address: Address) -> Optional[str]:
        """Reverse lookup: which live container sits at ``address``?"""
        for record in self._records.values():
            if record.alive and record.address == address:
                return record.container
        return None

    def live_containers(self) -> List[ContainerRecord]:
        return sorted(
            (r for r in self._records.values() if r.alive),
            key=lambda r: r.container,
        )

    def providers_of_variable(self, name: str) -> List[ContainerRecord]:
        return [r for r in self.live_containers() if name in r.variables]

    def providers_of_event(self, name: str) -> List[ContainerRecord]:
        return [r for r in self.live_containers() if name in r.events]

    def providers_of_function(self, name: str) -> List[ContainerRecord]:
        return [r for r in self.live_containers() if name in r.functions]

    def providers_of_file(self, name: str) -> List[ContainerRecord]:
        return [r for r in self.live_containers() if name in r.files]

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _offers_differ(a: ContainerRecord, b: ContainerRecord) -> bool:
        return (
            a.variables != b.variables
            or a.events != b.events
            or a.functions != b.functions
            or a.files != b.files
            or a.services != b.services
            or a.failed_services != b.failed_services
            or a.address != b.address
        )

    def _notify(self, callbacks: List[ContainerCallback], record: ContainerRecord) -> None:
        for callback in list(callbacks):
            callback(record)


__all__ = ["Directory"]
