"""Transport bound to the simulated network."""

from __future__ import annotations

from typing import Optional

from repro.simnet.addressing import Address, GroupName
from repro.simnet.network import SimNetwork
from repro.simnet.packet import Destination, Packet
from repro.transport.base import RawReceiver
from repro.util.errors import TransportError


class SimTransport:
    """A :class:`RawTransport` over :class:`repro.simnet.SimNetwork`.

    One instance per container; it owns the node's NIC binding and filters
    inbound packets by destination port, which is how the container "hides
    the bookkeeping related with the management of UDP/TCP ports and
    multicast groups" (§3) from services.
    """

    def __init__(self, network: SimNetwork, node: str):
        self._network = network
        self._nic = network.attach(node)
        self._node = node
        self._port: Optional[int] = None
        self._receiver: Optional[RawReceiver] = None
        self._open = False

    @property
    def node(self) -> str:
        return self._node

    @property
    def mtu(self) -> int:
        return self._network.link_for(self._node, self._node).mtu

    def open(self, port: int, receiver: RawReceiver) -> Address:
        if self._open:
            raise TransportError(f"transport on {self._node} already open")
        self._port = port
        self._receiver = receiver
        self._nic.set_receiver(self._on_packet)
        self._open = True
        return Address(self._node, port)

    def send_bytes(self, destination: Destination, payload: bytes) -> None:
        if not self._open:
            raise TransportError("transport not open")
        assert self._port is not None
        packet = Packet(
            source=Address(self._node, self._port),
            destination=destination,
            payload=payload,
        )
        self._nic.send(packet)

    def join(self, group: GroupName) -> None:
        self._nic.join(group)

    def leave(self, group: GroupName) -> None:
        self._nic.leave(group)

    def close(self) -> None:
        self._nic.set_receiver(lambda packet: None)
        self._open = False

    # -- internals -----------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if self._receiver is None:
            return
        # Unicast packets for other ports on this node are not ours;
        # multicast is delivered to every joined NIC regardless of port.
        if isinstance(packet.destination, Address) and packet.destination.port != self._port:
            return
        self._receiver(packet.payload, packet.source)


__all__ = ["SimTransport"]
