"""PEPt Transport subsystem.

"Transport moves the resulting frames from one node in the network to
another" (§6). Pluggable implementations:

- :class:`SimTransport` — binds a :class:`repro.simnet.SimNic` (default);
- :class:`InProcTransport` — an in-process hub for the threaded runtime;
- :class:`UdpTransport` — real UDP sockets on loopback (threaded runtime);
- :class:`AsyncUdpTransport` — batch-I/O non-blocking UDP sockets on an
  asyncio event loop (async runtime; see :mod:`repro.transport.udp_async`).

:class:`FrameTransport` adapts any raw byte transport to the Protocol
layer's :class:`~repro.protocol.Frame` objects, fragmenting oversized frames
transparently.
"""

from repro.transport.base import RawTransport
from repro.transport.frame_transport import FrameTransport
from repro.transport.inproc import InProcHub, InProcTransport
from repro.transport.sim import SimTransport

__all__ = [
    "RawTransport",
    "FrameTransport",
    "SimTransport",
    "InProcHub",
    "InProcTransport",
]
