"""Real-socket UDP transport for the threaded runtime.

Each node maps to a UDP socket on 127.0.0.1. Unicast is a plain ``sendto``;
multicast groups are emulated with a shared in-process membership registry
and sender-side fan-out (loopback interfaces rarely support true IGMP, and
the runtime is single-process anyway). The PEPt layering means nothing
above this module can tell the difference.

The registry is copy-on-write: every mutation (register/unregister/join/
leave — rare, topology-time events) rebuilds an immutable
:class:`RegistryView` under the mutation lock and publishes it with one
attribute store. The send path — called for every datagram — reads the
current view without taking any lock (an attribute load is atomic under
the GIL), and multicast fan-out walks a pre-sorted, pre-resolved member
tuple instead of re-sorting and re-resolving per send.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, Optional, Set, Tuple

from repro.simnet.addressing import Address, GroupName
from repro.simnet.packet import Destination
from repro.transport.base import RawReceiver
from repro.util.errors import TransportError

#: Loopback-safe datagram size.
UDP_MTU = 8192

#: A resolved multicast member: (node, port, sockaddr).
_Member = Tuple[str, int, Tuple[str, int]]


class RegistryView:
    """An immutable snapshot of the network registry.

    Send paths hold a reference to one view for the duration of a send;
    concurrent mutations publish a *new* view and never touch this one, so
    no lock is needed on the read side.
    """

    __slots__ = ("node_to_sockaddr", "sockaddr_to_node", "groups")

    def __init__(
        self,
        node_to_sockaddr: Dict[Tuple[str, int], Tuple[str, int]],
        sockaddr_to_node: Dict[Tuple[str, int], Tuple[str, int]],
        groups: Dict[GroupName, Tuple[_Member, ...]],
    ):
        self.node_to_sockaddr = node_to_sockaddr
        self.sockaddr_to_node = sockaddr_to_node
        self.groups = groups


_EMPTY_VIEW = RegistryView({}, {}, {})


class UdpNetwork:
    """Shared state of one wall-clock-runtime 'LAN': node → socket address
    mapping plus multicast membership, published as copy-on-write views."""

    def __init__(
        self, host: str = "127.0.0.1", base_port: int = 0, lock_recorder=None
    ):
        self.host = host
        self.base_port = base_port  # 0 = ephemeral ports chosen by the OS
        lock = threading.Lock()
        if lock_recorder is not None:
            lock = lock_recorder.wrap(lock, "udpnetwork.registry")
        self._lock = lock
        self._node_to_sockaddr: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._sockaddr_to_node: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._group_members: Dict[GroupName, Set[Tuple[str, int]]] = {}
        self._next_port_offset = 0
        #: The current immutable snapshot; republished on every mutation.
        self.view: RegistryView = _EMPTY_VIEW

    def create_transport(self, node: str) -> "UdpTransport":
        return UdpTransport(self, node)

    # -- port allotment ------------------------------------------------------
    def _allot_bind_port(self) -> int:
        """The OS port the next transport should bind.

        With ``base_port == 0`` every socket gets an ephemeral port. With a
        non-zero base, ports are deterministic: ``base_port``, ``base_port+1``,
        … in open order, so a test harness can predict (and pre-clash) them.
        """
        if self.base_port == 0:
            return 0
        with self._lock:
            port = self.base_port + self._next_port_offset
            self._next_port_offset += 1
        return port

    # -- registry used by transports ----------------------------------------
    def _rebuild_view(self) -> None:
        """Rebuild and publish the snapshot. Caller holds ``self._lock``."""
        node_to_sockaddr = dict(self._node_to_sockaddr)
        groups: Dict[GroupName, Tuple[_Member, ...]] = {}
        for group, members in self._group_members.items():
            resolved = []
            for node, port in sorted(members):
                sockaddr = node_to_sockaddr.get((node, port))
                if sockaddr is not None:  # closed-but-never-left members drop out
                    resolved.append((node, port, sockaddr))
            groups[group] = tuple(resolved)
        self.view = RegistryView(
            node_to_sockaddr, dict(self._sockaddr_to_node), groups
        )

    def _register(self, node: str, port: int, sockaddr: Tuple[str, int]) -> None:
        with self._lock:
            self._node_to_sockaddr[(node, port)] = sockaddr
            self._sockaddr_to_node[sockaddr] = (node, port)
            self._rebuild_view()

    def _unregister(self, node: str, port: int) -> None:
        with self._lock:
            sockaddr = self._node_to_sockaddr.pop((node, port), None)
            if sockaddr is not None:
                self._sockaddr_to_node.pop(sockaddr, None)
            self._rebuild_view()

    def _resolve(self, address: Address) -> Optional[Tuple[str, int]]:
        return self.view.node_to_sockaddr.get((address.node, address.port))

    def _source_of(self, sockaddr: Tuple[str, int]) -> Optional[Address]:
        entry = self.view.sockaddr_to_node.get(sockaddr)
        if entry is None:
            return None
        return Address(entry[0], entry[1])

    def _join(self, node: str, port: int, group: GroupName) -> None:
        with self._lock:
            self._group_members.setdefault(group, set()).add((node, port))
            self._rebuild_view()

    def _leave(self, node: str, port: int, group: GroupName) -> None:
        with self._lock:
            members = self._group_members.get(group)
            if members:
                members.discard((node, port))
                self._rebuild_view()

    def _members(self, group: GroupName) -> Set[Tuple[str, int]]:
        """Resolved members of ``group`` as (node, port) pairs."""
        return {(node, port) for node, port, _ in self.view.groups.get(group, ())}


class UdpTransport:
    """A :class:`RawTransport` over one real UDP socket."""

    def __init__(self, network: UdpNetwork, node: str):
        self._network = network
        self._node = node
        self._port: Optional[int] = None
        self._socket: Optional[socket.socket] = None
        self._receiver: Optional[RawReceiver] = None
        self._thread: Optional[threading.Thread] = None
        self._closing = False

    @property
    def node(self) -> str:
        return self._node

    @property
    def mtu(self) -> int:
        return UDP_MTU

    def open(self, port: int, receiver: RawReceiver) -> Address:
        if self._socket is not None:
            raise TransportError("transport already open")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        bind_port = self._network._allot_bind_port()
        try:
            sock.bind((self._network.host, bind_port))
        except OSError as exc:
            sock.close()
            raise TransportError(
                f"cannot bind UDP port {bind_port} for node {self._node!r}: {exc}"
            ) from exc
        sock.settimeout(0.2)
        self._socket = sock
        self._port = port
        self._receiver = receiver
        self._network._register(self._node, port, sock.getsockname())
        self._closing = False
        self._thread = threading.Thread(
            target=self._recv_loop, name=f"udp-{self._node}", daemon=True
        )
        self._thread.start()
        return Address(self._node, port)

    def send_bytes(self, destination: Destination, payload: bytes) -> None:
        if self._socket is None:
            raise TransportError("transport not open")
        if len(payload) > UDP_MTU:
            raise TransportError(f"payload exceeds UDP MTU {UDP_MTU}")
        view = self._network.view  # one atomic read; no lock on the send path
        if isinstance(destination, GroupName):
            for node, port, sockaddr in view.groups.get(destination, ()):
                if node == self._node and port == self._port:
                    continue
                self._socket.sendto(payload, sockaddr)
        else:
            sockaddr = view.node_to_sockaddr.get(
                (destination.node, destination.port)
            )
            if sockaddr is None:
                return  # unknown destination: dropped, like a LAN
            self._socket.sendto(payload, sockaddr)

    def join(self, group: GroupName) -> None:
        if self._port is None:
            raise TransportError("transport not open")
        self._network._join(self._node, self._port, group)

    def leave(self, group: GroupName) -> None:
        if self._port is not None:
            self._network._leave(self._node, self._port, group)

    def close(self) -> None:
        self._closing = True
        if self._socket is not None:
            self._network._unregister(self._node, self._port)
            if self._thread is not None:
                self._thread.join(timeout=1.0)
            self._socket.close()
            self._socket = None

    # -- internals -----------------------------------------------------------
    def _recv_loop(self) -> None:
        while not self._closing:
            try:
                payload, sockaddr = self._socket.recvfrom(UDP_MTU + 1)
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed
            source = self._network._source_of(sockaddr)
            if source is None:
                source = Address("unknown", 0)
            receiver = self._receiver
            if receiver is not None:
                receiver(payload, source)


__all__ = ["UdpNetwork", "UdpTransport", "RegistryView", "UDP_MTU"]
