"""Real-socket UDP transport for the threaded runtime.

Each node maps to a UDP socket on 127.0.0.1. Unicast is a plain ``sendto``;
multicast groups are emulated with a shared in-process membership registry
and sender-side fan-out (loopback interfaces rarely support true IGMP, and
the runtime is single-process anyway). The PEPt layering means nothing
above this module can tell the difference.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, Optional, Set, Tuple

from repro.simnet.addressing import Address, GroupName
from repro.simnet.packet import Destination
from repro.transport.base import RawReceiver
from repro.util.errors import TransportError

#: Loopback-safe datagram size.
UDP_MTU = 8192


class UdpNetwork:
    """Shared state of one threaded-runtime 'LAN': node → socket address
    mapping plus multicast membership."""

    def __init__(self, host: str = "127.0.0.1", base_port: int = 0):
        self.host = host
        self.base_port = base_port  # 0 = ephemeral ports chosen by the OS
        self._lock = threading.Lock()
        self._node_to_sockaddr: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._sockaddr_to_node: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._groups: Dict[GroupName, Set[Tuple[str, int]]] = {}

    def create_transport(self, node: str) -> "UdpTransport":
        return UdpTransport(self, node)

    # -- registry used by transports ----------------------------------------
    def _register(self, node: str, port: int, sockaddr: Tuple[str, int]) -> None:
        with self._lock:
            self._node_to_sockaddr[(node, port)] = sockaddr
            self._sockaddr_to_node[sockaddr] = (node, port)

    def _unregister(self, node: str, port: int) -> None:
        with self._lock:
            sockaddr = self._node_to_sockaddr.pop((node, port), None)
            if sockaddr is not None:
                self._sockaddr_to_node.pop(sockaddr, None)

    def _resolve(self, address: Address) -> Optional[Tuple[str, int]]:
        with self._lock:
            return self._node_to_sockaddr.get((address.node, address.port))

    def _source_of(self, sockaddr: Tuple[str, int]) -> Optional[Address]:
        with self._lock:
            entry = self._sockaddr_to_node.get(sockaddr)
        if entry is None:
            return None
        return Address(entry[0], entry[1])

    def _join(self, node: str, port: int, group: GroupName) -> None:
        with self._lock:
            self._groups.setdefault(group, set()).add((node, port))

    def _leave(self, node: str, port: int, group: GroupName) -> None:
        with self._lock:
            members = self._groups.get(group)
            if members:
                members.discard((node, port))

    def _members(self, group: GroupName) -> Set[Tuple[str, int]]:
        with self._lock:
            return set(self._groups.get(group, set()))


class UdpTransport:
    """A :class:`RawTransport` over one real UDP socket."""

    def __init__(self, network: UdpNetwork, node: str):
        self._network = network
        self._node = node
        self._port: Optional[int] = None
        self._socket: Optional[socket.socket] = None
        self._receiver: Optional[RawReceiver] = None
        self._thread: Optional[threading.Thread] = None
        self._closing = False

    @property
    def node(self) -> str:
        return self._node

    @property
    def mtu(self) -> int:
        return UDP_MTU

    def open(self, port: int, receiver: RawReceiver) -> Address:
        if self._socket is not None:
            raise TransportError("transport already open")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind((self._network.host, 0 if self._network.base_port == 0 else 0))
        sock.settimeout(0.2)
        self._socket = sock
        self._port = port
        self._receiver = receiver
        self._network._register(self._node, port, sock.getsockname())
        self._closing = False
        self._thread = threading.Thread(
            target=self._recv_loop, name=f"udp-{self._node}", daemon=True
        )
        self._thread.start()
        return Address(self._node, port)

    def send_bytes(self, destination: Destination, payload: bytes) -> None:
        if self._socket is None:
            raise TransportError("transport not open")
        if len(payload) > UDP_MTU:
            raise TransportError(f"payload exceeds UDP MTU {UDP_MTU}")
        if isinstance(destination, GroupName):
            members = self._network._members(destination)
            for node, port in sorted(members):
                if (node, port) == (self._node, self._port):
                    continue
                sockaddr = self._network._resolve(Address(node, port))
                if sockaddr is not None:
                    self._socket.sendto(payload, sockaddr)
        else:
            sockaddr = self._network._resolve(destination)
            if sockaddr is None:
                return  # unknown destination: dropped, like a LAN
            self._socket.sendto(payload, sockaddr)

    def join(self, group: GroupName) -> None:
        if self._port is None:
            raise TransportError("transport not open")
        self._network._join(self._node, self._port, group)

    def leave(self, group: GroupName) -> None:
        if self._port is not None:
            self._network._leave(self._node, self._port, group)

    def close(self) -> None:
        self._closing = True
        if self._socket is not None:
            self._network._unregister(self._node, self._port)
            if self._thread is not None:
                self._thread.join(timeout=1.0)
            self._socket.close()
            self._socket = None

    # -- internals -----------------------------------------------------------
    def _recv_loop(self) -> None:
        while not self._closing:
            try:
                payload, sockaddr = self._socket.recvfrom(UDP_MTU + 1)
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed
            source = self._network._source_of(sockaddr)
            if source is None:
                source = Address("unknown", 0)
            receiver = self._receiver
            if receiver is not None:
                receiver(payload, source)


__all__ = ["UdpNetwork", "UdpTransport", "UDP_MTU"]
