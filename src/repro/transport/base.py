"""The raw (bytes-level) transport interface."""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.simnet.addressing import Address, GroupName
from repro.simnet.packet import Destination

#: Callback invoked with (payload, source_address) for every datagram.
RawReceiver = Callable[[bytes, Address], None]


@runtime_checkable
class RawTransport(Protocol):
    """Moves opaque datagrams between nodes.

    Implementations must support unicast to an :class:`Address`, multicast
    to a :class:`GroupName`, and group membership management. They never
    interpret payloads.
    """

    @property
    def node(self) -> str:
        """The local node identifier."""
        ...

    @property
    def mtu(self) -> int:
        """Largest payload (bytes) accepted by :meth:`send_bytes`."""
        ...

    def open(self, port: int, receiver: RawReceiver) -> Address:
        """Bind the local endpoint and start delivering datagrams to
        ``receiver``. Returns the bound address."""
        ...

    def send_bytes(self, destination: Destination, payload: bytes) -> None:
        """Emit one datagram."""
        ...

    def join(self, group: GroupName) -> None:
        ...

    def leave(self, group: GroupName) -> None:
        ...

    def close(self) -> None:
        ...


__all__ = ["RawTransport", "RawReceiver"]
