"""In-process transport hub.

The threaded runtime's zero-dependency transport: containers in one OS
process exchange datagrams through a shared :class:`InProcHub`. Delivery is
synchronous by default, or deferred through a scheduler callable for
runtimes that need decoupled call stacks.

Also useful in unit tests as the smallest possible RawTransport.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Set, Tuple

from repro.simnet.addressing import Address, GroupName
from repro.simnet.packet import Destination
from repro.transport.base import RawReceiver
from repro.util.errors import TransportError

Dispatcher = Callable[[Callable[[], None]], None]


class InProcHub:
    """Shared medium connecting :class:`InProcTransport` instances.

    ``dispatcher`` (if given) receives zero-arg thunks to run; the default
    executes them inline, which mirrors loopback UDP's synchronous delivery.
    """

    def __init__(self, dispatcher: Optional[Dispatcher] = None, mtu: int = 65507):
        self._endpoints: Dict[Tuple[str, int], "InProcTransport"] = {}
        self._groups: Dict[GroupName, Set[Tuple[str, int]]] = {}
        self._dispatcher = dispatcher or (lambda thunk: thunk())
        self._lock = threading.Lock()
        self.mtu = mtu

    def create_transport(self, node: str) -> "InProcTransport":
        return InProcTransport(self, node)

    # -- registry used by transports ----------------------------------------
    def _bind(self, transport: "InProcTransport", port: int) -> None:
        key = (transport.node, port)
        with self._lock:
            if key in self._endpoints:
                raise TransportError(f"address {key} already bound")
            self._endpoints[key] = transport

    def _unbind(self, transport: "InProcTransport", port: int) -> None:
        with self._lock:
            self._endpoints.pop((transport.node, port), None)

    def _join(self, transport: "InProcTransport", port: int, group: GroupName) -> None:
        with self._lock:
            self._groups.setdefault(group, set()).add((transport.node, port))

    def _leave(self, transport: "InProcTransport", port: int, group: GroupName) -> None:
        with self._lock:
            members = self._groups.get(group)
            if members:
                members.discard((transport.node, port))

    def _send(self, source: Address, destination: Destination, payload: bytes) -> None:
        if len(payload) > self.mtu:
            raise TransportError(f"payload exceeds in-proc MTU {self.mtu}")
        if isinstance(destination, GroupName):
            with self._lock:
                targets = sorted(self._groups.get(destination, set()))
        else:
            targets = [(destination.node, destination.port)]
        for key in targets:
            if key == (source.node, source.port):
                continue  # no multicast loopback to self by default
            with self._lock:
                endpoint = self._endpoints.get(key)
            if endpoint is None:
                continue
            self._dispatcher(lambda ep=endpoint, p=payload: ep._deliver(p, source))


class InProcTransport:
    """A :class:`RawTransport` endpoint on an :class:`InProcHub`."""

    def __init__(self, hub: InProcHub, node: str):
        self._hub = hub
        self._node = node
        self._port: Optional[int] = None
        self._receiver: Optional[RawReceiver] = None

    @property
    def node(self) -> str:
        return self._node

    @property
    def mtu(self) -> int:
        return self._hub.mtu

    def open(self, port: int, receiver: RawReceiver) -> Address:
        if self._port is not None:
            raise TransportError("transport already open")
        self._hub._bind(self, port)
        self._port = port
        self._receiver = receiver
        return Address(self._node, port)

    def send_bytes(self, destination: Destination, payload: bytes) -> None:
        if self._port is None:
            raise TransportError("transport not open")
        self._hub._send(Address(self._node, self._port), destination, payload)

    def join(self, group: GroupName) -> None:
        if self._port is None:
            raise TransportError("transport not open")
        self._hub._join(self, self._port, group)

    def leave(self, group: GroupName) -> None:
        if self._port is not None:
            self._hub._leave(self, self._port, group)

    def close(self) -> None:
        if self._port is not None:
            self._hub._unbind(self, self._port)
            self._port = None
            self._receiver = None

    def _deliver(self, payload: bytes, source: Address) -> None:
        if self._receiver is not None:
            self._receiver(payload, source)


__all__ = ["InProcHub", "InProcTransport"]
