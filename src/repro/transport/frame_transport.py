"""Adapter between Protocol-layer frames and a raw byte transport.

Encodes outbound :class:`Frame` objects, transparently fragmenting any that
exceed the transport MTU; decodes and reassembles inbound datagrams. This is
the seam between the PEPt Protocol and Transport subsystems, so swapping the
transport (sim / in-proc / UDP) never touches protocol code.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.protocol.batching import decode_batch_payload
from repro.protocol.fragmentation import Fragmenter, Reassembler
from repro.protocol.frames import Frame, MessageKind
from repro.simnet.addressing import Address
from repro.simnet.packet import Destination
from repro.transport.base import RawTransport
from repro.util.clock import Clock
from repro.util.errors import EncodingError, ProtocolError

#: Callback invoked with (frame, source_address) for each inbound frame.
FrameReceiver = Callable[[Frame, Address], None]


class FrameTransport:
    """Frame-level send/receive over any :class:`RawTransport`."""

    def __init__(
        self,
        raw: RawTransport,
        clock: Clock,
        source: str,
        on_protocol_error: Optional[Callable[[Exception, Address], None]] = None,
    ):
        self._raw = raw
        self._clock = clock
        # Scatter/gather fast path: a transport that can put a buffer list
        # on the wire directly (socket.sendmsg) skips the datagram join.
        self._send_buffers = getattr(raw, "send_buffers", None)
        self._fragmenter = Fragmenter(source, raw.mtu)
        self._reassembler = Reassembler()
        self._receiver: Optional[FrameReceiver] = None
        self._on_protocol_error = on_protocol_error
        self.fragmented_messages = 0
        self.malformed_datagrams = 0
        self.batched_datagrams = 0
        self.unbatched_frames = 0

    def set_protocol_error_handler(
        self, handler: Callable[[Exception, Address], None]
    ) -> None:
        """Register the malformed-datagram hook after construction — the
        container uses it to feed undecodable traffic into admission
        quarantine scoring."""
        self._on_protocol_error = handler

    # -- lifecycle -----------------------------------------------------------
    def open(self, port: int, receiver: FrameReceiver) -> Address:
        self._receiver = receiver
        return self._raw.open(port, self._on_datagram)

    def close(self) -> None:
        self._raw.close()

    @property
    def node(self) -> str:
        return self._raw.node

    @property
    def mtu(self) -> int:
        return self._raw.mtu

    @property
    def supports_scatter(self) -> bool:
        """Whether the raw transport accepts scatter/gather buffer lists —
        the signal for upstream stages to keep datagrams unjoined."""
        return self._send_buffers is not None

    # -- sending ---------------------------------------------------------------
    def send(self, destination: Destination, frame: Frame) -> None:
        if self._send_buffers is not None:
            views = frame.encode_views()
            total = sum(len(v) for v in views)
            if total <= self._raw.mtu:
                self._send_buffers(destination, views)
                return
            encoded = b"".join(views)
        else:
            encoded = frame.encode()
            if len(encoded) <= self._raw.mtu:
                self._raw.send_bytes(destination, encoded)
                return
        self.fragmented_messages += 1
        for fragment in self._fragmenter.fragment(encoded):
            self._raw.send_bytes(destination, fragment.encode())

    def join(self, group) -> None:
        self._raw.join(group)

    def leave(self, group) -> None:
        self._raw.leave(group)

    # -- housekeeping ------------------------------------------------------------
    def on_tick(self, now: Optional[float] = None) -> None:
        """Expire stale partial reassemblies; call periodically."""
        self._reassembler.expire(self._clock.now() if now is None else now)

    # -- receive path ---------------------------------------------------------
    def _on_datagram(self, payload: bytes, source: Address) -> None:
        try:
            frame = Frame.decode(payload)
            if frame.kind == MessageKind.FRAGMENT:
                complete = self._reassembler.on_fragment(frame, self._clock.now())
                if complete is None:
                    return
                frame = Frame.decode(complete)
            if frame.kind == MessageKind.BATCH:
                # Transparent unbatching: each inner frame enters the normal
                # dispatch path exactly as if it had arrived alone.
                inner_frames = decode_batch_payload(frame.payload)
                self.batched_datagrams += 1
                self.unbatched_frames += len(inner_frames)
                if self._receiver is not None:
                    for inner in inner_frames:
                        self._receiver(inner, source)
                return
        except (ProtocolError, EncodingError) as exc:
            self.malformed_datagrams += 1
            if self._on_protocol_error is not None:
                self._on_protocol_error(exc, source)
            return
        if self._receiver is not None:
            self._receiver(frame, source)


__all__ = ["FrameTransport", "FrameReceiver"]
