"""Batch-I/O UDP transport for the asyncio runtime.

The threaded transport (:mod:`repro.transport.udp`) spends one blocking
``recvfrom`` thread per container and posts one reactor closure per
datagram; every send is one ``sendto`` after a registry lock round-trip.
This module rebuilds the same :class:`~repro.transport.base.RawTransport`
contract for throughput on an asyncio event loop:

- **Burst ingress.** The socket is non-blocking and registered with the
  loop's selector. One readable callback drains the socket in a tight
  ``recvmsg_into`` loop over a preallocated buffer ring — up to
  ``recv_burst`` datagrams per wakeup — and delivers the whole burst to
  the receiver inline. There is no cross-thread post at all: the loop
  thread *is* the serialization domain.
- **Scatter/gather egress.** :meth:`send_buffers` accepts the unjoined
  buffer list produced by ``Frame.encode_views`` / the zero-copy batcher
  and hands it to ``socket.sendmsg`` as-is, so a datagram is never
  materialized contiguously in userspace. Sends queue on a deque drained
  by one ``call_soon`` callback per burst; when the socket buffer fills,
  the drain re-arms on writability instead of dropping or spinning.
- **Lock-free resolution.** Destination and multicast-member lookups read
  the shared :class:`~repro.transport.udp.UdpNetwork` copy-on-write
  snapshot — no lock, no per-send sort; fan-out walks a pre-sorted,
  pre-resolved member tuple.

Where ``recvmsg_into``/``sendmsg`` are missing (non-POSIX stacks), the
transport degrades to ``recvfrom``/``sendto`` loops with identical
semantics. The registry (and therefore interop) is shared with the
threaded transport: both runtimes speak the same wire over the same
:class:`UdpNetwork`.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.simnet.addressing import Address, GroupName
from repro.simnet.packet import Destination
from repro.transport.base import RawReceiver
from repro.transport.udp import UDP_MTU, UdpNetwork
from repro.util.errors import TransportError

_HAS_RECVMSG_INTO = hasattr(socket.socket, "recvmsg_into")
_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")

#: Default cap on datagrams drained per readable wakeup — bounds how long
#: one burst can monopolize the loop before timers get a turn.
RECV_BURST = 64


class AsyncUdpTransport:
    """A :class:`RawTransport` over one non-blocking UDP socket on an
    asyncio event loop.

    All methods must be called on the loop thread (the runtime's
    serialization domain) — which is where container code runs anyway.
    """

    def __init__(
        self,
        network: UdpNetwork,
        node: str,
        loop,
        recv_burst: int = RECV_BURST,
    ):
        self._network = network
        self._node = node
        self._loop = loop
        self._port: Optional[int] = None
        self._socket: Optional[socket.socket] = None
        self._receiver: Optional[RawReceiver] = None
        self._recv_burst = recv_burst
        # Preallocated ingress ring: recvmsg_into fills these in place, so
        # steady-state receive allocates only the right-sized copy-out, not
        # a fresh MTU-sized buffer per datagram. Slots are reused round-
        # robin within a burst; payloads are copied out before reuse.
        self._ring = [bytearray(UDP_MTU + 1) for _ in range(min(recv_burst, 16))]
        self._ring_views = [memoryview(buf) for buf in self._ring]
        # Egress queue of (sockaddr, buffer-list) pairs; armed at most one
        # drain callback at a time.
        self._egress: Deque[Tuple[Tuple[str, int], Sequence[bytes]]] = deque()
        self._drain_armed = False
        self._writer_armed = False
        self._closing = False
        # Telemetry for the benchmark/tests.
        self.recv_wakeups = 0
        self.recv_datagrams = 0
        self.sent_datagrams = 0
        self.send_drains = 0
        self.send_blocked = 0

    @property
    def node(self) -> str:
        return self._node

    @property
    def mtu(self) -> int:
        return UDP_MTU

    # -- lifecycle -----------------------------------------------------------
    def open(self, port: int, receiver: RawReceiver) -> Address:
        if self._socket is not None:
            raise TransportError("transport already open")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        bind_port = self._network._allot_bind_port()
        try:
            sock.bind((self._network.host, bind_port))
        except OSError as exc:
            sock.close()
            raise TransportError(
                f"cannot bind UDP port {bind_port} for node {self._node!r}: {exc}"
            ) from exc
        sock.setblocking(False)
        self._socket = sock
        self._port = port
        self._receiver = receiver
        self._closing = False
        self._network._register(self._node, port, sock.getsockname())
        self._loop.add_reader(sock.fileno(), self._on_readable)
        return Address(self._node, port)

    def close(self) -> None:
        self._closing = True
        sock = self._socket
        if sock is None:
            return
        self._network._unregister(self._node, self._port)
        self._loop.remove_reader(sock.fileno())
        if self._writer_armed:
            self._loop.remove_writer(sock.fileno())
            self._writer_armed = False
        # Best-effort flush of anything still queued (BYE frames, final
        # ACKs); a full socket buffer at close time drops the tail, which
        # is what a real NIC would do too.
        while self._egress:
            sockaddr, views = self._egress.popleft()
            try:
                self._sendmsg(sock, views, sockaddr)
            except OSError:
                break
        self._egress.clear()
        sock.close()
        self._socket = None

    # -- egress ----------------------------------------------------------------
    def send_bytes(self, destination: Destination, payload: bytes) -> None:
        self.send_buffers(destination, (payload,))

    def send_buffers(
        self, destination: Destination, views: Sequence[bytes]
    ) -> None:
        """Queue one datagram given as an unjoined buffer list."""
        if self._socket is None:
            raise TransportError("transport not open")
        total = sum(len(v) for v in views)
        if total > UDP_MTU:
            raise TransportError(f"payload exceeds UDP MTU {UDP_MTU}")
        view = self._network.view  # one atomic read; no lock on the send path
        egress = self._egress
        if isinstance(destination, GroupName):
            for node, port, sockaddr in view.groups.get(destination, ()):
                if node == self._node and port == self._port:
                    continue
                egress.append((sockaddr, views))
        else:
            sockaddr = view.node_to_sockaddr.get(
                (destination.node, destination.port)
            )
            if sockaddr is None:
                return  # unknown destination: dropped, like a LAN
            egress.append((sockaddr, views))
        if egress and not self._drain_armed and not self._writer_armed:
            self._drain_armed = True
            self._loop.call_soon(self._drain_egress)

    def _drain_egress(self) -> None:
        """Send every queued datagram in one callback; on a full socket
        buffer, re-arm on writability instead of busy-retrying."""
        self._drain_armed = False
        sock = self._socket
        if sock is None:
            return
        egress = self._egress
        self.send_drains += 1
        while egress:
            sockaddr, views = egress[0]
            try:
                self._sendmsg(sock, views, sockaddr)
            except (BlockingIOError, InterruptedError):
                self.send_blocked += 1
                if not self._writer_armed:
                    self._writer_armed = True
                    self._loop.add_writer(sock.fileno(), self._on_writable)
                return
            except OSError:
                egress.clear()  # socket torn down underneath us
                return
            egress.popleft()
            self.sent_datagrams += 1

    def _on_writable(self) -> None:
        sock = self._socket
        if sock is not None:
            self._loop.remove_writer(sock.fileno())
        self._writer_armed = False
        self._drain_egress()

    if _HAS_SENDMSG:

        @staticmethod
        def _sendmsg(sock, views: Sequence[bytes], sockaddr) -> None:
            sock.sendmsg(views, (), 0, sockaddr)

    else:  # pragma: no cover — non-POSIX fallback

        @staticmethod
        def _sendmsg(sock, views: Sequence[bytes], sockaddr) -> None:
            sock.sendto(b"".join(views), sockaddr)

    # -- ingress ---------------------------------------------------------------
    def _on_readable(self) -> None:
        """Drain the socket in one wakeup and deliver the burst inline."""
        sock = self._socket
        if sock is None or self._closing:
            return
        receiver = self._receiver
        network_view = self._network.view
        ring = self._ring_views
        slots = len(ring)
        self.recv_wakeups += 1
        for i in range(self._recv_burst):
            try:
                if _HAS_RECVMSG_INTO:
                    slot = ring[i % slots]
                    nbytes, _anc, _flags, sockaddr = sock.recvmsg_into(
                        (slot,), 0
                    )
                    payload = bytes(slot[:nbytes])
                else:  # pragma: no cover — non-POSIX fallback
                    payload, sockaddr = sock.recvfrom(UDP_MTU + 1)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                return  # socket closed underneath us
            self.recv_datagrams += 1
            entry = network_view.sockaddr_to_node.get(sockaddr)
            source = (
                Address(entry[0], entry[1])
                if entry is not None
                else _UNKNOWN_SOURCE
            )
            if receiver is not None:
                receiver(payload, source)
        # Anything still queued re-triggers the (level-triggered) selector
        # on the next loop pass, so timers never starve behind a flood.

    # -- groups ----------------------------------------------------------------
    def join(self, group: GroupName) -> None:
        if self._port is None:
            raise TransportError("transport not open")
        self._network._join(self._node, self._port, group)

    def leave(self, group: GroupName) -> None:
        if self._port is not None:
            self._network._leave(self._node, self._port, group)


_UNKNOWN_SOURCE = Address("unknown", 0)


__all__ = ["AsyncUdpTransport", "RECV_BURST"]
