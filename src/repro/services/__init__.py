"""Service programming model and the standard avionics services.

Services are "semantic units that behave as producers of data and as
consumers of data coming from other services" (§3). They subclass
:class:`Service`, declare provisions and subscriptions in ``on_start``
through their :class:`ServiceContext`, and never touch the network.

The standard services implement the §5 image-processing scenario:
GPS, Camera, Storage, VideoProcessing, MissionControl and GroundStation.
"""

from repro.services.ahrs import AhrsService
from repro.services.base import Service, ServiceContext
from repro.services.camera import CameraService
from repro.services.deploy import DeploymentService
from repro.services.gps import GpsService
from repro.services.ground import GroundStationService
from repro.services.mission import MissionControlService
from repro.services.storage import StorageService
from repro.services.videoproc import VideoProcessingService

__all__ = [
    "Service",
    "ServiceContext",
    "GpsService",
    "CameraService",
    "StorageService",
    "VideoProcessingService",
    "MissionControlService",
    "GroundStationService",
    "DeploymentService",
    "AhrsService",
]
