"""Dynamic service deployment — §4.4's code-upload use case.

The file primitive exists for "generated photography images, configuration
files or *services program code to be uploaded to the service containers*".
This service implements that last case: it subscribes to a per-node
deployment resource; each completed revision is executed as a Python module
that must define ``create_service() -> Service``; the produced service is
(re)installed in the local container.

Revisions are hot upgrades: the previously deployed instance is stopped
and uninstalled before the new revision starts — the mechanism behind the
paper's "same platform … variety of missions with little reconfiguration
time and overhead".

The code is executed with full interpreter privileges, exactly like the
paper's prototype would load an uploaded assembly; deployments must come
from the trusted mission-control domain. (The simulated network has no
untrusted parties.)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.services.base import Service


def deployment_resource(container_id: str) -> str:
    """The file-resource name carrying code for one container."""
    return f"deploy.{container_id}"


class DeploymentService(Service):
    """Installs services from uploaded source code.

    Parameters
    ----------
    resource:
        File resource to watch; defaults to ``deploy.<container-id>``.
    """

    def __init__(self, name: str = "deploy", resource: Optional[str] = None):
        super().__init__(name)
        self.resource = resource
        self.deployed_name: Optional[str] = None
        self.deployed_revision = 0
        self.failed_deployments: Dict[int, str] = {}

    def on_start(self) -> None:
        resource = self.resource or deployment_resource(self.ctx.container_id)
        self.ctx.subscribe_file(resource, on_complete=self._install)

    # -- internals -----------------------------------------------------------
    def _install(self, code: bytes, revision: int) -> None:
        container = self._container()
        try:
            namespace: dict = {}
            exec(  # noqa: S102 — the §4.4 code-upload semantics
                compile(code, f"<deployed rev {revision}>", "exec"), namespace
            )
            factory = namespace.get("create_service")
            if not callable(factory):
                raise ValueError("uploaded code defines no create_service()")
            service = factory()
            if not isinstance(service, Service):
                raise TypeError("create_service() must return a Service")
        except Exception as exc:  # noqa: BLE001 — a bad upload must not kill us
            self.failed_deployments[revision] = repr(exc)
            self.ctx.log(f"deployment rev {revision} rejected: {exc!r}")
            return
        # Hot upgrade: retire the previous revision first.
        if self.deployed_name is not None:
            try:
                container.uninstall_service(self.deployed_name)
                self.ctx.log(f"retired {self.deployed_name} (rev {self.deployed_revision})")
            except Exception:  # noqa: BLE001 — already gone is fine
                pass
        container.install_service(service)
        self.deployed_name = str(service.name)
        self.deployed_revision = revision
        self.ctx.log(f"deployed {service.name} (rev {revision})")

    def _container(self):
        return self.ctx._container


__all__ = ["DeploymentService", "deployment_resource"]
