"""The Video Processing service — the simulated FPGA payload.

Told by Mission Control (remote invocation) which image resources to
process; receives them through the multicast file primitive; "if the video
process detects the pre-programmed characteristics in the image it can
notify the GS and MC" (§5) with a ``video.detection`` event.
"""

from __future__ import annotations


from repro.encoding.schema import DETECTION_SCHEMA
from repro.encoding.types import BOOL, FLOAT64, STRING
from repro.imaging import decode_pgm, detect_features
from repro.services.base import Service
from repro.services.names import EVT_DETECTION, FN_VIDEO_PROCESS


class VideoProcessingService(Service):
    """Feature detection over incoming image resources.

    Parameters
    ----------
    min_features:
        Detections with fewer features than this are not reported.
    processing_delay:
        Modelled FPGA pipeline latency per frame, seconds.
    """

    def __init__(
        self,
        name: str = "video",
        min_features: int = 1,
        processing_delay: float = 0.08,
    ):
        super().__init__(name)
        self.min_features = min_features
        self.processing_delay = processing_delay
        self.frames_processed = 0
        self.detections = 0
        self._detection_event = None

    def on_start(self) -> None:
        self._detection_event = self.ctx.provide_event(EVT_DETECTION, DETECTION_SCHEMA)
        self.ctx.provide_function(
            FN_VIDEO_PROCESS,
            self._process_request,
            params=[STRING, FLOAT64],
            result=BOOL,
        )

    # -- remote invocation target -------------------------------------------------
    def _process_request(self, resource: str, threshold: float) -> bool:
        """Subscribe to an image resource; process each completed revision."""
        self.ctx.subscribe_file(
            resource,
            on_complete=lambda data, revision: self._enqueue(resource, data, threshold),
        )
        return True

    # -- processing pipeline --------------------------------------------------------
    def _enqueue(self, resource: str, data: bytes, threshold: float) -> None:
        # Model the FPGA pipeline latency, then run the detector.
        self.ctx.schedule(
            self.processing_delay, lambda: self._process(resource, data, threshold)
        )

    def _process(self, resource: str, data: bytes, threshold: float) -> None:
        image = decode_pgm(data)
        result = detect_features(image)
        self.frames_processed += 1
        if result.feature_count >= self.min_features and result.score >= threshold:
            self.detections += 1
            self._detection_event.raise_event(
                {
                    "resource": resource,
                    "feature_count": result.feature_count,
                    "score": result.score,
                    "lat": 0.0,  # enriched by MC, which knows the photo position
                    "lon": 0.0,
                }
            )
            self.ctx.log(
                f"detection in {resource}: {result.feature_count} features "
                f"(score {result.score:.2f})"
            )
        else:
            self.ctx.log(f"{resource}: nothing above threshold")


__all__ = ["VideoProcessingService"]
