"""Well-known primitive names shared by the standard avionics services.

Services find each other purely by these names (§3 name management); keeping
them in one module documents the contract of the §5 scenario.
"""

# Variables
VAR_POSITION = "gps.position"
VAR_MISSION_STATUS = "mission.status"

# Events
EVT_PHOTO_REQUEST = "mission.photo_request"
EVT_PHOTO_TAKEN = "camera.photo_taken"
EVT_DETECTION = "video.detection"
EVT_MISSION_COMPLETE = "mission.complete"
EVT_ALARM = "system.alarm"

# Functions
FN_CAMERA_CONFIGURE = "camera.configure"
FN_STORAGE_STORE = "storage.store_request"
FN_STORAGE_LOG_VARIABLE = "storage.log_variable"
FN_STORAGE_READ = "storage.read"
FN_STORAGE_LIST = "storage.list"
FN_STORAGE_DELETE = "storage.delete"
FN_VIDEO_PROCESS = "video.process_request"

# Devices (exclusive-mode node resources)
DEV_CAMERA = "camera0"


def photo_resource(prefix: str, waypoint_index: int) -> str:
    """The file-resource name for the photo taken at one waypoint."""
    return f"{prefix}.{waypoint_index}"


__all__ = [name for name in dir() if name.isupper()] + ["photo_resource"]
