"""The GPS service.

"The starting service is the GPS which generates the position variable
containing the geographic coordinates" (§5). It owns the (simulated)
airframe: each tick it advances the kinematic model and publishes a
position sample — "a high rate changing data [where] the consumer services
can lost some values without problem", hence the variable primitive.
"""

from __future__ import annotations


from repro.encoding.schema import POSITION_SCHEMA
from repro.flight.dynamics import KinematicUav
from repro.services.base import Service
from repro.services.names import VAR_POSITION


class GpsService(Service):
    """Publishes ``gps.position`` while flying the injected airframe model.

    Parameters
    ----------
    uav:
        The kinematic model to sample (and step).
    rate_hz:
        Publication rate; 5 Hz is typical for a navigation-grade receiver.
    validity:
        Variable validity QoS (seconds a sample stays usable).
    """

    def __init__(
        self,
        uav: KinematicUav,
        name: str = "gps",
        rate_hz: float = 5.0,
        validity: float = 1.0,
    ):
        super().__init__(name)
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        self.uav = uav
        self.rate_hz = rate_hz
        self.validity = validity
        self._publication = None
        self._ticker = None

    def on_start(self) -> None:
        period = 1.0 / self.rate_hz
        self._publication = self.ctx.provide_variable(
            VAR_POSITION, POSITION_SCHEMA, validity=self.validity, period=period
        )
        self._ticker = self.ctx.every(period, self._tick)

    def on_stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()

    # -- internals -----------------------------------------------------------
    def _tick(self) -> None:
        self.uav.step(1.0 / self.rate_hz)
        state = self.uav.state
        self._publication.publish(
            {
                "lat": state.position.lat,
                "lon": state.position.lon,
                "alt": state.position.alt,
                "ground_speed": state.ground_speed,
                "heading": state.heading,
                "timestamp": self.ctx.now(),
            }
        )


__all__ = ["GpsService"]
