"""The Storage service.

"A generic service that provides storage and retrieval of data by providing
access to an inner file system. It is told to store the photos and the GPS
positions by the MC." (§5)

Storage quota is enforced through the container's resource manager (§3).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.encoding.types import BOOL, BYTES, STRING, VectorType
from repro.services.base import Service
from repro.services.names import (
    FN_STORAGE_DELETE,
    FN_STORAGE_LIST,
    FN_STORAGE_LOG_VARIABLE,
    FN_STORAGE_READ,
    FN_STORAGE_STORE,
)
from repro.util.errors import ResourceError


class StorageService(Service):
    """The inner file system exposed through remote invocation."""

    def __init__(self, name: str = "storage"):
        super().__init__(name)
        self._objects: Dict[str, bytes] = {}
        self._variable_logs: Dict[str, List[dict]] = {}
        self.stored_files = 0

    def on_start(self) -> None:
        self.ctx.provide_function(
            FN_STORAGE_STORE, self._store_request, params=[STRING], result=BOOL
        )
        self.ctx.provide_function(
            FN_STORAGE_LOG_VARIABLE, self._log_variable, params=[STRING], result=BOOL
        )
        self.ctx.provide_function(
            FN_STORAGE_READ, self._read, params=[STRING], result=BYTES
        )
        self.ctx.provide_function(
            FN_STORAGE_LIST, self._list, params=[], result=VectorType(STRING)
        )
        self.ctx.provide_function(
            FN_STORAGE_DELETE, self._delete, params=[STRING], result=BOOL
        )

    # -- remote invocation targets --------------------------------------------
    def _store_request(self, resource: str) -> bool:
        """Subscribe to a file resource and keep every completed revision."""
        self.ctx.subscribe_file(
            resource,
            on_complete=lambda data, revision: self._put(resource, data),
        )
        return True

    def _log_variable(self, variable: str) -> bool:
        """Subscribe to a variable and append each sample to a log object."""
        if variable in self._variable_logs:
            return True
        self._variable_logs[variable] = []
        self.ctx.subscribe_variable(
            variable,
            on_sample=lambda value, ts: self._append_log(variable, value, ts),
        )
        return True

    def _read(self, name: str) -> bytes:
        log = self._variable_logs.get(name)
        if log is not None:
            return json.dumps(log).encode("utf-8")
        data = self._objects.get(name)
        if data is None:
            raise ResourceError(f"no stored object {name!r}")
        return data

    def _list(self) -> List[str]:
        return sorted(set(self._objects) | set(self._variable_logs))

    def _delete(self, name: str) -> bool:
        data = self._objects.pop(name, None)
        if data is None:
            return False
        self.ctx.release_storage(len(data))
        return True

    # -- internals -----------------------------------------------------------
    def _put(self, name: str, data: bytes) -> None:
        old = self._objects.get(name)
        if old is not None:
            self.ctx.release_storage(len(old))
        self.ctx.allocate_storage(len(data))
        self._objects[name] = data
        self.stored_files += 1
        self.ctx.log(f"stored {name} ({len(data)} B)")

    def _append_log(self, variable: str, value, timestamp: float) -> None:
        self._variable_logs[variable].append(
            {"t": timestamp, "value": value}
        )

    # -- inspection helpers (used by tests and examples) ------------------------
    def stored_names(self) -> List[str]:
        return sorted(self._objects)

    def object(self, name: str) -> bytes:
        return self._objects[name]

    def variable_log(self, variable: str) -> List[dict]:
        return list(self._variable_logs.get(variable, []))


__all__ = ["StorageService"]
