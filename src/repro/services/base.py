"""Service base class and its context facade.

The context is the *entire* public API a service sees: the four primitives,
timers, node resources and logging. Every callback that crosses the
context is wrapped in a guard so one faulty service is isolated — the
container marks it FAILED and withdraws its provisions instead of crashing
the node (§3 service management).
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.encoding.types import DataType
from repro.util.errors import ServiceError
from repro.util.ids import ServiceName


class Service:
    """Base class of every middleware service.

    Subclasses override :meth:`on_start` (declare provisions, subscriptions
    and timers through ``self.ctx``) and optionally :meth:`on_stop`.
    """

    def __init__(self, name: str):
        self.name = ServiceName(name)
        self.ctx: Optional[ServiceContext] = None

    # -- wired by the container ----------------------------------------------
    def _attach(self, container, record) -> None:
        self.ctx = ServiceContext(container, self)

    # -- lifecycle hooks ------------------------------------------------------
    def on_start(self) -> None:
        """Declare provisions and subscriptions; runs in STARTING state."""

    def on_stop(self) -> None:
        """Release anything :meth:`on_start` acquired outside the context
        (context-tracked timers and provisions are cleaned automatically)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ServiceContext:
    """A service's window onto its container."""

    def __init__(self, container, service: Service):
        self._container = container
        self._service = service
        self._timers: List[object] = []
        self.log_lines: List[Tuple[float, str]] = []

    # -- identity ---------------------------------------------------------------
    @property
    def service_name(self) -> str:
        return str(self._service.name)

    @property
    def container_id(self) -> str:
        return self._container.id

    def now(self) -> float:
        return self._container.clock.now()

    # -- variables (§4.1) ---------------------------------------------------------
    def provide_variable(
        self,
        name: str,
        datatype: DataType,
        validity: float = 0.0,
        period: float = 0.0,
    ):
        """Offer a variable this service will publish."""
        return self._container.variables.provide(
            name, datatype, validity=validity, period=period,
            service=self.service_name,
        )

    def subscribe_variable(
        self,
        name: str,
        on_sample: Optional[Callable[[Any, float], None]] = None,
        on_timeout: Optional[Callable[[str], None]] = None,
        initial: bool = False,
    ):
        """Subscribe to a variable by name; callbacks are failure-guarded."""
        return self._container.variables.subscribe(
            name,
            on_sample=self.guard(on_sample) if on_sample else None,
            on_timeout=self.guard(on_timeout) if on_timeout else None,
            initial=initial,
            service=self.service_name,
        )

    # -- events (§4.2) ---------------------------------------------------------
    def provide_event(self, name: str, datatype: Optional[DataType] = None):
        """Offer an event this service will raise."""
        return self._container.events.provide(
            name, datatype, service=self.service_name
        )

    def subscribe_event(self, name: str, on_event: Callable[[Any, float], None]):
        return self._container.events.subscribe(
            name, self.guard(on_event), service=self.service_name
        )

    # -- remote invocation (§4.3) -------------------------------------------------
    def provide_function(
        self,
        name: str,
        fn: Callable[..., Any],
        params: Optional[Sequence[DataType]] = None,
        result: Optional[DataType] = None,
    ):
        """Expose a function other services can invoke remotely."""
        return self._container.invocations.provide(
            name, self.guard_fn(fn), params=params, result=result,
            service=self.service_name,
        )

    def call(
        self,
        function: str,
        args: tuple = (),
        on_result: Optional[Callable[[Any], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
        timeout: Optional[float] = None,
        binding: Optional[str] = None,
    ):
        """Invoke a function wherever it is provided."""
        return self._container.invocations.call(
            function,
            args=args,
            on_result=self.guard(on_result) if on_result else None,
            on_error=self.guard(on_error) if on_error else None,
            timeout=timeout,
            binding=binding,
        )

    def check_required_functions(self, functions: Sequence[str]) -> List[str]:
        """Which of ``functions`` currently have no provider (§4.3 startup
        check)? Empty list means all are satisfied."""
        return self._container.invocations.check_required(functions)

    def bind_static(self, function: str, container: str) -> None:
        self._container.invocations.bind_static(function, container)

    # -- file transmission (§4.4) ----------------------------------------------------
    def publish_file(self, name: str, data: bytes, revision: Optional[int] = None):
        return self._container.files.publish(
            name, data, revision=revision, service=self.service_name
        )

    def subscribe_file(
        self,
        name: str,
        on_complete: Callable[[bytes, int], None],
        on_progress: Optional[Callable[[int, int], None]] = None,
        on_revision: Optional[Callable[[int], str]] = None,
    ):
        return self._container.files.subscribe(
            name,
            on_complete=self.guard(on_complete),
            on_progress=self.guard(on_progress) if on_progress else None,
            on_revision=on_revision,
            service=self.service_name,
        )

    # -- timers -------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]):
        """Run ``fn`` once after ``delay`` seconds (failure-guarded)."""
        handle = self._container.timers.schedule(delay, self.guard(fn))
        self._timers.append(handle)
        return handle

    def every(self, interval: float, fn: Callable[[], None]):
        """Run ``fn`` periodically until cancelled or the service stops."""
        guarded = self.guard(fn)
        state = {"cancelled": False, "handle": None}

        def fire():
            if state["cancelled"]:
                return
            guarded()
            if not state["cancelled"]:
                state["handle"] = self._container.timers.schedule(interval, fire)
                self._timers.append(state["handle"])

        state["handle"] = self._container.timers.schedule(interval, fire)
        self._timers.append(state["handle"])

        class _Handle:
            def cancel(self_inner):
                state["cancelled"] = True
                handle = state["handle"]
                if handle is not None and hasattr(handle, "cancel"):
                    handle.cancel()

        return _Handle()

    def cancel_timers(self) -> None:
        for handle in self._timers:
            if hasattr(handle, "cancel"):
                handle.cancel()
        self._timers.clear()

    # -- node resources (§3 resource management) --------------------------------------
    def allocate_storage(self, nbytes: int) -> None:
        self._container.resources.allocate_storage(self.service_name, nbytes)

    def release_storage(self, nbytes: Optional[int] = None) -> None:
        self._container.resources.release_storage(self.service_name, nbytes)

    def acquire_device(self, device: str) -> None:
        self._container.resources.acquire_device(device, self.service_name)

    def release_device(self, device: str) -> None:
        self._container.resources.release_device(device, self.service_name)

    # -- miscellany -----------------------------------------------------------------
    def log(self, message: str) -> None:
        """Append to this service's log (the Ground Station 'terminal')."""
        self.log_lines.append((self.now(), message))

    def on_emergency(self, handler: Callable[[str], None]) -> None:
        self._container.on_emergency(self.guard(handler))

    def fail(self, reason: str) -> None:
        """Self-report an unrecoverable fault."""
        self._container.service_failed(self.service_name, reason)

    # -- the failure guard --------------------------------------------------------
    def guard(self, fn: Callable) -> Callable:
        """Wrap a callback so an exception fails this service instead of
        tearing down the container."""

        def guarded(*args, **kwargs):
            try:
                return fn(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 — the whole point
                detail = traceback.format_exc(limit=3)
                self._container.service_failed(
                    self.service_name, f"{exc!r}\n{detail}"
                )
                return None

        return guarded

    def guard_fn(self, fn: Callable) -> Callable:
        """Guard for provided functions: the caller must still see the
        error (the invocation manager reports it back), but a crash also
        marks this service failed."""

        def guarded(*args, **kwargs):
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                self._container.service_failed(self.service_name, repr(exc))
                raise ServiceError(f"{self.service_name} failed: {exc}") from exc

        return guarded


__all__ = ["Service", "ServiceContext"]
