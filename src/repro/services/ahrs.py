"""The AHRS service.

The paper's FCS "reads information from a wide variety of sensors
(accelerometers, gyros, GPS receivers, pressure sensors)" (§1). The GPS
service covers position; this service publishes the attitude solution an
AHRS (attitude and heading reference system) would produce, derived from
the same kinematic model: heading from the track, bank angle from the
commanded turn rate, pitch from the (level) flight profile plus noise.
"""

from __future__ import annotations

import math

from repro.encoding.schema import ATTITUDE_SCHEMA
from repro.flight.dynamics import KinematicUav
from repro.services.base import Service
from repro.util.rng import SeededRng

VAR_ATTITUDE = "ahrs.attitude"

#: Standard-rate-turn bank approximation: bank ≈ atan(v · ω / g).
_G = 9.80665


class AhrsService(Service):
    """Publishes ``ahrs.attitude`` at a fixed rate.

    Parameters
    ----------
    uav:
        The shared airframe model (the GPS service usually owns stepping
        it; this service only samples state).
    noise_deg:
        1-sigma attitude noise, degrees — a real AHRS jitters.
    """

    def __init__(
        self,
        uav: KinematicUav,
        name: str = "ahrs",
        rate_hz: float = 10.0,
        noise_deg: float = 0.15,
        seed: int = 42,
    ):
        super().__init__(name)
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        self.uav = uav
        self.rate_hz = rate_hz
        self.noise_deg = noise_deg
        self._rng = SeededRng(seed)
        self._last_heading = None
        self._publication = None

    def on_start(self) -> None:
        period = 1.0 / self.rate_hz
        self._publication = self.ctx.provide_variable(
            VAR_ATTITUDE, ATTITUDE_SCHEMA, validity=0.5, period=period
        )
        self.ctx.every(period, self._tick)

    # -- internals -----------------------------------------------------------
    def _tick(self) -> None:
        state = self.uav.state
        heading = state.heading
        # Turn rate from successive headings → coordinated-turn bank angle.
        if self._last_heading is None:
            turn_rate = 0.0
        else:
            from repro.flight.geodesy import angle_diff_deg

            turn_rate = math.radians(
                angle_diff_deg(self._last_heading, heading) * self.rate_hz
            )
        self._last_heading = heading
        bank = math.degrees(math.atan2(state.ground_speed * turn_rate, _G))
        noise = lambda: self._rng.gauss(0.0, self.noise_deg)  # noqa: E731
        self._publication.publish(
            {
                "roll": bank + noise(),
                "pitch": 0.0 + noise(),  # level cruise profile
                "yaw": (heading + noise()) % 360.0,
                "timestamp": self.ctx.now(),
            }
        )


__all__ = ["AhrsService", "VAR_ATTITUDE"]
