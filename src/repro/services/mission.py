"""The Mission Control service.

"A service that monitors the status of the mission and following a provided
flight plan orquestrates the rest of services to autonomously accomplish the
mission." (§5) It exercises *all four* primitives:

- consumes the ``gps.position`` **variable**;
- configures Camera / Storage / Video Processing with **remote invocation**
  ("all these initialization have remote call semantics");
- notifies the camera with an **event** at each photo waypoint;
- the photos travel by **multicast file transfer** to Storage and Video
  Processing (set up here, executed between those services).
"""

from __future__ import annotations

from typing import List, Set

from repro.encoding.schema import PHOTO_EVENT_SCHEMA, parse_type
from repro.flight.geodesy import GeoPoint, distance_m
from repro.flight.plan import FlightPlan, WaypointAction
from repro.services.base import Service
from repro.services.names import (
    EVT_DETECTION,
    EVT_MISSION_COMPLETE,
    EVT_PHOTO_REQUEST,
    EVT_PHOTO_TAKEN,
    FN_CAMERA_CONFIGURE,
    FN_STORAGE_LOG_VARIABLE,
    FN_STORAGE_STORE,
    FN_VIDEO_PROCESS,
    VAR_MISSION_STATUS,
    VAR_POSITION,
    photo_resource,
)

MISSION_STATUS_SCHEMA = parse_type(
    "struct MissionStatus { uint32 next_waypoint; uint32 total_waypoints; "
    "bool complete; bool holding; bool aborted; uint32 photos_requested; "
    "uint32 photos_taken; uint32 detections; }"
)

#: Operator-control functions exposed by Mission Control (§5: the ground
#: station "checks and controls the UAV operation").
FN_MISSION_HOLD = "mission.hold"
FN_MISSION_RESUME = "mission.resume"
FN_MISSION_ABORT = "mission.abort"

#: Functions the mission cannot run without — the §4.3 startup check set.
REQUIRED_FUNCTIONS = [
    FN_CAMERA_CONFIGURE,
    FN_STORAGE_STORE,
    FN_STORAGE_LOG_VARIABLE,
    FN_VIDEO_PROCESS,
]


class MissionControlService(Service):
    """Drives the §5 image-processing mission over a flight plan."""

    def __init__(
        self,
        plan: FlightPlan,
        name: str = "mission",
        photo_prefix: str = "photo",
        detection_threshold: float = 0.3,
        image_size: int = 128,
        status_period: float = 1.0,
    ):
        super().__init__(name)
        self.plan = plan
        self.photo_prefix = photo_prefix
        self.detection_threshold = detection_threshold
        self.image_size = image_size
        self.status_period = status_period
        # Progress state.
        self.initialized = False
        self.next_waypoint = 0
        self.photos_requested: Set[int] = set()
        self.photos_taken: Set[int] = set()
        self.detections: List[dict] = []
        self.complete = False
        self.holding = False
        self.aborted = False
        self.position_timeouts = 0
        self.missed_waypoints: List[int] = []
        #: Photo requests that arrived before the payload was initialized;
        #: flushed by :meth:`_try_initialize`.
        self._pending_photos: List[tuple] = []
        #: How many waypoints ahead of the expected one still count as
        #: captured (the earlier ones are logged as missed). Keeps a mission
        #: from wedging if a fix is lost right at a waypoint.
        self.capture_lookahead = 3
        self._photo_request_event = None
        self._complete_event = None
        self._status_publication = None

    def on_start(self) -> None:
        self._photo_request_event = self.ctx.provide_event(
            EVT_PHOTO_REQUEST, PHOTO_EVENT_SCHEMA
        )
        self._complete_event = self.ctx.provide_event(EVT_MISSION_COMPLETE)
        self._status_publication = self.ctx.provide_variable(
            VAR_MISSION_STATUS, MISSION_STATUS_SCHEMA, validity=3.0,
            period=self.status_period,
        )
        self.ctx.subscribe_variable(
            VAR_POSITION,
            on_sample=self._on_position,
            on_timeout=self._on_position_timeout,
            initial=True,
        )
        self.ctx.subscribe_event(EVT_PHOTO_TAKEN, self._on_photo_taken)
        self.ctx.subscribe_event(EVT_DETECTION, self._on_detection)
        self.ctx.every(self.status_period, self._publish_status)
        # Operator control surface (remote invocation from the GS).
        from repro.encoding.types import BOOL

        self.ctx.provide_function(FN_MISSION_HOLD, self.hold, params=[], result=BOOL)
        self.ctx.provide_function(FN_MISSION_RESUME, self.resume, params=[], result=BOOL)
        self.ctx.provide_function(FN_MISSION_ABORT, self.abort, params=[], result=BOOL)
        # The §4.3 startup check: wait until every required function has a
        # provider somewhere, then run the remote-call initialization.
        self._try_initialize()

    # -- initialization (remote call semantics, §5) -------------------------------
    def _try_initialize(self) -> None:
        if self.initialized:
            return
        missing = self.ctx.check_required_functions(REQUIRED_FUNCTIONS)
        if missing:
            self.ctx.log(f"waiting for providers of: {', '.join(missing)}")
            self.ctx.schedule(0.5, self._try_initialize)
            return
        self.initialized = True
        self.ctx.call(
            FN_CAMERA_CONFIGURE,
            (self.photo_prefix, self.image_size, self.image_size),
            on_error=lambda exc: self.ctx.log(f"camera configure failed: {exc}"),
        )
        self.ctx.call(FN_STORAGE_LOG_VARIABLE, (VAR_POSITION,))
        for waypoint_index in self.plan.photo_waypoints:
            resource = photo_resource(self.photo_prefix, waypoint_index)
            self.ctx.call(FN_STORAGE_STORE, (resource,))
            self.ctx.call(FN_VIDEO_PROCESS, (resource, self.detection_threshold))
        self.ctx.log("mission initialization calls issued")
        # Flush photo waypoints reached while we were waiting for providers.
        pending, self._pending_photos = self._pending_photos, []
        for index, here in pending:
            self._request_photo(index, here)

    # -- position tracking ----------------------------------------------------------
    # -- operator control (§5) ------------------------------------------------
    def hold(self) -> bool:
        """Freeze mission progress: positions are ignored, no new photos."""
        if self.complete or self.aborted:
            return False
        self.holding = True
        self.ctx.log("mission HOLD by operator")
        return True

    def resume(self) -> bool:
        if self.complete or self.aborted or not self.holding:
            return False
        self.holding = False
        self.ctx.log("mission RESUME by operator")
        return True

    def abort(self) -> bool:
        """Terminate the mission permanently; raises the completion event so
        downstream consumers stop waiting."""
        if self.complete:
            return False
        self.aborted = True
        self.complete = True
        self._pending_photos.clear()
        self._complete_event.raise_event()
        self.ctx.log("mission ABORT by operator")
        return True

    def _on_position(self, value: dict, timestamp: float) -> None:
        if self.complete or self.holding:
            return
        here = GeoPoint(value["lat"], value["lon"], value["alt"])
        advanced = True
        while advanced and self.next_waypoint < len(self.plan):
            advanced = False
            # Look a few waypoints ahead so a fix missed exactly at a
            # waypoint (or a late payload start) cannot wedge the mission.
            window_end = min(
                self.next_waypoint + 1 + self.capture_lookahead, len(self.plan)
            )
            for index in range(self.next_waypoint, window_end):
                waypoint = self.plan.waypoint(index)
                if distance_m(here, waypoint.point) <= waypoint.capture_radius_m:
                    for skipped in range(self.next_waypoint, index):
                        self.missed_waypoints.append(skipped)
                        self.ctx.log(f"waypoint {skipped} missed; skipping")
                    self._reached(index, here)
                    self.next_waypoint = index + 1
                    advanced = True
                    break
        if self.next_waypoint >= len(self.plan) and not self.complete:
            self.complete = True
            self._complete_event.raise_event()
            self.ctx.log("mission complete")

    def _reached(self, index: int, here: GeoPoint) -> None:
        waypoint = self.plan.waypoint(index)
        self.ctx.log(f"reached waypoint {index} ({waypoint.name or 'unnamed'})")
        if waypoint.action == WaypointAction.TAKE_PHOTO:
            if not self.initialized:
                # Camera/storage/video not configured yet: hold the request
                # and replay it the moment initialization completes.
                self._pending_photos.append((index, here))
                return
            self._request_photo(index, here)

    def _request_photo(self, index: int, here: GeoPoint) -> None:
        self.photos_requested.add(index)
        self._photo_request_event.raise_event(
            {
                "waypoint": index,
                "lat": here.lat,
                "lon": here.lon,
                "resource": photo_resource(self.photo_prefix, index),
            }
        )

    def _on_position_timeout(self, variable: str) -> None:
        self.position_timeouts += 1
        self.ctx.log(f"WARNING: {variable} samples stopped arriving")

    # -- downstream progress -----------------------------------------------------
    def _on_photo_taken(self, payload: dict, timestamp: float) -> None:
        self.photos_taken.add(payload["waypoint"])
        self.ctx.log(f"camera confirmed photo at waypoint {payload['waypoint']}")

    def _on_detection(self, payload: dict, timestamp: float) -> None:
        self.detections.append(payload)
        self.ctx.log(
            f"detection reported in {payload['resource']}: "
            f"{payload['feature_count']} features"
        )

    def _publish_status(self) -> None:
        self._status_publication.publish(
            {
                "next_waypoint": min(self.next_waypoint, len(self.plan)),
                "total_waypoints": len(self.plan),
                "complete": self.complete,
                "holding": self.holding,
                "aborted": self.aborted,
                "photos_requested": len(self.photos_requested),
                "photos_taken": len(self.photos_taken),
                "detections": len(self.detections),
            }
        )


__all__ = ["MissionControlService", "MISSION_STATUS_SCHEMA", "REQUIRED_FUNCTIONS"]
