"""The Ground Station service.

"Represents the station where the operator checks and controls the UAV
operation. In this simple use case, the ground station basically shows the
subscribed variables and events in a terminal." (§5)

The "terminal" is the service log; examples print it, tests assert on it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.services.base import Service
from repro.services.names import (
    EVT_DETECTION,
    EVT_MISSION_COMPLETE,
    EVT_PHOTO_TAKEN,
    VAR_MISSION_STATUS,
    VAR_POSITION,
)


class GroundStationService(Service):
    """The operator's console: subscribes to everything observable."""

    def __init__(self, name: str = "ground", position_print_period: float = 2.0):
        super().__init__(name)
        self.position_print_period = position_print_period
        self.positions_received = 0
        self.last_position: Optional[dict] = None
        self.last_status: Optional[dict] = None
        self.photo_notifications: List[dict] = []
        self.detection_notifications: List[dict] = []
        self.mission_completed = False
        self._last_position_print = -1e9

    def on_start(self) -> None:
        self.ctx.subscribe_variable(VAR_POSITION, on_sample=self._on_position)
        self.ctx.subscribe_variable(VAR_MISSION_STATUS, on_sample=self._on_status)
        self.ctx.subscribe_event(EVT_PHOTO_TAKEN, self._on_photo)
        self.ctx.subscribe_event(EVT_DETECTION, self._on_detection)
        self.ctx.subscribe_event(EVT_MISSION_COMPLETE, self._on_complete)

    # -- terminal rendering -------------------------------------------------------
    def _on_position(self, value: dict, timestamp: float) -> None:
        self.positions_received += 1
        self.last_position = value
        now = self.ctx.now()
        if now - self._last_position_print >= self.position_print_period:
            self._last_position_print = now
            self.ctx.log(
                f"POS lat={value['lat']:.5f} lon={value['lon']:.5f} "
                f"alt={value['alt']:.0f} hdg={value['heading']:.0f}"
            )

    def _on_status(self, value: dict, timestamp: float) -> None:
        self.last_status = value

    def _on_photo(self, payload: dict, timestamp: float) -> None:
        self.photo_notifications.append(payload)
        self.ctx.log(f"EVENT photo taken: {payload['resource']}")

    def _on_detection(self, payload: dict, timestamp: float) -> None:
        self.detection_notifications.append(payload)
        self.ctx.log(
            f"EVENT detection: {payload['resource']} "
            f"({payload['feature_count']} features)"
        )

    def _on_complete(self, payload, timestamp: float) -> None:
        self.mission_completed = True
        self.ctx.log("EVENT mission complete")

    # -- convenience for examples ---------------------------------------------------
    def terminal(self) -> List[Tuple[float, str]]:
        """The rendered operator terminal."""
        return list(self.ctx.log_lines)


__all__ = ["GroundStationService"]
