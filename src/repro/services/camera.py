"""The Camera service.

Holds the camera device in exclusive mode, is configured by Mission Control
via remote invocation ("the MC instructs the camera to prepare itself to
take photos and publish them with the specified name", §5), takes a photo
when the ``mission.photo_request`` event arrives, publishes it through the
multicast file primitive and raises ``camera.photo_taken``.
"""

from __future__ import annotations

from typing import Optional

from repro.encoding.schema import PHOTO_EVENT_SCHEMA
from repro.encoding.types import BOOL, INT32, STRING
from repro.imaging import encode_pgm, generate_image
from repro.services.base import Service
from repro.services.names import (
    DEV_CAMERA,
    EVT_PHOTO_REQUEST,
    EVT_PHOTO_TAKEN,
    FN_CAMERA_CONFIGURE,
    photo_resource,
)


class CameraService(Service):
    """The imaging payload.

    Parameters
    ----------
    features_at:
        Optional map waypoint-index → number of embedded features; unlisted
        waypoints get ``default_features``. Lets scenarios decide which
        photos should trigger detections.
    """

    def __init__(
        self,
        name: str = "camera",
        default_features: int = 3,
        features_at: Optional[dict] = None,
        shutter_delay: float = 0.05,
    ):
        super().__init__(name)
        self.default_features = default_features
        self.features_at = dict(features_at or {})
        self.shutter_delay = shutter_delay
        self.prefix: Optional[str] = None
        self.width = 128
        self.height = 128
        self.photos_taken = 0
        self._photo_event = None

    def on_start(self) -> None:
        self.ctx.acquire_device(DEV_CAMERA)
        self.ctx.provide_function(
            FN_CAMERA_CONFIGURE,
            self._configure,
            params=[STRING, INT32, INT32],
            result=BOOL,
        )
        self._photo_event = self.ctx.provide_event(EVT_PHOTO_TAKEN, PHOTO_EVENT_SCHEMA)
        self.ctx.subscribe_event(EVT_PHOTO_REQUEST, self._on_photo_request)

    def on_stop(self) -> None:
        self.ctx.release_device(DEV_CAMERA)

    # -- remote invocation target ------------------------------------------------
    def _configure(self, prefix: str, width: int, height: int) -> bool:
        """Prepare the camera: resource-name prefix and frame geometry."""
        if width <= 0 or height <= 0:
            return False
        self.prefix = prefix
        self.width = width
        self.height = height
        self.ctx.log(f"configured: prefix={prefix} {width}x{height}")
        return True

    # -- event handler ----------------------------------------------------------
    def _on_photo_request(self, payload, timestamp: float) -> None:
        if self.prefix is None:
            self.ctx.log("photo requested before configuration; ignored")
            return
        waypoint = payload["waypoint"]
        # The shutter + readout take real time; publish when done.
        self.ctx.schedule(
            self.shutter_delay, lambda: self._capture(waypoint, payload)
        )

    def _capture(self, waypoint: int, payload) -> None:
        features = self.features_at.get(waypoint, self.default_features)
        image = generate_image(
            seed=waypoint, width=self.width, height=self.height, features=features
        )
        resource = photo_resource(self.prefix, waypoint)
        self.ctx.publish_file(resource, encode_pgm(image))
        self.photos_taken += 1
        self._photo_event.raise_event(
            {
                "waypoint": waypoint,
                "lat": payload["lat"],
                "lon": payload["lon"],
                "resource": resource,
            }
        )
        self.ctx.log(f"photo {resource} published ({features} features embedded)")


__all__ = ["CameraService"]
