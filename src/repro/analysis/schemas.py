"""Static evaluation of wire schemas and the schema lockfile (REP008).

The wire schemas are declared as module-level ``*_SCHEMA`` constants built
from a tiny, closed vocabulary — ``StructType``/``UnionType``/``VectorType``
constructors, the primitive singletons, ``parse_type`` over a string
literal, and references to earlier schemas in the same module. That makes
them *statically evaluable*: this module interprets those assignment
expressions over the real :mod:`repro.encoding.types` constructors without
importing the scanned tree, so the checker works identically on the live
source and on test fixture trees.

The canonical kind → schema mapping lives in
``repro/protocol/wire_registry.py`` as a literal dict (readable from the
AST for the same reason). :func:`compute_lock` combines the two into the
lockfile document committed as ``schemas.lock.json``:

- one fingerprint per ``MessageKind`` (struct-typed kinds fingerprint
  their evaluated :meth:`~repro.encoding.types.DataType.fingerprint`;
  hand-packed kinds fingerprint the ``struct.Struct`` format literals of
  their implementing module),
- plus the frame-header fingerprint.

Any reorder, type change, or removal of a locked field changes the
fingerprint and fails REP008 until a new ``MessageKind`` is minted or the
lock is deliberately regenerated (``repro.cli check --update-schema-lock``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.context import Project, SourceFile
from repro.encoding.schema import parse_type
from repro.encoding.types import (
    PRIMITIVES,
    DataType,
    StructType,
    UnionType,
    VectorType,
)

REGISTRY_FILE = "repro/protocol/wire_registry.py"
FRAMES_FILE = "repro/protocol/frames.py"
LOCK_FILENAME = "schemas.lock.json"

#: Constant names exported by repro.encoding.types for the primitives.
_PRIMITIVE_CONSTANTS: Dict[str, DataType] = {
    name.upper(): datatype for name, datatype in PRIMITIVES.items()
}


class SchemaEvalError(Exception):
    """A schema expression used something outside the static vocabulary."""


def _eval_expr(node: ast.expr, env: Dict[str, DataType]) -> Any:
    """Evaluate one schema expression over the closed constructor set."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        if node.id in _PRIMITIVE_CONSTANTS:
            return _PRIMITIVE_CONSTANTS[node.id]
        raise SchemaEvalError(f"unknown name {node.id!r}")
    if isinstance(node, ast.Attribute):
        # types.BOOL / wire.CHUNK_RANGE_SCHEMA style access: resolve by
        # the trailing attribute only (the vocabulary is flat).
        if node.attr in env:
            return env[node.attr]
        if node.attr in _PRIMITIVE_CONSTANTS:
            return _PRIMITIVE_CONSTANTS[node.attr]
        raise SchemaEvalError(f"unknown attribute {node.attr!r}")
    if isinstance(node, (ast.List, ast.Tuple)):
        return [_eval_expr(element, env) for element in node.elts]
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        args = [_eval_expr(arg, env) for arg in node.args]
        kwargs = {
            kw.arg: _eval_expr(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        if name == "StructType":
            fields = [tuple(pair) for pair in args[1]]
            return StructType(args[0], fields)
        if name == "UnionType":
            fields = [tuple(pair) for pair in args[1]]
            return UnionType(args[0], fields)
        if name == "VectorType":
            return VectorType(*args, **kwargs)
        if name == "parse_type":
            if not (args and isinstance(args[0], str)):
                raise SchemaEvalError("parse_type needs a literal string")
            return parse_type(args[0])
        raise SchemaEvalError(f"unsupported constructor {name!r}")
    raise SchemaEvalError(f"unsupported expression {ast.dump(node)[:60]}")


def evaluate_module_schemas(file: SourceFile) -> Dict[str, DataType]:
    """Every statically-evaluable top-level ``*_SCHEMA`` in one module."""
    env: Dict[str, DataType] = {}
    out: Dict[str, DataType] = {}
    for stmt in file.tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            continue
        name = stmt.targets[0].id
        if not name.endswith("_SCHEMA"):
            continue
        try:
            value = _eval_expr(stmt.value, env)
        except SchemaEvalError:
            continue
        if isinstance(value, DataType):
            env[name] = value
            out[name] = value
    return out


def manual_layout_fingerprint(file: SourceFile) -> str:
    """Fingerprint of a hand-packed payload module: the sorted set of its
    literal ``struct.Struct`` formats. A type-width change (``<H`` →
    ``<I``) changes the digest; field semantics are covered by review and
    the property suites, not the lock."""
    formats: List[str] = []
    for node in ast.walk(file.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "Struct"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            formats.append(node.args[0].value)
    text = "|".join(sorted(formats))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _module_constant(tree: ast.Module, name: str) -> Any:
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
            and isinstance(stmt.value, ast.Constant)
        ):
            return stmt.value.value
    return None


def _struct_format(tree: ast.Module, name: str) -> Optional[str]:
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
            and isinstance(stmt.value, ast.Call)
            and stmt.value.args
            and isinstance(stmt.value.args[0], ast.Constant)
        ):
            return stmt.value.args[0].value
    return None


def static_header_fingerprint(frames: SourceFile) -> Optional[str]:
    """Mirror of :func:`repro.protocol.frames.header_fingerprint`, computed
    from the AST (a unit test pins the two equal)."""
    magic = _module_constant(frames.tree, "MAGIC")
    version = _module_constant(frames.tree, "VERSION")
    header = _struct_format(frames.tree, "_HEADER")
    src_len = _struct_format(frames.tree, "_SRC_LEN")
    if magic is None or version is None or header is None or src_len is None:
        return None
    text = f"{magic!r}|v{version}|{header}|{src_len}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def read_kind_refs(registry: SourceFile) -> Dict[str, str]:
    """The literal ``KIND_SCHEMA_REFS`` dict from the registry module."""
    for stmt in registry.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target: Optional[ast.expr] = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == "KIND_SCHEMA_REFS"
            and isinstance(stmt.value, ast.Dict)
        ):
            out: Dict[str, str] = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    out[key.value] = value.value
            return out
    return {}


def _enum_members(tree: ast.Module) -> List[Tuple[str, int, int]]:
    from repro.analysis.rules.rep003_frames import _enum_members as impl

    return impl(tree)


def compute_lock(project: Project) -> Optional[Dict[str, object]]:
    """The lockfile document for this tree, or None when the tree has no
    wire registry (e.g. rule fixtures for other rules)."""
    registry = project.file(REGISTRY_FILE)
    frames = project.file(FRAMES_FILE)
    if registry is None or frames is None:
        return None
    refs = read_kind_refs(registry)
    members = {name: value for name, value, _ in _enum_members(frames.tree)}
    schema_cache: Dict[str, Dict[str, DataType]] = {}
    kinds: Dict[str, Dict[str, object]] = {}
    problems: List[str] = []
    for kind_name in sorted(members):
        ref = refs.get(kind_name)
        if ref is None:
            problems.append(kind_name)
            continue
        if ref.startswith("manual:"):
            module_rel = ref[len("manual:"):]
            module = project.file(module_rel)
            if module is None:
                problems.append(kind_name)
                continue
            kinds[kind_name] = {
                "value": members[kind_name],
                "layout": "manual",
                "module": module_rel,
                "fingerprint": manual_layout_fingerprint(module),
            }
            continue
        module_rel, _, schema_name = ref.partition("::")
        module = project.file(module_rel)
        if module is None:
            problems.append(kind_name)
            continue
        if module_rel not in schema_cache:
            schema_cache[module_rel] = evaluate_module_schemas(module)
        datatype = schema_cache[module_rel].get(schema_name)
        if datatype is None:
            problems.append(kind_name)
            continue
        kinds[kind_name] = {
            "value": members[kind_name],
            "schema": ref,
            "fingerprint": datatype.fingerprint(),
            "describe": datatype.describe(),
        }
    return {
        "version": 1,
        "header": static_header_fingerprint(frames),
        "kinds": kinds,
        "unmapped": sorted(problems),
    }


def lock_path(root: Path) -> Optional[Path]:
    """Where the committed lockfile lives: beside ``repro/`` in fixture
    trees, at the repo root (above ``src/``) in the real tree."""
    for candidate in (root / LOCK_FILENAME, root.parent / LOCK_FILENAME):
        if candidate.is_file():
            return candidate
    return None


def default_lock_path(root: Path) -> Path:
    """Where ``--update-schema-lock`` writes when no lockfile exists yet."""
    existing = lock_path(root)
    if existing is not None:
        return existing
    return (root.parent if root.name == "src" else root) / LOCK_FILENAME


def load_lock(path: Path) -> Dict[str, object]:
    return json.loads(path.read_text(encoding="utf-8"))


def write_lock(path: Path, lock: Dict[str, object]) -> None:
    path.write_text(json.dumps(lock, indent=2, sort_keys=True) + "\n", encoding="utf-8")


__all__ = [
    "compute_lock",
    "evaluate_module_schemas",
    "manual_layout_fingerprint",
    "static_header_fingerprint",
    "read_kind_refs",
    "lock_path",
    "default_lock_path",
    "load_lock",
    "write_lock",
    "LOCK_FILENAME",
    "REGISTRY_FILE",
    "SchemaEvalError",
]
