"""REP001 — services never touch the network directly.

The paper's container owns every port and socket (§3 network management):
services and primitive managers express intent ("send this frame to that
peer") and the container's PEPt stack does the I/O. Any import of the raw
transport/network layers from ``repro/services/*`` or ``repro/primitives/*``
is a reach-around that breaks the single-serialization-domain and
fault-isolation guarantees, so it fails the build.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: Module prefixes that only the container/transport layers may touch.
BANNED_MODULES: Tuple[str, ...] = (
    "socket",
    "repro.transport.udp",
    # Listed separately: prefix matching is on dotted boundaries, so
    # "repro.transport.udp" does not cover its sibling module.
    "repro.transport.udp_async",
    "repro.simnet.network",
)

#: Path prefixes (relative to the scan root) the rule polices.
SERVICE_PATHS: Tuple[str, ...] = (
    "repro/services/",
    "repro/primitives/",
)


def _banned(module: str) -> str:
    for prefix in BANNED_MODULES:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return ""


@register
class TransportReachAroundRule(Rule):
    code = "REP001"
    summary = (
        "services and primitives must not import or call the raw "
        "transport/network layers; all I/O goes through the container"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        if not file.rel.startswith(SERVICE_PATHS):
            return
        banned_names = set()
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    hit = _banned(alias.name)
                    if hit:
                        banned_names.add(alias.asname or alias.name.split(".")[0])
                        yield self._finding(file, node, alias.name, hit)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                hit = _banned(module)
                if hit:
                    for alias in node.names:
                        banned_names.add(alias.asname or alias.name)
                    yield self._finding(file, node, module, hit)
                    continue
                # `from repro.transport import udp` names the parent but
                # binds the banned submodule.
                for alias in node.names:
                    full = f"{module}.{alias.name}" if module else alias.name
                    hit = _banned(full)
                    if hit:
                        banned_names.add(alias.asname or alias.name)
                        yield self._finding(file, node, full, hit)
        yield from self._call_sites(file, banned_names)

    def _call_sites(self, file: SourceFile, names: set) -> Iterator[Finding]:
        """Flag call/attribute *uses* of a banned import, so the violation
        shows up where the I/O happens, not just at the top of the file."""
        if not names:
            return
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in names
            ):
                yield Finding(
                    rule=self.code,
                    message=(
                        f"direct use of banned module via "
                        f"`{node.value.id}.{node.attr}` — route through the "
                        f"container (PrimitiveHost.send_*)"
                    ),
                    file=file.rel,
                    line=node.lineno,
                    column=node.col_offset,
                )

    def _finding(self, file: SourceFile, node: ast.AST, module: str, hit: str) -> Finding:
        return Finding(
            rule=self.code,
            message=(
                f"import of {module!r}: the container owns all network I/O "
                f"({hit} is off-limits to services/primitives)"
            ),
            file=file.rel,
            line=node.lineno,
            column=node.col_offset,
        )


__all__ = ["TransportReachAroundRule", "BANNED_MODULES", "SERVICE_PATHS"]
