"""REP002 — no ambient nondeterminism in sim-path modules, now transitive.

Deterministic replay (same seed → same packets, same virtual timestamps)
only holds while every time read goes through ``util.clock.Clock`` and
every random draw through ``util.rng.SeededRng``. One stray ``time.time()``
or module-level ``random.random()`` silently breaks replay for every
experiment, so the checker bans the ambient sources outright.

The interprocedural pass additionally reports ambient sites *reachable
from a handler entry point* through project-local calls — the helper that
wraps ``time.time()`` no longer hides the taint from the handler that
calls it. The finding lands on the entry point with the call chain
rendered, so the fix site and the contract violation are both visible.
Waived sites (justified ``# repro: allow[REP002]``) are not taint
sources.

The wall-clock runtime layer (reactor, threaded runtime, thread-pool
scheduler, UDP transport) legitimately reads the machine clock; those
modules carry file-scope ``# repro: allow-file[REP002]`` waivers with
justifications rather than being silently exempted — the audit trail
stays in the report.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.context import Project, SourceFile
from repro.analysis.dataflow import SiteLister, entrypoint_reach_findings
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: ``module -> banned attributes`` (``*`` = every attribute). Keyed on the
#: imported module name, so aliased imports are tracked too.
BANNED_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "time": ("time", "monotonic", "perf_counter", "process_time", "time_ns",
             "monotonic_ns", "perf_counter_ns"),
    "datetime": ("now", "utcnow", "today"),
    "random": ("*",),
    "os": ("urandom",),
    "secrets": ("*",),
    "uuid": ("uuid1", "uuid4"),
}

#: Names that, when imported directly (``from time import time``), are
#: banned at call sites.
BANNED_DIRECT_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "time": ("time", "monotonic", "perf_counter", "process_time"),
    "datetime": ("datetime", "date"),  # datetime.now() via direct import
    "random": ("random", "randint", "uniform", "choice", "shuffle", "gauss",
               "sample", "randrange", "getrandbits", "expovariate"),
    "os": ("urandom",),
    "uuid": ("uuid1", "uuid4"),
}

#: Modules that *are* the sanctioned abstraction; the ban does not apply.
EXEMPT_FILES: Tuple[str, ...] = (
    "repro/util/clock.py",
    "repro/util/rng.py",
)

#: The static-analysis tooling itself is a dev-side tool, not sim-path.
EXEMPT_PREFIXES: Tuple[str, ...] = (
    "repro/analysis/",
)


def exempt(rel: str) -> bool:
    return rel in EXEMPT_FILES or rel.startswith(EXEMPT_PREFIXES)


class AmbientSiteScanner:
    """Finds ambient time/random sites under any AST node of one module.

    The import table (aliases and direct imports) is resolved once per
    file; per-function scans then only walk their own subtree.
    """

    def __init__(self, tree: ast.Module) -> None:
        # Map local names to the ambient modules they came from, honoring
        # aliases (``import random as rnd``) and direct imports.
        self.module_aliases: Dict[str, str] = {}
        self.direct_bans: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in BANNED_ATTRIBUTES:
                        self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in BANNED_DIRECT_IMPORTS:
                for alias in node.names:
                    if alias.name in BANNED_DIRECT_IMPORTS[node.module]:
                        self.direct_bans[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def sites(self, root: ast.AST) -> Iterator[Tuple[ast.AST, str, str]]:
        """``(node, label, message)`` for every ambient site under root."""
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                module = self.module_aliases.get(node.value.id)
                if module is not None:
                    banned = BANNED_ATTRIBUTES[module]
                    if "*" in banned or node.attr in banned:
                        yield (
                            node,
                            f"{module}.{node.attr}",
                            (
                                f"ambient `{module}.{node.attr}` breaks "
                                f"deterministic replay — use util.clock.Clock "
                                f"/ util.rng.SeededRng"
                            ),
                        )
                        continue
                # ``datetime.now()`` through a directly imported class.
                if (
                    self.direct_bans.get(node.value.id, "").startswith("datetime.")
                    and node.attr in BANNED_ATTRIBUTES["datetime"] + ("today",)
                ):
                    yield (
                        node,
                        f"{node.value.id}.{node.attr}",
                        (
                            f"ambient `{node.value.id}.{node.attr}` breaks "
                            f"deterministic replay — read time from util.clock"
                        ),
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                origin = self.direct_bans.get(node.func.id)
                if origin == "datetime.datetime" or origin == "datetime.date":
                    # Only the nondeterministic constructors are banned;
                    # ``datetime(...)`` literals are fine. Attribute calls
                    # like ``datetime.now()`` are caught above.
                    continue
                if origin is not None:
                    yield (
                        node,
                        origin,
                        (
                            f"ambient `{origin}` (imported directly) breaks "
                            f"deterministic replay — use util.clock / util.rng"
                        ),
                    )


def _in_scope(file: SourceFile) -> bool:
    return file.rel.startswith("repro/") and not exempt(file.rel)


@register
class NondeterminismRule(Rule):
    code = "REP002"
    summary = (
        "sim-path modules must route time through util.clock and randomness "
        "through util.rng (no ambient time/random/urandom), locally or "
        "through any chain of project-local calls from a handler"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        if not _in_scope(file):
            return
        scanner = AmbientSiteScanner(file.tree)
        for node, _label, message in scanner.sites(file.tree):
            yield Finding(
                rule=self.code,
                message=message,
                file=file.rel,
                line=node.lineno,
                column=node.col_offset,
            )

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.interprocedural:
            return

        def scanner_factory(file: SourceFile) -> Optional[SiteLister]:
            if not _in_scope(file):
                return None
            scanner = AmbientSiteScanner(file.tree)

            def sites(root: ast.AST) -> List[Tuple[ast.AST, str]]:
                return [(n, label) for n, label, _msg in scanner.sites(root)]

            return sites

        yield from entrypoint_reach_findings(
            project,
            self.code,
            scanner_factory,
            reason="ambient time/random taint breaks deterministic replay",
        )


__all__ = ["NondeterminismRule", "AmbientSiteScanner", "BANNED_ATTRIBUTES", "EXEMPT_FILES"]
