"""REP002 — no ambient nondeterminism in sim-path modules.

Deterministic replay (same seed → same packets, same virtual timestamps)
only holds while every time read goes through ``util.clock.Clock`` and
every random draw through ``util.rng.SeededRng``. One stray ``time.time()``
or module-level ``random.random()`` silently breaks replay for every
experiment, so the checker bans the ambient sources outright.

The wall-clock runtime layer (reactor, threaded runtime, thread-pool
scheduler, UDP transport) legitimately reads the machine clock; those
modules carry file-scope ``# repro: allow-file[REP002]`` waivers with
justifications rather than being silently exempted — the audit trail
stays in the report.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Tuple

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: ``module -> banned attributes`` (``*`` = every attribute). Keyed on the
#: imported module name, so aliased imports are tracked too.
BANNED_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "time": ("time", "monotonic", "perf_counter", "process_time", "time_ns",
             "monotonic_ns", "perf_counter_ns"),
    "datetime": ("now", "utcnow", "today"),
    "random": ("*",),
    "os": ("urandom",),
    "secrets": ("*",),
    "uuid": ("uuid1", "uuid4"),
}

#: Names that, when imported directly (``from time import time``), are
#: banned at call sites.
BANNED_DIRECT_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "time": ("time", "monotonic", "perf_counter", "process_time"),
    "datetime": ("datetime", "date"),  # datetime.now() via direct import
    "random": ("random", "randint", "uniform", "choice", "shuffle", "gauss",
               "sample", "randrange", "getrandbits", "expovariate"),
    "os": ("urandom",),
    "uuid": ("uuid1", "uuid4"),
}

#: Modules that *are* the sanctioned abstraction; the ban does not apply.
EXEMPT_FILES: Tuple[str, ...] = (
    "repro/util/clock.py",
    "repro/util/rng.py",
)

#: The static-analysis tooling itself is a dev-side tool, not sim-path.
EXEMPT_PREFIXES: Tuple[str, ...] = (
    "repro/analysis/",
)


def exempt(rel: str) -> bool:
    return rel in EXEMPT_FILES or rel.startswith(EXEMPT_PREFIXES)


@register
class NondeterminismRule(Rule):
    code = "REP002"
    summary = (
        "sim-path modules must route time through util.clock and randomness "
        "through util.rng (no ambient time/random/urandom)"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        if not file.rel.startswith("repro/") or exempt(file.rel):
            return
        # Map local names to the ambient modules they came from, honoring
        # aliases (``import random as rnd``) and direct imports.
        module_aliases: Dict[str, str] = {}
        direct_bans: Dict[str, str] = {}
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in BANNED_ATTRIBUTES:
                        module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in BANNED_DIRECT_IMPORTS:
                for alias in node.names:
                    if alias.name in BANNED_DIRECT_IMPORTS[node.module]:
                        direct_bans[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                module = module_aliases.get(node.value.id)
                if module is None:
                    continue
                banned = BANNED_ATTRIBUTES[module]
                if "*" in banned or node.attr in banned:
                    yield Finding(
                        rule=self.code,
                        message=(
                            f"ambient `{module}.{node.attr}` breaks deterministic "
                            f"replay — use util.clock.Clock / util.rng.SeededRng"
                        ),
                        file=file.rel,
                        line=node.lineno,
                        column=node.col_offset,
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                origin = direct_bans.get(node.func.id)
                if origin == "datetime.datetime" or origin == "datetime.date":
                    # Only the nondeterministic constructors are banned;
                    # ``datetime(...)`` literals are fine. Attribute calls
                    # like ``datetime.now()`` are caught below.
                    continue
                if origin is not None:
                    yield Finding(
                        rule=self.code,
                        message=(
                            f"ambient `{origin}` (imported directly) breaks "
                            f"deterministic replay — use util.clock / util.rng"
                        ),
                        file=file.rel,
                        line=node.lineno,
                        column=node.col_offset,
                    )
        # ``datetime.now()`` through a directly imported class.
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and direct_bans.get(node.value.id, "").startswith("datetime.")
                and node.attr in BANNED_ATTRIBUTES["datetime"] + ("today",)
            ):
                yield Finding(
                    rule=self.code,
                    message=(
                        f"ambient `{node.value.id}.{node.attr}` breaks "
                        f"deterministic replay — read time from util.clock"
                    ),
                    file=file.rel,
                    line=node.lineno,
                    column=node.col_offset,
                )


__all__ = ["NondeterminismRule", "BANNED_ATTRIBUTES", "EXEMPT_FILES"]
