"""REP005 — decode errors must be counted, never silently swallowed.

The admission layer can only quarantine an abusive source if every
frame-decode path *reports* its rejections: a handler that catches
``ProtocolError``/``EncodingError`` (or kin) and does nothing hides
hostile traffic from the defenses and from the operator. Garbage then
costs CPU forever without tripping a counter, a quarantine, or a flight
record — exactly the blind spot a :class:`GarbageFrameInjector` exploits.

A decode-error handler must therefore either re-raise (let a layer above
account for it) or route the rejection into the accounting surface:
``note_malformed``/``note_malformed_address`` on the admission
controller, a metrics ``counter``, a recorder entry, or one of the
``malformed_*``/abuse tallies. The canonical good shape is
``Container._ingest_data``::

    except (ProtocolError, EncodingError) as exc:
        self._note_malformed(frame, exc)

Scope: every ``repro/`` module. Waive per line with a justified
``# repro: allow[REP005]`` where swallowing is genuinely correct.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: Exception names whose catch sites are frame/payload decode paths.
_DECODE_ERRORS = {
    "ProtocolError",
    "EncodingError",
    "DecodeError",
    "JSONDecodeError",
    "UnicodeDecodeError",
    "struct.error",
}

#: A call or tally touching any of these routes the rejection into the
#: accounting surface (admission counters, quarantine, flight recorder).
_ACCOUNTING = re.compile(
    r"malformed|quarantine|admission|admit|abuse|counter|metric|record"
    r"|reject|drop|protocol_error|note_",
    re.IGNORECASE,
)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an expression (``struct.error``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    return ""


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["<bare>"]
    if isinstance(handler.type, ast.Tuple):
        return [_dotted(elt) for elt in handler.type.elts]
    return [_dotted(handler.type)]


def _terminal_name(node: ast.expr) -> str:
    """The rightmost identifier of a call target or assign target."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _accounts_for_rejection(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or feeds an accounting sink."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and _ACCOUNTING.search(
            _terminal_name(node.func)
        ):
            return True
        # Tallies kept as plain attributes: ``self.malformed_datagrams += 1``.
        if isinstance(node, (ast.AugAssign, ast.Assign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if any(_ACCOUNTING.search(_terminal_name(t)) for t in targets):
                return True
    return False


@register
class SilentDecodeDropRule(Rule):
    code = "REP005"
    summary = (
        "frame-decode rejections must re-raise or hit the admission/"
        "quarantine counters — no silent `except: pass` on parse errors"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        if not file.rel.startswith("repro/"):
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_names(node)
            decode = sorted(
                name
                for name in caught
                if name in _DECODE_ERRORS or name.split(".")[-1] in _DECODE_ERRORS
            )
            if not decode or _accounts_for_rejection(node):
                continue
            yield Finding(
                rule=self.code,
                message=(
                    f"decode error{'s' if len(decode) > 1 else ''} "
                    f"{', '.join(f'`{n}`' for n in decode)} swallowed without "
                    "accounting — re-raise or route through "
                    "`note_malformed`/a rejection counter so admission "
                    "can quarantine the source"
                ),
                file=file.rel,
                line=node.lineno,
                column=node.col_offset,
            )


__all__ = ["SilentDecodeDropRule"]
