"""Pluggable rule registry.

A rule is a class with a ``code``, a one-line ``summary``, and either (or
both) of ``check_file(project, file)`` — called once per scanned module —
and ``check_project(project)`` — called once per run for whole-tree
invariants. Registration is declarative::

    @register
    class MyRule(Rule):
        code = "REP999"
        summary = "what it enforces"

The engine applies suppressions afterwards; rules just yield findings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding


class Rule:
    """Base class for checker rules."""

    code: str = "REP???"
    summary: str = ""

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    if rule_class.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, ordered by code."""
    _load_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.analysis.rules import (  # noqa: F401
        rep001_transport,
        rep002_nondeterminism,
        rep003_frames,
        rep004_blocking,
        rep005_decode_paths,
        rep006_spec_hygiene,
        rep007_lockorder,
        rep008_schema_lock,
    )


__all__ = ["Rule", "register", "all_rules"]
