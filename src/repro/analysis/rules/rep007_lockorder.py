"""REP007 — static lock-order analysis over the project call graph.

The runtime :class:`~repro.analysis.sanitizers.lockorder.LockOrderRecorder`
catches lock-order inversions Eraser-style, but only on the interleavings
a particular run happens to exercise. This rule computes the acquisition
graph *statically*:

1. **Lock identities.** Every ``threading.Lock()`` / ``RLock()`` /
   ``Condition()`` (or ``recorder.wrap(...)``) assigned to a ``self``
   attribute or module-level name becomes a lock identity —
   ``Class.attr`` or ``module:NAME``. A ``Condition(lock)`` built over an
   identified lock *aliases* that lock (they share one mutex), so
   ``with self._cv`` and ``with self._lock`` are the same acquisition.
2. **Acquire sites.** ``with <lock>:`` blocks and bare ``<lock>.acquire()``
   calls inside every function, where ``<lock>`` resolves to an identity
   (``self._lock``, a module-level name, or a typed local).
3. **Held-set propagation.** Within a ``with A:`` body, every direct
   acquisition of ``B`` adds the edge ``A → B``; every *call* adds
   ``A → x`` for each ``x`` the callee may transitively acquire (a
   union-over-callees fixpoint from :mod:`repro.analysis.dataflow`).
4. **Cycle detection.** A cycle in the resulting edge graph is a
   potential deadlock: two threads taking the cycle from different entry
   edges can block each other forever. Each cycle is reported once, at
   the source site of its lexicographically-first edge, with the full
   cycle and the witness call chains in the finding.

The runtime recorder cross-checks against this graph: every edge the
recorder observes in a live run must appear here (see
``static_lock_graph().covers`` and the replay test) — if a dynamic edge
is missing, the static analysis lost track of a lock and the rule needs
a resolution fix, not the code a waiver.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.context import Project, SourceFile
from repro.analysis.dataflow import propagate
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: threading constructors that create a mutex of their own.
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Semaphore", "BoundedSemaphore"}
#: Condition shares the mutex passed to it (aliases); bare Condition()
#: owns a fresh RLock.
_CONDITION = "Condition"


@dataclass
class LockSite:
    """One static acquisition of an identified lock."""

    lock: str  # lock identity
    function: str  # qualname of the acquiring function
    rel: str
    lineno: int


@dataclass
class LockGraph:
    """The static acquisition-order graph plus naming metadata."""

    #: directed edges: held lock -> {acquired-while-held}
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: edge -> the (rel, lineno) site that introduced it
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]] = field(default_factory=dict)
    #: lock identity -> regex matching its runtime wrap-name, for the
    #: LockOrderRecorder cross-check (f-string wrap names become ``.*``).
    name_patterns: Dict[str, str] = field(default_factory=dict)
    #: every lock identity seen
    locks: Set[str] = field(default_factory=set)

    def add_edge(self, held: str, acquired: str, rel: str, lineno: int) -> None:
        if held == acquired:
            return  # re-entrant use of one lock is not an ordering
        bucket = self.edges.setdefault(held, set())
        if acquired not in bucket:
            bucket.add(acquired)
            self.edge_sites[(held, acquired)] = (rel, lineno)

    def find_cycles(self) -> List[List[str]]:
        """Every elementary cycle reachable in the edge graph, each
        reported once in canonical rotation (smallest node first)."""
        cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(self.edges):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for succ in sorted(self.edges.get(node, ())):
                    if succ == start and len(path) > 1:
                        pivot = path.index(min(path))
                        canon = tuple(path[pivot:] + path[:pivot])
                        cycles.add(canon)
                    elif succ not in path and len(path) < 16:
                        stack.append((succ, path + [succ]))
        return [list(c) for c in sorted(cycles)]

    # -- runtime cross-check ------------------------------------------------
    def _identities_matching(self, runtime_name: str) -> List[str]:
        out = []
        for lock, pattern in self.name_patterns.items():
            if re.fullmatch(pattern, runtime_name):
                out.append(lock)
        return out

    def covers(self, held_name: str, acquired_name: str) -> bool:
        """Is a runtime-observed edge (by wrap names) present statically?

        Every candidate identity pair is tried; one match suffices.
        """
        held_ids = self._identities_matching(held_name)
        acquired_ids = self._identities_matching(acquired_name)
        for h in held_ids:
            for a in acquired_ids:
                if a in self.edges.get(h, ()):
                    return True
        return False


def _pattern_from_wrap_arg(node: ast.expr) -> Optional[str]:
    """A regex for the wrap-name argument: literal strings match exactly,
    f-string fields become ``.*``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return re.escape(node.value)
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(re.escape(value.value))
            else:
                parts.append(".*")
        return "".join(parts)
    return None


def _lock_constructor(node: ast.expr) -> Optional[Tuple[str, Optional[str]]]:
    """Classify an expression as a lock creation.

    Returns ``(kind, wrap_pattern)`` where kind is "lock" or "condition",
    or None. ``recorder.wrap(lock, name)`` yields the wrap-name pattern.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in _LOCK_CONSTRUCTORS:
        return "lock", None
    if name == _CONDITION:
        return "condition", None
    if name == "wrap" and len(node.args) >= 2:
        pattern = _pattern_from_wrap_arg(node.args[1])
        inner = _lock_constructor(node.args[0])
        if pattern is not None or inner is not None:
            return "lock", pattern
    return None


class _ModuleLocks:
    """Lock identities declared in one module."""

    def __init__(self, file: SourceFile) -> None:
        self.rel = file.rel
        #: "Class.attr" or "module:NAME" -> wrap pattern (or None)
        self.locks: Dict[str, Optional[str]] = {}
        #: alias pairs: a Condition(lock) shares its lock's mutex
        self.aliases: Dict[str, str] = {}
        self._collect(file.tree)

    def _collect(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                made = _lock_constructor(stmt.value)
                if made is not None and isinstance(target, ast.Name):
                    self.locks[f"{self.rel}:{target.id}"] = made[1]
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)

    def _collect_class(self, cls: ast.ClassDef) -> None:
        # Statements are processed in source order so the dominant idiom
        # resolves: ``lock = Lock()`` (maybe rewrapped by the sanitizer),
        # ``self._lock = lock``, ``self._wakeup = Condition(lock)`` — the
        # Condition *aliases* self._lock (one shared mutex).
        class_id = f"{self.rel}:{cls.name}"
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_locks: Dict[str, Optional[str]] = {}
            local_stored: Dict[str, str] = {}  # local name -> lock identity
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                value = stmt.value
                made = _lock_constructor(value)
                if isinstance(target, ast.Name):
                    if made is not None:
                        local_locks[target.id] = made[1]
                    elif (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                    ):
                        local_stored[target.id] = f"{class_id}.{value.attr}"
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    identity = f"{class_id}.{target.attr}"
                    if made is not None:
                        kind, pattern = made
                        if (
                            kind == "condition"
                            and isinstance(value, ast.Call)
                            and value.args
                        ):
                            base = self._alias_target(
                                class_id, value.args[0], local_locks, local_stored
                            )
                            if base is not None:
                                self.aliases[identity] = base
                                continue
                        self.locks[identity] = pattern
                    elif isinstance(value, ast.Name) and value.id in local_locks:
                        self.locks[identity] = local_locks[value.id]
                        local_stored[value.id] = identity

    def _alias_target(
        self,
        class_id: str,
        node: ast.expr,
        local_locks: Dict[str, Optional[str]],
        local_stored: Dict[str, str],
    ) -> Optional[str]:
        """The identity a ``Condition(<arg>)`` mutex aliases, if known."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"{class_id}.{node.attr}"
        if isinstance(node, ast.Name) and node.id in local_stored:
            return local_stored[node.id]
        return None


def build_lock_graph(project: Project) -> LockGraph:
    """The full static analysis: identities, acquire sites, propagation,
    edge construction."""
    graph = project.callgraph()
    lock_graph = LockGraph()
    module_locks: Dict[str, _ModuleLocks] = {}
    for file in project.files:
        if not file.rel.startswith("repro/"):
            continue
        module_locks[file.rel] = _ModuleLocks(file)
        for identity, pattern in module_locks[file.rel].locks.items():
            lock_graph.locks.add(identity)
            lock_graph.name_patterns[identity] = (
                pattern if pattern is not None else re.escape(identity)
            )

    def resolve_alias(identity: str) -> str:
        seen = set()
        for locks in module_locks.values():
            while identity in locks.aliases and identity not in seen:
                seen.add(identity)
                identity = locks.aliases[identity]
        return identity

    # Per-function: direct acquire sites and with-block structure.
    local_acquires: Dict[str, Set[str]] = {}
    function_bodies: List[Tuple[str, SourceFile, ast.AST, Optional[str]]] = []
    for rel, file_locks in module_locks.items():
        file = project.file(rel)
        if file is None:
            continue
        for info in graph.functions_in(rel):
            function_bodies.append((info.qualname, file, info.node, info.class_name))

    def lock_of(node: ast.expr, class_name: Optional[str], rel: str) -> Optional[str]:
        """Resolve an expression to a lock identity, or None."""
        locks = module_locks[rel]
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and class_name is not None
        ):
            identity = f"{rel}:{class_name}.{node.attr}"
        elif isinstance(node, ast.Name):
            identity = f"{rel}:{node.id}"
        else:
            return None
        identity = resolve_alias(identity)
        if identity in locks.locks or identity in lock_graph.locks:
            return identity
        # An attribute that aliases another class's lock (unknown type):
        # unresolved, no edge.
        return None

    # First pass: every lock a function acquires directly (with or acquire).
    def direct_acquires(
        root: ast.AST, class_name: Optional[str], rel: str
    ) -> List[Tuple[str, int]]:
        out = []
        for node in ast.walk(root):
            if isinstance(node, ast.With):
                for item in node.items:
                    lock = lock_of(item.context_expr, class_name, rel)
                    if lock is not None:
                        out.append((lock, node.lineno))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                lock = lock_of(node.func.value, class_name, rel)
                if lock is not None:
                    out.append((lock, node.lineno))
        return out

    for qual, file, node, class_name in function_bodies:
        acquired = direct_acquires(node, class_name, file.rel)
        if acquired:
            local_acquires[qual] = {lock for lock, _ in acquired}

    summaries = propagate(graph, local_acquires)

    # Second pass: edges from with-block nesting and calls under held locks.
    for qual, file, node, class_name in function_bodies:
        _edges_in_function(
            lock_graph,
            graph,
            summaries,
            qual,
            file.rel,
            node,
            class_name,
            lock_of,
        )
    return lock_graph


def _edges_in_function(
    lock_graph: LockGraph,
    graph: CallGraph,
    summaries: Dict[str, Set[str]],
    qual: str,
    rel: str,
    root: ast.AST,
    class_name: Optional[str],
    lock_of: Callable[[ast.expr, Optional[str], str], Optional[str]],
) -> None:
    """Walk one function tracking the held-lock stack through ``with``
    nesting; record edges for inner acquisitions and for calls whose
    callee may acquire."""

    callee_by_line: Dict[int, List[str]] = {}
    for site in graph.callees(qual):
        callee_by_line.setdefault(site.lineno, []).append(site.callee)

    def walk(node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, ast.With):
            added: List[str] = []
            for item in node.items:
                lock = lock_of(item.context_expr, class_name, rel)
                if lock is not None:
                    for prior in held + tuple(added):
                        lock_graph.add_edge(prior, lock, rel, node.lineno)
                    added.append(lock)
            inner = held + tuple(added)
            for child in node.body:
                walk(child, inner)
            return
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                lock = lock_of(node.func.value, class_name, rel)
                if lock is not None:
                    for prior in held:
                        lock_graph.add_edge(prior, lock, rel, node.lineno)
            if held:
                for callee in callee_by_line.get(node.lineno, ()):  # call edges
                    for acquired in summaries.get(callee, ()):
                        for prior in held:
                            lock_graph.add_edge(prior, acquired, rel, node.lineno)
        for child in ast.iter_child_nodes(node):
            # Nested defs start with an empty held set at *call* time; the
            # conservative choice (they often run as callbacks) is to keep
            # the current held set — a with-block around a closure def is
            # rare enough that over-approximating here is acceptable.
            walk(child, held)

    walk(root, ())


def static_lock_graph(project: Project) -> LockGraph:
    """Public entry point for tests and the runtime cross-check."""
    return build_lock_graph(project)


@register
class LockOrderRule(Rule):
    code = "REP007"
    summary = (
        "static lock-order: no acquisition-order cycles across the project "
        "call graph (the compile-time face of the runtime LockOrderRecorder)"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.interprocedural:
            return
        lock_graph = build_lock_graph(project)
        for cycle in lock_graph.find_cycles():
            edges = list(zip(cycle, cycle[1:] + cycle[:1]))
            rel, lineno = lock_graph.edge_sites.get(edges[0], ("", 1))
            rendered = " -> ".join(cycle + [cycle[0]])
            sites = ", ".join(
                f"{a}->{b} @ {lock_graph.edge_sites[(a, b)][0]}:"
                f"{lock_graph.edge_sites[(a, b)][1]}"
                for a, b in edges
                if (a, b) in lock_graph.edge_sites
            )
            yield Finding(
                rule=self.code,
                message=(
                    f"potential lock-order inversion: acquisition cycle "
                    f"{rendered} — two threads interleaving across these "
                    f"sites can deadlock ({sites})"
                ),
                file=rel or "repro/",
                line=lineno,
                path=[f"{a} -> {b} [{lock_graph.edge_sites[(a, b)][0]}:{lock_graph.edge_sites[(a, b)][1]}]" for a, b in edges if (a, b) in lock_graph.edge_sites],
            )


__all__ = ["LockOrderRule", "LockGraph", "build_lock_graph", "static_lock_graph"]
