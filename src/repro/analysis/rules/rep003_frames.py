"""REP003 — frame-kind and wire-schema hygiene.

Two whole-tree invariants of the protocol layer:

1. Every ``MessageKind`` value in ``protocol/frames.py`` is registered
   exactly once. ``IntEnum`` silently *aliases* duplicate values — a new
   kind reusing an existing number would decode as the wrong message and
   corrupt every peer — so duplicates fail the build. Each kind must also
   be referenced somewhere outside ``frames.py``: a kind nobody produces
   or consumes is dead wire surface.

2. Every top-level ``*_SCHEMA`` in ``primitives/wire.py`` has a
   codec-parity test: the schema name must appear in the property-test
   suite (``tests/property``) that differentially round-trips every wire
   schema through the binary and compiled codecs. Schemas only used as
   components of another covered schema (e.g. ``CHUNK_RANGE_SCHEMA``
   inside ``FILE_NACK_SCHEMA``) are covered by composition.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Tuple

from repro.analysis.context import Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

FRAMES_FILE = "repro/protocol/frames.py"
WIRE_FILE = "repro/primitives/wire.py"
#: Every module that declares wire payload schemas. PR 5 only checked
#: ``primitives/wire.py``; the control-plane records and the fleet-scale
#: gossip payloads (BATCH/GOSSIP/ZONE_SUMMARY era) are wire surface too.
SCHEMA_FILES = (
    WIRE_FILE,
    "repro/container/records.py",
    "repro/container/gossip.py",
)
ENUM_NAME = "MessageKind"
SCHEMA_SUFFIX = "_SCHEMA"


def _enum_members(tree: ast.Module) -> List[Tuple[str, int, int]]:
    """``(name, value, lineno)`` for every int-literal member of MessageKind."""
    members: List[Tuple[str, int, int]] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == ENUM_NAME):
            continue
        for statement in node.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, int)
            ):
                members.append(
                    (statement.targets[0].id, statement.value.value, statement.lineno)
                )
    return members


def _schema_assignments(tree: ast.Module) -> List[Tuple[str, int]]:
    """Top-level ``NAME_SCHEMA = ...`` assignments as ``(name, lineno)``."""
    out: List[Tuple[str, int]] = []
    for statement in tree.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and statement.targets[0].id.endswith(SCHEMA_SUFFIX)
        ):
            out.append((statement.targets[0].id, statement.lineno))
    return out


def _composed_schemas(tree: ast.Module) -> set:
    """Schema names referenced inside *another* top-level schema definition
    (e.g. ``CHUNK_RANGE_SCHEMA`` inside ``FILE_NACK_SCHEMA``) — those are
    round-tripped by composition whenever the outer schema is."""
    composed: set = set()
    for statement in tree.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and statement.targets[0].id.endswith(SCHEMA_SUFFIX)
        ):
            for node in ast.walk(statement.value):
                if isinstance(node, ast.Name) and node.id.endswith(SCHEMA_SUFFIX):
                    composed.add(node.id)
    return composed


@register
class FrameRegistryRule(Rule):
    code = "REP003"
    summary = (
        "every MessageKind value is unique and referenced; every wire "
        "schema has a codec-parity property test"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        yield from self._check_kinds(project)
        yield from self._check_schemas(project)

    # -- frame kinds -------------------------------------------------------
    def _check_kinds(self, project: Project) -> Iterable[Finding]:
        frames = project.file(FRAMES_FILE)
        if frames is None:
            return
        members = _enum_members(frames.tree)
        by_value: Dict[int, List[Tuple[str, int]]] = {}
        for name, value, lineno in members:
            by_value.setdefault(value, []).append((name, lineno))
        for value, entries in sorted(by_value.items()):
            if len(entries) > 1:
                names = ", ".join(name for name, _ in entries)
                for name, lineno in entries[1:]:
                    yield Finding(
                        rule=self.code,
                        message=(
                            f"MessageKind value {value} registered more than "
                            f"once ({names}): IntEnum aliases duplicates and "
                            f"peers would decode the wrong message"
                        ),
                        file=frames.rel,
                        line=lineno,
                    )
        # Reference scan over every other module in the tree.
        corpus = "\n".join(
            f.source for f in project.files if f.rel != frames.rel
        )
        for name, _value, lineno in members:
            if f"{ENUM_NAME}.{name}" not in corpus:
                yield Finding(
                    rule=self.code,
                    message=(
                        f"MessageKind.{name} is registered but never produced "
                        f"or consumed outside frames.py — dead wire surface"
                    ),
                    file=frames.rel,
                    line=lineno,
                )

    # -- wire schemas ------------------------------------------------------
    def _check_schemas(self, project: Project) -> Iterable[Finding]:
        if project.tests_dir is None:
            return
        property_dir = project.tests_dir / "property"
        test_corpus = ""
        if property_dir.is_dir():
            test_corpus = "\n".join(
                p.read_text(encoding="utf-8")
                for p in sorted(property_dir.glob("*.py"))
            )
        for schema_file in SCHEMA_FILES:
            module = project.file(schema_file)
            if module is None:
                continue
            composed = _composed_schemas(module.tree)
            for name, lineno in _schema_assignments(module.tree):
                if re.search(rf"\b{name}\b", test_corpus):
                    continue
                if name in composed:
                    continue
                yield Finding(
                    rule=self.code,
                    message=(
                        f"wire schema {name} has no codec-parity property "
                        f"test under tests/property — add it to the "
                        f"differential round-trip suite"
                    ),
                    file=module.rel,
                    line=lineno,
                )


__all__ = ["FrameRegistryRule", "FRAMES_FILE", "WIRE_FILE", "SCHEMA_FILES"]
