"""REP004 — no blocking calls on the event-dispatch path, now transitive.

Reactor and handler callbacks share one serialization thread (the sim
kernel, the threaded reactor); a single blocking call — ``time.sleep``,
synchronous file I/O via builtin ``open``, a lock acquired without a
timeout, or a blocking socket send — stalls every container on that
runtime and, in flight terms, freezes the avionics bus. Handler code must
stay sans-io: yield to the scheduler, use timers, let the container do
the waiting.

Two passes:

- **Local** (PR 5 behavior): every blocking call site in a sim-path
  module is flagged where it stands.
- **Transitive** (interprocedural): a blocking site *reachable from a
  handler entry point* through any chain of project-local calls is also
  reported at the entry point, with the call path rendered in the
  finding — this is what catches the handler whose innocent-looking
  helper ends in ``time.sleep`` two hops away. Sites carrying a justified
  waiver are not taint sources (the waiver says the blocking is
  intentional, so chains through it are too).

Scope: every sim-path module (same surface as REP002). The wall-clock
harness modules waive the rule per line with justified
``# repro: allow[REP004]`` comments where blocking is the point
(e.g. ``ThreadedRuntime.run_for``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.analysis.context import Project, SourceFile
from repro.analysis.dataflow import SiteLister, entrypoint_reach_findings
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register
from repro.analysis.rules.rep002_nondeterminism import exempt

#: Socket send/recv methods that block the calling thread on a real
#: socket. Transitive-only sources: locally a bare ``.send``/``.recv``
#: attribute is too ambiguous to flag, but a *handler* whose call chain
#: ends on one of these (on a receiver conventionally named like a
#: socket) is a dispatch-thread stall regardless.
_SOCKET_METHODS = frozenset(
    {
        "sendto", "sendall", "send", "sendmsg",
        "recv", "recvfrom", "recvmsg", "recvmsg_into", "recv_into",
        "accept", "connect",
    }
)
_SOCKET_RECEIVERS = frozenset(
    {"sock", "_sock", "socket", "_socket", "conn", "_conn"}
)

_SLEEP_MESSAGE = (
    "blocking `time.sleep` on the dispatch path stalls every container — "
    "schedule a timer instead"
)
_OPEN_MESSAGE = (
    "synchronous file I/O (builtin `open`) on the dispatch path — hand it "
    "to the scheduler or a resource manager"
)
_ACQUIRE_MESSAGE = (
    "unbounded `.acquire()` — pass a timeout so a lost lock cannot freeze "
    "the dispatch thread forever"
)


class BlockingSiteScanner:
    """Finds blocking call sites under any AST node of one module.

    Import resolution (``import time as t``, ``from time import sleep``)
    is computed once per file so per-function scans stay cheap.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.time_aliases = {"time"}
        self.sleep_names: set = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self.time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        self.sleep_names.add(alias.asname or "sleep")

    def sites(self, root: ast.AST) -> Iterator[Tuple[ast.Call, str, str]]:
        """``(call_node, label, message)`` for every blocking site."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # time.sleep(...) / sleep(...)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id in self.time_aliases
            ) or (isinstance(func, ast.Name) and func.id in self.sleep_names):
                yield node, "time.sleep", _SLEEP_MESSAGE
            # builtin open(...): synchronous file I/O in a handler.
            elif isinstance(func, ast.Name) and func.id == "open":
                yield node, "open", _OPEN_MESSAGE
            # lock.acquire() without a timeout bound.
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and not node.args
                and not any(kw.arg == "timeout" for kw in node.keywords)
            ):
                yield node, ".acquire()", _ACQUIRE_MESSAGE

    def socket_sites(self, root: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
        """Blocking socket I/O sites (transitive-only sources)."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _SOCKET_METHODS
            ):
                continue
            receiver = func.value
            name: Optional[str] = None
            if isinstance(receiver, ast.Name):
                name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                name = receiver.attr
            if name in _SOCKET_RECEIVERS:
                yield node, f"socket.{func.attr}"


def _in_scope(file: SourceFile) -> bool:
    return file.rel.startswith("repro/") and not exempt(file.rel)


@register
class BlockingCallRule(Rule):
    code = "REP004"
    summary = (
        "no blocking calls (time.sleep, builtin open, lock acquire without "
        "timeout) inside reactor/handler code, locally or through any "
        "chain of project-local calls from a handler entry point"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        if not _in_scope(file):
            return
        scanner = BlockingSiteScanner(file.tree)
        for node, _label, message in scanner.sites(file.tree):
            yield Finding(
                rule=self.code,
                message=message,
                file=file.rel,
                line=node.lineno,
                column=node.col_offset,
            )

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.interprocedural:
            return

        def scanner_factory(file: SourceFile) -> Optional[SiteLister]:
            if not _in_scope(file):
                return None
            scanner = BlockingSiteScanner(file.tree)

            def sites(root: ast.AST) -> List[Tuple[ast.AST, str]]:
                out = [(n, label) for n, label, _msg in scanner.sites(root)]
                out.extend(scanner.socket_sites(root))
                return out

            return sites

        yield from entrypoint_reach_findings(
            project,
            self.code,
            scanner_factory,
            reason="one blocked dispatch thread stalls every container",
        )


__all__ = ["BlockingCallRule", "BlockingSiteScanner"]
