"""REP004 — no blocking calls on the event-dispatch path.

Reactor and handler callbacks share one serialization thread (the sim
kernel, the threaded reactor); a single blocking call — ``time.sleep``,
synchronous file I/O via builtin ``open``, or a lock acquired without a
timeout — stalls every container on that runtime and, in flight terms,
freezes the avionics bus. Handler code must stay sans-io: yield to the
scheduler, use timers, let the container do the waiting.

Scope: every sim-path module (same surface as REP002). The wall-clock
harness modules waive the rule per line with justified
``# repro: allow[REP004]`` comments where blocking is the point
(e.g. ``ThreadedRuntime.run_for``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register
from repro.analysis.rules.rep002_nondeterminism import exempt


@register
class BlockingCallRule(Rule):
    code = "REP004"
    summary = (
        "no blocking calls (time.sleep, builtin open, lock acquire without "
        "timeout) inside reactor/handler code"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        if not file.rel.startswith("repro/") or exempt(file.rel):
            return
        # Bare ``sleep(...)`` only counts when actually imported from time.
        sleep_names = set()
        time_aliases = {"time"}
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_names.add(alias.asname or "sleep")
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # time.sleep(...) / sleep(...)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ) or (isinstance(func, ast.Name) and func.id in sleep_names):
                yield Finding(
                    rule=self.code,
                    message=(
                        "blocking `time.sleep` on the dispatch path stalls "
                        "every container — schedule a timer instead"
                    ),
                    file=file.rel,
                    line=node.lineno,
                    column=node.col_offset,
                )
            # builtin open(...): synchronous file I/O in a handler.
            elif isinstance(func, ast.Name) and func.id == "open":
                yield Finding(
                    rule=self.code,
                    message=(
                        "synchronous file I/O (builtin `open`) on the dispatch "
                        "path — hand it to the scheduler or a resource manager"
                    ),
                    file=file.rel,
                    line=node.lineno,
                    column=node.col_offset,
                )
            # lock.acquire() without a timeout bound.
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and not node.args
                and not any(kw.arg == "timeout" for kw in node.keywords)
            ):
                yield Finding(
                    rule=self.code,
                    message=(
                        "unbounded `.acquire()` — pass a timeout so a lost "
                        "lock cannot freeze the dispatch thread forever"
                    ),
                    file=file.rel,
                    line=node.lineno,
                    column=node.col_offset,
                )


__all__ = ["BlockingCallRule"]
