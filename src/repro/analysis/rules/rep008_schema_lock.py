"""REP008 — wire-schema compatibility lockfile.

The committed ``schemas.lock.json`` pins a fingerprint for every
``MessageKind`` payload (and for the frame header itself). This rule
recomputes those fingerprints statically — evaluating the ``*_SCHEMA``
constants from the AST, hashing the ``struct.Struct`` formats of
hand-packed modules — and diffs against the lock:

- a locked fingerprint that changed (field reorder, type change,
  insertion, removal) is an error: wire compatibility with deployed
  peers requires a *new* ``MessageKind``, not a mutation of an old one;
- a kind present in the lock but gone from the enum is an error (peers
  may still emit it);
- a new kind with no lock entry, or a kind missing from the registry
  map, is an error until the lock is regenerated deliberately with
  ``repro.cli check --update-schema-lock``;
- header layout drift is an error for the same reason.

Trees without a ``protocol/wire_registry.py`` (fixtures for other
rules) are out of scope.
"""

from __future__ import annotations

from typing import Dict, Iterable, cast

from repro.analysis import schemas as schemalock
from repro.analysis.context import Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

_REGEN_HINT = "regenerate deliberately with `repro.cli check --update-schema-lock`"


@register
class SchemaLockRule(Rule):
    code = "REP008"
    summary = (
        "wire-schema lockfile: every MessageKind payload fingerprint matches "
        "schemas.lock.json; layout changes need a new kind"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        current = schemalock.compute_lock(project)
        if current is None:
            return
        registry = project.file(schemalock.REGISTRY_FILE)
        frames = project.file(schemalock.FRAMES_FILE)
        assert registry is not None and frames is not None
        for kind_name in cast(list, current["unmapped"]):
            yield Finding(
                rule=self.code,
                message=(
                    f"MessageKind.{kind_name} has no resolvable entry in "
                    f"wire_registry.KIND_SCHEMA_REFS — every kind must declare "
                    f"its payload layout so the lockfile can pin it"
                ),
                file=registry.rel,
                line=1,
            )
        lock_file = schemalock.lock_path(project.root)
        if lock_file is None:
            yield Finding(
                rule=self.code,
                message=(
                    f"no {schemalock.LOCK_FILENAME} found for this tree — "
                    f"the wire-schema lockfile is mandatory; {_REGEN_HINT}"
                ),
                file=registry.rel,
                line=1,
            )
            return
        try:
            locked = schemalock.load_lock(lock_file)
        except ValueError:
            yield Finding(
                rule=self.code,
                message=f"{lock_file.name} is not valid JSON — {_REGEN_HINT}",
                file=registry.rel,
                line=1,
            )
            return
        if locked.get("header") != current["header"]:
            yield Finding(
                rule=self.code,
                message=(
                    f"frame header layout changed (locked "
                    f"{locked.get('header')}, current {current['header']}) — "
                    f"a header change breaks every deployed peer; if this is "
                    f"a deliberate protocol version bump, {_REGEN_HINT}"
                ),
                file=frames.rel,
                line=1,
            )
        locked_kinds = cast(Dict[str, dict], locked.get("kinds", {}))
        current_kinds = cast(Dict[str, dict], current["kinds"])
        for kind_name, entry in sorted(current_kinds.items()):
            locked_entry = locked_kinds.get(kind_name)
            if locked_entry is None:
                yield Finding(
                    rule=self.code,
                    message=(
                        f"MessageKind.{kind_name} is not in "
                        f"{schemalock.LOCK_FILENAME} — new kinds must be "
                        f"locked before they ship; {_REGEN_HINT}"
                    ),
                    file=registry.rel,
                    line=1,
                )
                continue
            if locked_entry.get("fingerprint") == entry["fingerprint"]:
                continue
            detail = ""
            if "describe" in entry and "describe" in locked_entry:
                detail = (
                    f"; locked shape `{locked_entry['describe']}` vs current "
                    f"`{entry['describe']}`"
                )
            where = cast(str, entry.get("module") or entry.get("schema", ""))
            rel = where.partition("::")[0] or registry.rel
            yield Finding(
                rule=self.code,
                message=(
                    f"wire layout of MessageKind.{kind_name} changed without a "
                    f"new kind (locked fingerprint "
                    f"{locked_entry.get('fingerprint')}, current "
                    f"{entry['fingerprint']}){detail} — deployed peers decode "
                    f"by kind byte, so mutating a locked schema corrupts "
                    f"their view; mint a new MessageKind instead"
                ),
                file=rel,
                line=1,
            )
        for kind_name in sorted(set(locked_kinds) - set(current_kinds)):
            yield Finding(
                rule=self.code,
                message=(
                    f"MessageKind.{kind_name} is locked in "
                    f"{schemalock.LOCK_FILENAME} but no longer exists — peers "
                    f"may still emit it; keep the kind (even if ignored) or "
                    f"{_REGEN_HINT}"
                ),
                file=frames.rel,
                line=1,
            )


__all__ = ["SchemaLockRule"]
