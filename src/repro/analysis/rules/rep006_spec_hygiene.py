"""REP006 — temporal specs must name an owner and bound their obligations.

A runtime-verification spec is a *contract*, and a contract nobody owns
is noise: when ``verify`` flags a mission at 3 a.m., the violation
report routes to ``spec.owner`` — an anonymous spec has nowhere to
route. Likewise an unbounded ``response(trigger, reply)`` (no
``within=``) can never fire while the mission runs: the obligation only
collapses at ``finish()``, by which time the aircraft has landed. Both
shapes typecheck and run, which is exactly why they need a lint.

The rule fires on modules that import from :mod:`repro.verify` (missions,
examples, test suites, the shipped library alike) when they

- call ``Spec(...)`` without an ``owner=`` keyword, or with a literal
  empty/blank owner, or
- call ``response(...)`` without a ``within=`` bound (a deadline of
  ``None`` counts as unbounded).

Aliased imports (``from repro.verify import response as must_reply``)
are tracked; calls through other names or attribute paths that never
touch ``repro.verify`` stay out of scope. Waive per line with a
justified ``# repro: allow[REP006]`` — e.g. a liveness spec that is
*intentionally* open-ended and checked only at mission teardown.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: Names whose call sites the rule inspects, keyed by the verify-module
#: symbol they alias.
_WATCHED = ("Spec", "response")


def _verify_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local alias → verify symbol, for ``Spec``/``response`` imported from
    repro.verify (or a submodule). Empty when the module never imports them.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or not node.module:
            continue
        if node.module != "repro.verify" and not node.module.startswith(
            "repro.verify."
        ):
            continue
        for name in node.names:
            if name.name in _WATCHED:
                aliases[name.asname or name.name] = name.name
    return aliases


def _keyword(call: ast.Call, name: str) -> Optional[ast.keyword]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw
    return None


def _is_blank_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None
        or (isinstance(node.value, str) and not node.value.strip())
    )


@register
class SpecHygieneRule(Rule):
    code = "REP006"
    summary = (
        "temporal specs must carry an owner= and response() a within= "
        "bound — anonymous or unbounded obligations are unactionable"
    )

    def check_file(self, project: Project, file: SourceFile) -> Iterable[Finding]:
        aliases = _verify_aliases(file.tree)
        if not aliases:
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Name
            ):
                continue
            symbol = aliases.get(node.func.id)
            if symbol == "Spec":
                owner = _keyword(node, "owner")
                # Positional owner (2nd arg) satisfies the contract unless
                # it is a blank literal.
                positional = node.args[1] if len(node.args) > 1 else None
                if owner is None and positional is None:
                    yield self._finding(
                        file,
                        node,
                        "spec declared without owner= — violations route "
                        "to the owner; name the team or service on the "
                        "hook for this contract",
                    )
                else:
                    value = owner.value if owner is not None else positional
                    if _is_blank_literal(value):
                        yield self._finding(
                            file,
                            node,
                            "spec owner is blank — name a real owner so "
                            "the violation report is actionable",
                        )
            elif symbol == "response":
                within = _keyword(node, "within")
                if within is None and len(node.args) < 3:
                    yield self._finding(
                        file,
                        node,
                        "unbounded response() — without within= the "
                        "obligation only collapses at finish(), after the "
                        "mission; give the reply a deadline",
                    )
                elif within is not None and _is_blank_literal(within.value):
                    yield self._finding(
                        file,
                        node,
                        "response(within=None) is unbounded — give the "
                        "reply a finite deadline",
                    )

    def _finding(self, file: SourceFile, node: ast.Call, message: str) -> Finding:
        return Finding(
            rule=self.code,
            message=message,
            file=file.rel,
            line=node.lineno,
            column=node.col_offset,
        )


__all__ = ["SpecHygieneRule"]
