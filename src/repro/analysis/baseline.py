"""Baseline-gated reporting: separate pre-existing debt from new violations.

A baseline is a committed JSON inventory of the unsuppressed findings the
tree is *known* to carry (``analysis-baseline.json``). When a baseline is
applied, findings it covers are marked ``baselined`` — still reported,
still counted, but not a gate — while anything new fails CI. That lets a
rule land fleet-wide the day it is written instead of waiting for every
legacy violation to be paid down, without ever letting the debt grow.

Keys are *line-insensitive*: ``(rule, file, normalized message)`` with a
count per key, where line/column references inside the message text are
normalized away. Pure line drift from unrelated edits does not churn the
baseline; a genuinely new instance of the same violation in the same file
exceeds the count and gates.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding

BASELINE_FILENAME = "analysis-baseline.json"

#: ``path/to/file.py:123`` references embedded in messages (transitive
#: findings cite their sites) — the line part is normalized away.
_LINE_REF = re.compile(r"(\.py):\d+")

Key = Tuple[str, str, str]


def finding_key(finding: Finding) -> Key:
    return (
        finding.rule,
        finding.file,
        _LINE_REF.sub(r"\1", finding.message),
    )


def build_baseline(findings: List[Finding]) -> Dict[str, object]:
    """The baseline document covering every unsuppressed error finding."""
    counts: Dict[Key, int] = {}
    for finding in findings:
        if finding.suppressed or finding.severity != "error":
            continue
        key = finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"rule": rule, "file": file, "message": message, "count": count}
        for (rule, file, message), count in sorted(counts.items())
    ]
    return {"version": 1, "entries": entries}


def load_baseline(path: Path) -> Dict[Key, int]:
    doc = json.loads(path.read_text(encoding="utf-8"))
    counts: Dict[Key, int] = {}
    for entry in doc.get("entries", []):
        key = (str(entry["rule"]), str(entry["file"]), str(entry["message"]))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def apply_baseline(findings: List[Finding], counts: Dict[Key, int]) -> int:
    """Mark findings covered by the baseline; returns how many matched.

    Counts are consumed per key, so if the tree now has three instances of
    a violation the baseline only recorded twice, one of them gates.
    """
    remaining = dict(counts)
    matched = 0
    for finding in findings:
        if finding.suppressed or finding.severity != "error":
            continue
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.baselined = True
            matched += 1
    return matched


def write_baseline(path: Path, doc: Dict[str, object]) -> None:
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def baseline_path(root: Path) -> Path:
    """Committed location: repo root when scanning ``src/``, else the root."""
    for candidate in (root / BASELINE_FILENAME, root.parent / BASELINE_FILENAME):
        if candidate.is_file():
            return candidate
    return (root.parent if root.name == "src" else root) / BASELINE_FILENAME


__all__ = [
    "BASELINE_FILENAME",
    "apply_baseline",
    "baseline_path",
    "build_baseline",
    "finding_key",
    "load_baseline",
    "write_baseline",
]
