"""Shared context objects the engine hands to rules.

One :class:`SourceFile` per parsed module (source text + AST + its
suppressions), one :class:`Project` per run. Parsing happens exactly once
per file regardless of how many rules inspect it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionSet, collect

if TYPE_CHECKING:
    from repro.analysis.callgraph import CallGraph


@dataclass
class SourceFile:
    """One analyzed module."""

    path: Path  # absolute
    rel: str  # posix path relative to the scan root
    source: str
    tree: ast.Module
    suppressions: SuppressionSet
    parse_problems: List[Finding]

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        rel = path.relative_to(root).as_posix()
        suppressions, problems = collect(source, rel)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            tree = ast.Module(body=[], type_ignores=[])
            problems = problems + [
                Finding(
                    rule="REP000",
                    message=f"file does not parse: {exc.msg}",
                    file=rel,
                    line=exc.lineno or 1,
                )
            ]
        return cls(
            path=path,
            rel=rel,
            source=source,
            tree=tree,
            suppressions=suppressions,
            parse_problems=problems,
        )


@dataclass
class Project:
    """Everything one analysis run can see."""

    root: Path  # the scan root (the directory containing ``repro/``)
    files: List[SourceFile]
    #: Directory holding the test suite, for cross-checks like REP003's
    #: codec-parity coverage. ``None`` disables those checks.
    tests_dir: Optional[Path] = None
    #: When False, rules skip their call-graph passes (transitive REP002/
    #: REP004, REP007) — the PR 5 local-only behavior, kept selectable for
    #: the checker-cost benchmark and narrow scans.
    interprocedural: bool = True

    def __post_init__(self) -> None:
        self._by_rel: Dict[str, SourceFile] = {f.rel: f for f in self.files}
        self._callgraph = None

    def file(self, rel: str) -> Optional[SourceFile]:
        return self._by_rel.get(rel)

    def callgraph(self) -> "CallGraph":
        """The project call graph, built once on first use (lazy so
        local-only runs never pay for it)."""
        if self._callgraph is None:
            from repro.analysis.callgraph import build_callgraph

            self._callgraph = build_callgraph(self)
        return self._callgraph


__all__ = ["SourceFile", "Project"]
