"""Finding model and report assembly for the architectural checker.

A :class:`Finding` is one rule violation pinned to a file/line. Findings
survive suppression (they are reported as ``suppressed`` with their
justification) so the JSON report is a complete audit trail: what fired,
what was waived, and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Finding:
    """One rule violation (or checker meta-complaint such as REP000)."""

    rule: str
    message: str
    file: str  # path relative to the scan root, posix separators
    line: int
    column: int = 0
    severity: str = "error"  # "error" gates CI; "warning" is informational
    suppressed: bool = False
    justification: str = ""
    #: Interprocedural findings carry the call chain from the reported
    #: entry point to the offending site (rendered hop strings).
    path: List[str] = field(default_factory=list)
    #: True when a baseline was applied and this finding (keyed by
    #: rule/file/message) was already in it — tracked debt, not a gate.
    baselined: bool = False

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }
        if self.path:
            out["path"] = list(self.path)
        if self.baselined:
            out["baselined"] = True
        return out

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        if self.baselined:
            tag += " (baselined)"
        text = f"{self.file}:{self.line}:{self.column}: {self.rule} {self.message}{tag}"
        if self.path:
            text += f"\n    call path: {' -> '.join(self.path)}"
        return text


@dataclass
class Report:
    """The outcome of one analysis run."""

    root: str
    files_scanned: int
    findings: List[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> List[Finding]:
        return [
            f for f in self.findings if not f.suppressed and f.severity == "error"
        ]

    @property
    def new_unsuppressed(self) -> List[Finding]:
        """Unsuppressed errors not covered by the applied baseline — the
        CI gate once a baseline is in play."""
        return [f for f in self.unsuppressed if not f.baselined]

    @property
    def ok(self) -> bool:
        return not self.new_unsuppressed

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable report shape (stable; consumed by CI)."""
        return {
            "version": 1,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "counts": {
                "total": len(self.findings),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
                "unsuppressed": len(self.unsuppressed),
                "baselined": sum(1 for f in self.unsuppressed if f.baselined),
                "new": len(self.new_unsuppressed),
                "by_rule": self.counts_by_rule(),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


__all__ = ["Finding", "Report"]
