"""Architectural analysis: static checker + runtime sanitizers.

The static half (`python -m repro.analysis`) machine-checks the paper's
container invariants — services never touch the network (REP001), sim-path
code never reads ambient time/randomness (REP002), the frame/schema
registry stays sound (REP003), and dispatch-path code never blocks
(REP004) — with justified inline suppressions and a JSON report for CI.

The runtime half (:mod:`repro.analysis.sanitizers`) catches what static
analysis cannot: payload aliasing leaks across the local fast path and
lock-order inversions in the threaded runtime.
"""

from repro.analysis.engine import Analyzer, run_analysis
from repro.analysis.findings import Finding, Report
from repro.analysis.rules import Rule, all_rules, register

__all__ = [
    "Analyzer",
    "run_analysis",
    "Finding",
    "Report",
    "Rule",
    "register",
    "all_rules",
]
