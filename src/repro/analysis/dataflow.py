"""A small fixpoint dataflow framework over the project call graph.

The transitive rules all reduce to the same shape: each function has a set
of locally-established *facts* (an ambient ``time.time`` read, a blocking
``time.sleep``, a lock acquisition), and a function inherits every fact of
every callee. :func:`propagate` computes the transitive closure with a
worklist (facts only grow, the lattice is finite, so the fixpoint is
reached in O(edges × facts)).

For reporting, :func:`shortest_path` reconstructs the *shortest* call
chain from a root to a function that establishes a fact locally — that
chain is what a finding renders, e.g.::

    call path: CameraService.on_photo -> imaging.store.save_frame ->
    time.sleep (repro/imaging/store.py:88)
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.analysis.callgraph import CallGraph, CallSite

if TYPE_CHECKING:
    import ast

    from repro.analysis.context import Project, SourceFile
    from repro.analysis.findings import Finding

Fact = TypeVar("Fact", bound=Hashable)

#: A per-file site lister: AST subtree -> [(node, label), ...].
SiteLister = Callable[["ast.AST"], List[Tuple["ast.AST", str]]]
#: Per-file scanner builder; None means the file is out of the rule's scope.
ScannerFactory = Callable[["SourceFile"], Optional[SiteLister]]


def propagate(
    graph: CallGraph,
    local_facts: Dict[str, Set[Fact]],
) -> Dict[str, Set[Fact]]:
    """Union-over-callees fixpoint: ``summary(f) = local(f) ∪ ⋃ summary(g)``
    for every resolved callee ``g`` of ``f``.

    ``local_facts`` maps function qualnames to the facts they establish
    directly; functions absent from the map contribute nothing locally.
    Returns the transitive summaries (every function present in the graph
    or the fact map gets an entry).
    """
    summaries: Dict[str, Set[Fact]] = {
        qual: set(facts) for qual, facts in local_facts.items()
    }
    # Reverse edges: whom to revisit when a summary grows.
    callers: Dict[str, List[str]] = {}
    for site in graph.calls:
        callers.setdefault(site.callee, []).append(site.caller)
    worklist = deque(summaries)
    while worklist:
        qual = worklist.popleft()
        facts = summaries.get(qual)
        if not facts:
            continue
        for caller in callers.get(qual, ()):  # propagate up one level
            target = summaries.setdefault(caller, set())
            before = len(target)
            target |= facts
            if len(target) != before:
                worklist.append(caller)
    return summaries


def shortest_path(
    graph: CallGraph,
    root: str,
    fact: Fact,
    local_facts: Dict[str, Set[Fact]],
    summaries: Dict[str, Set[Fact]],
) -> Optional[List[CallSite]]:
    """BFS the call edges from ``root`` to the nearest function that
    establishes ``fact`` locally, moving only through functions whose
    summary carries the fact. Returns the edge list (empty when ``root``
    itself establishes the fact), or None when unreachable."""
    if fact in local_facts.get(root, ()):
        return []
    seen: Set[str] = {root}
    queue: deque = deque([(root, [])])
    while queue:
        qual, path = queue.popleft()
        for site in graph.callees(qual):
            callee = site.callee
            if callee in seen:
                continue
            if fact not in summaries.get(callee, ()):
                continue
            seen.add(callee)
            extended = path + [site]
            if fact in local_facts.get(callee, ()):
                return extended
            queue.append((callee, extended))
    return None


def render_path(graph: CallGraph, root: str, path: List[CallSite]) -> str:
    """``A -> B -> C`` using display-short names, with the hop sites."""
    root_info = graph.functions.get(root)
    parts = [root_info.short if root_info else root.rsplit(".", 1)[-1]]
    for site in path:
        info = graph.functions.get(site.callee)
        label = info.short if info else site.callee.rsplit(".", 1)[-1]
        parts.append(f"{label} [{site.rel}:{site.lineno}]")
    return " -> ".join(parts)


class HeldSetAnalysis(Generic[Fact]):
    """Context-augmented propagation for REP007: which locks may a call
    *acquire* while a given set is held.

    Unlike :func:`propagate` (one summary per function), lock-order edges
    depend on the held set at the call site, but only through its union —
    so one pass computes ``may_acquire`` per function and the rule crosses
    it with the held set at each call site.
    """

    def __init__(self, graph: CallGraph, local_acquires: Dict[str, Set[Fact]]) -> None:
        self.graph = graph
        self.local = local_acquires
        self.summaries = propagate(graph, local_acquires)

    def may_acquire(self, qual: str) -> FrozenSet[Fact]:
        return frozenset(self.summaries.get(qual, ()))

    def witness(self, qual: str, fact: Fact) -> Optional[Tuple[str, List[CallSite]]]:
        """A concrete chain showing ``qual`` acquiring ``fact``: the path
        plus the function that acquires it locally."""
        path = shortest_path(self.graph, qual, fact, self.local, self.summaries)
        if path is None:
            return None
        end = path[-1].callee if path else qual
        return end, path


def reachable_from(
    graph: CallGraph, roots: List[str]
) -> Dict[str, int]:
    """Qualname → hop distance for everything reachable from ``roots``."""
    dist: Dict[str, int] = {root: 0 for root in roots}
    queue = deque(roots)
    while queue:
        qual = queue.popleft()
        for site in graph.callees(qual):
            if site.callee not in dist:
                dist[site.callee] = dist[qual] + 1
                queue.append(site.callee)
    return dist


MakeKey = Callable[[Fact], Hashable]


def entrypoint_reach_findings(
    project: "Project",
    rule_code: str,
    scanner_factory: "ScannerFactory",
    reason: str,
) -> Iterator["Finding"]:
    """Shared driver for the transitive REP002/REP004 passes.

    ``scanner_factory(file)`` returns either ``None`` (file out of scope)
    or a callable ``sites(ast_node) -> iterable of (node, label)`` listing
    the rule's local violation sites under one AST node. Sites with a
    matching suppression are dropped from the taint sources (the waiver
    states the site is intentional, so chains through it are too).

    Yields one finding per (handler entry point, reachable site) pair
    where the site lives in a *different* function — same-function sites
    are the local rule's job — with the full call chain rendered into
    ``Finding.path``.
    """
    from repro.analysis.findings import Finding

    graph = project.callgraph()
    local: Dict[str, Set[Tuple[str, int, str]]] = {}
    for file in project.files:
        sites_in = scanner_factory(file)
        if sites_in is None:
            continue
        for info in graph.functions_in(file.rel):
            for node, label in sites_in(info.node):
                if file.suppressions.covers(rule_code, node.lineno):
                    continue
                fact = (file.rel, node.lineno, label)
                local.setdefault(info.qualname, set()).add(fact)
    if not local:
        return
    summaries = propagate(graph, local)
    for entry in graph.entry_points():
        facts = summaries.get(entry.qualname)
        if not facts:
            continue
        own = local.get(entry.qualname, set())
        for fact in sorted(facts - own):
            site_rel, site_line, label = fact
            path = shortest_path(
                graph, entry.qualname, fact, local, summaries
            )
            if not path:
                continue  # unreachable artifact or local-only
            hops = [entry.short]
            for site in path:
                callee = graph.functions.get(site.callee)
                name = callee.short if callee else site.callee
                hops.append(f"{name} [{site.rel}:{site.lineno}]")
            hops.append(f"{label} [{site_rel}:{site_line}]")
            yield Finding(
                rule=rule_code,
                message=(
                    f"handler `{entry.short}` reaches `{label}` "
                    f"({site_rel}:{site_line}) through project-local calls"
                    f" — {reason}"
                ),
                file=entry.rel,
                line=entry.lineno,
                path=hops,
            )


__all__ = [
    "propagate",
    "shortest_path",
    "render_path",
    "reachable_from",
    "HeldSetAnalysis",
    "entrypoint_reach_findings",
]

