"""Lock-order recorder for the threaded runtime.

Eraser-style lockset discipline: every ``TrackedLock`` acquisition while
other tracked locks are held adds edges to a global acquisition graph
(held → acquiring). A cycle in that graph is a lock-order *inversion* —
two threads that interleave unluckily will deadlock — reported the moment
the second ordering is observed, long before the deadlock ever fires in
the field.

Enable it by wrapping the runtime's locks (``ThreadedRuntime(
lock_sanitizer=True)`` wires the reactor and schedulers automatically)::

    recorder = LockOrderRecorder()
    lock = recorder.wrap(threading.Lock(), "egress.queue")

Disabled (the default) nothing is wrapped and the runtime uses plain
``threading`` primitives — zero overhead.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Set


class LockOrderRecorder:
    """Builds the acquisition graph and detects order inversions."""

    def __init__(self) -> None:
        self._tls = threading.local()
        #: directed edges: lock name -> set of names acquired while held
        self._edges: Dict[str, Set[str]] = {}
        self._graph_lock = threading.Lock()
        self.inversions: List[Dict[str, object]] = []
        self.acquisitions = 0

    # -- wrapping -----------------------------------------------------------
    def wrap(self, lock: Any, name: str) -> "TrackedLock":
        return TrackedLock(lock, name, self)

    # -- per-thread held stack ---------------------------------------------
    def _held(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- graph maintenance --------------------------------------------------
    def note_before_acquire(self, name: str) -> None:
        """Record ordering edges *before* blocking, so an actual deadlock
        still leaves the inversion on record."""
        held = self._held()
        if not held:
            return
        with self._graph_lock:
            for prior in held:
                if prior == name:
                    continue  # re-entrant use of one lock is not an ordering
                edges = self._edges.setdefault(prior, set())
                if name in edges:
                    continue
                edges.add(name)
                cycle = self._find_path(name, prior)
                if cycle is not None:
                    self.inversions.append(
                        {
                            "held": prior,
                            "acquiring": name,
                            "cycle": [prior] + cycle,
                            "thread": threading.current_thread().name,
                        }
                    )

    def note_acquired(self, name: str) -> None:
        self.acquisitions += 1
        self._held().append(name)

    def note_released(self, name: str) -> None:
        held = self._held()
        # Remove the most recent acquisition of this name (locks are not
        # always released LIFO across callbacks).
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS for a path start → … → goal through the edge set (caller
        holds the graph lock)."""
        seen = {start}
        stack: List[List[str]] = [[start]]
        while stack:
            path = stack.pop()
            node = path[-1]
            if node == goal:
                return path
            for successor in sorted(self._edges.get(node, ())):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(path + [successor])
        return None

    def edges(self) -> Dict[str, Set[str]]:
        """A snapshot of the observed acquisition graph (held → acquired).

        The static REP007 analysis cross-checks against this: every edge a
        live run records must already be in the static lock graph (see
        ``repro.analysis.rules.rep007_lockorder.LockGraph.covers``).
        """
        with self._graph_lock:
            return {name: set(succ) for name, succ in self._edges.items()}

    # -- reporting ----------------------------------------------------------
    def report_into(self, recorder: Any = None, metrics: Any = None) -> int:
        """Push every recorded inversion into a FlightRecorder and/or a
        MetricsRegistry; returns the inversion count."""
        for inversion in self.inversions:
            if recorder is not None:
                recorder.record(
                    "sanitizer",
                    check="lock-order",
                    held=inversion["held"],
                    acquiring=inversion["acquiring"],
                    cycle="->".join(inversion["cycle"]),
                )
        if metrics is not None and self.inversions:
            metrics.counter("lock_order_inversions").inc(len(self.inversions))
        return len(self.inversions)


class TrackedLock:
    """A lock proxy feeding a :class:`LockOrderRecorder`.

    Duck-types ``threading.Lock`` closely enough to back a
    ``threading.Condition`` (acquire/release/context manager).
    """

    def __init__(self, lock: Any, name: str, recorder: LockOrderRecorder) -> None:
        self._lock = lock
        self.name = name
        self._recorder = recorder

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            # Edges are recorded pre-acquire so a real deadlock still
            # documents itself; try-acquires probe and add no ordering.
            self._recorder.note_before_acquire(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._recorder.note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._recorder.note_released(self.name)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __repr__(self) -> str:
        return f"<TrackedLock {self.name} {self._lock!r}>"


__all__ = ["LockOrderRecorder", "TrackedLock"]
