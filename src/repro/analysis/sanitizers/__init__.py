"""Runtime sanitizers: invariants static analysis cannot see.

- :mod:`repro.analysis.sanitizers.payload` — catches payloads mutated
  after publication leaking across the container's local fast path
  (which bypasses serialization and therefore copy-on-send).
- :mod:`repro.analysis.sanitizers.lockorder` — records the lock
  acquisition graph of the threaded runtime and reports order inversions
  (eraser-style lockset analysis) before they become rare deadlocks.

Both are off by default and byte/behavior-identical when disabled.
"""

from repro.analysis.sanitizers.lockorder import LockOrderRecorder, TrackedLock
from repro.analysis.sanitizers.payload import PayloadMutationError, PayloadSanitizer

__all__ = [
    "PayloadSanitizer",
    "PayloadMutationError",
    "LockOrderRecorder",
    "TrackedLock",
]
