"""Payload-aliasing sanitizer.

The container's same-node fast path hands local subscribers (and the
publisher's own ``last_value`` cache) *the same object* the publisher
passed to ``publish()`` — remote peers get a serialized copy, locals get
the alias. A publisher that recycles its sample dict, or a subscriber
that scribbles on a received value, therefore corrupts every other local
observer in a way the wire never would. This is the mutation-leak class
the checker (REP001-REP004) cannot see statically.

Three modes:

- ``off`` (default): every hook is a cheap ``enabled`` flag test; the
  data path is byte- and behavior-identical to a build without the
  sanitizer.
- ``checksum``: a stable deep digest of the payload is taken at publish
  time and re-verified at the next publish of the same name, at explicit
  checkpoints, and at container stop. A digest mismatch means someone
  mutated the published object graph after it left the publisher —
  reported to the FlightRecorder and metrics (and raised in strict mode).
- ``freeze``: local deliveries receive a deep-frozen copy (`dict`/`list`
  subclasses whose mutators raise), so the mutation is caught at the
  mutation site with a stack trace instead of after the fact. Remote
  bytes are unaffected (encoding happens before freezing).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, NoReturn, Optional, Tuple

from repro.util.errors import MiddlewareError

MODES = ("off", "checksum", "freeze")


class PayloadMutationError(MiddlewareError):
    """A published payload was mutated after publication (aliasing leak)."""


class FrozenDict(dict):
    """A dict whose mutators raise; delivered in ``freeze`` mode."""

    def _frozen(self, *_args: Any, **_kwargs: Any) -> "NoReturn":
        raise PayloadMutationError(
            "attempt to mutate a published payload (payload sanitizer is in "
            "freeze mode); copy the value before modifying it"
        )

    __setitem__ = _frozen
    __delitem__ = _frozen
    clear = _frozen
    pop = _frozen
    popitem = _frozen
    setdefault = _frozen
    update = _frozen


class FrozenList(list):
    """A list whose mutators raise; delivered in ``freeze`` mode."""

    def _frozen(self, *_args: Any, **_kwargs: Any) -> "NoReturn":
        raise PayloadMutationError(
            "attempt to mutate a published payload (payload sanitizer is in "
            "freeze mode); copy the value before modifying it"
        )

    __setitem__ = _frozen
    __delitem__ = _frozen
    __iadd__ = _frozen
    __imul__ = _frozen
    append = _frozen
    extend = _frozen
    insert = _frozen
    pop = _frozen
    remove = _frozen
    reverse = _frozen
    sort = _frozen
    clear = _frozen


def deep_freeze(value: Any) -> Any:
    """Recursively wrap containers in their frozen counterparts."""
    if isinstance(value, dict):
        return FrozenDict(
            (key, deep_freeze(item)) for key, item in value.items()
        )
    if isinstance(value, (list, tuple)):
        frozen = [deep_freeze(item) for item in value]
        return tuple(frozen) if isinstance(value, tuple) else FrozenList(frozen)
    return value


def digest(value: Any) -> str:
    """A stable deep digest of a payload value graph.

    Dict iteration order is part of the digest on purpose: the codec
    encodes fields in schema order and local subscribers observe the
    dict as-is, so any observable change must change the digest.
    """
    hasher = hashlib.sha256()
    _feed(hasher, value)
    return hasher.hexdigest()


def _feed(hasher: "hashlib._Hash", value: Any) -> None:
    if isinstance(value, dict):
        hasher.update(b"D%d:" % len(value))
        for key, item in value.items():
            _feed(hasher, key)
            _feed(hasher, item)
    elif isinstance(value, (list, tuple)):
        hasher.update(b"L%d:" % len(value))
        for item in value:
            _feed(hasher, item)
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, float)):
        hasher.update(b"N" + repr(value).encode("ascii"))
    elif isinstance(value, str):
        hasher.update(b"S" + value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        hasher.update(b"Y" + bytes(value))
    elif value is None:
        hasher.update(b"_")
    else:  # unknown leaf: identity only (cannot checksum, cannot freeze)
        hasher.update(b"O" + str(id(value)).encode("ascii"))


class PayloadSanitizer:
    """Per-container publish-time payload guard (see module docstring)."""

    def __init__(
        self,
        mode: str = "off",
        recorder: Optional[Any] = None,
        metrics: Optional[Any] = None,
        strict: bool = False,
    ) -> None:
        self.configure(mode, strict)
        self._recorder = recorder
        self._metrics = metrics
        #: ``(kind, name) -> (payload object, digest at publish)``
        self._tracked: Dict[Tuple[str, str], Tuple[Any, str]] = {}
        self.violations: List[Dict[str, object]] = []

    def configure(self, mode: str, strict: Optional[bool] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"payload sanitizer mode must be one of {MODES}")
        self.mode = mode
        self.enabled = mode != "off"
        if strict is not None:
            self.strict = strict
        elif not hasattr(self, "strict"):
            self.strict = False

    # -- hot-path hooks -----------------------------------------------------
    def on_publish(self, kind: str, name: str, value: Any) -> Any:
        """Intercept a payload at publish time.

        Returns the value local subscribers should see (a frozen copy in
        ``freeze`` mode, the original otherwise). Callers only invoke this
        when ``enabled`` — the off path stays a single flag test.
        """
        key = (kind, name)
        self._verify(key)
        if self.mode == "freeze":
            value = deep_freeze(value)
        self._tracked[key] = (value, digest(value))
        return value

    # -- checkpoints --------------------------------------------------------
    def verify_all(self) -> List[Dict[str, object]]:
        """Re-verify every tracked payload; returns violations found now."""
        before = len(self.violations)
        for key in list(self._tracked):
            self._verify(key)
        return self.violations[before:]

    def _verify(self, key: Tuple[str, str]) -> None:
        entry = self._tracked.get(key)
        if entry is None:
            return
        value, expected = entry
        actual = digest(value)
        if actual == expected:
            return
        del self._tracked[key]  # report each mutation once
        kind, name = key
        violation = {
            "kind": kind,
            "name": name,
            "expected": expected,
            "actual": actual,
        }
        self.violations.append(violation)
        if self._metrics is not None:
            self._metrics.counter(
                "sanitizer_payload_mutations", kind=kind, payload=name
            ).inc()
        if self._recorder is not None:
            self._recorder.record(
                "sanitizer", check="payload-aliasing", kind=kind, name=name
            )
        if self.strict:
            raise PayloadMutationError(
                f"payload of {kind} {name!r} was mutated after publish "
                f"(digest {expected[:12]} -> {actual[:12]}); local "
                f"subscribers share the object — copy before mutating"
            )

    def clear(self) -> None:
        self._tracked.clear()


__all__ = [
    "PayloadSanitizer",
    "PayloadMutationError",
    "FrozenDict",
    "FrozenList",
    "deep_freeze",
    "digest",
    "MODES",
]
