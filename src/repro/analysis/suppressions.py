"""Inline suppression comments.

Two forms, both requiring a justification after ``--``:

- line scope, trailing the flagged line (or on a comment line directly
  above it)::

      time.sleep(poll)  # repro: allow[REP004] -- wall-clock polling bridge

- file scope, anywhere in the file (conventionally in the module
  docstring's wake)::

      # repro: allow-file[REP002] -- this module IS the wall-clock runtime

A suppression without justification does not suppress anything; it is
itself reported as REP000 so bare waivers cannot accumulate. Unused
suppressions are reported as warnings (they do not gate CI but show up in
the report for garbage collection).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding

#: Meta-rule code for malformed suppressions.
META_RULE = "REP000"

_PATTERN = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\[(?P<codes>[A-Za-z0-9*,\s]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass
class Suppression:
    codes: Tuple[str, ...]
    line: int  # the source line the comment covers (file scope: 0)
    justification: str
    file_scope: bool = False
    used: bool = False

    def matches(self, rule: str) -> bool:
        return "*" in self.codes or rule in self.codes


@dataclass
class SuppressionSet:
    """All suppressions of one file, indexed for the engine."""

    by_line: Dict[int, List[Suppression]] = field(default_factory=dict)
    file_wide: List[Suppression] = field(default_factory=list)

    def apply(self, rule: str, line: int) -> Suppression:
        """The suppression covering (rule, line), or None. Marks it used."""
        for suppression in self.by_line.get(line, ()):
            if suppression.matches(rule):
                suppression.used = True
                return suppression
        for suppression in self.file_wide:
            if suppression.matches(rule):
                suppression.used = True
                return suppression
        return None

    def covers(self, rule: str, line: int) -> bool:
        """Like :meth:`apply` but read-only: does not mark the suppression
        used. The transitive rules use this to drop waived sites from
        their taint sources without claiming the waiver."""
        return any(
            s.matches(rule) for s in self.by_line.get(line, ())
        ) or any(s.matches(rule) for s in self.file_wide)

    def all(self) -> List[Suppression]:
        out = list(self.file_wide)
        for entries in self.by_line.values():
            out.extend(entries)
        return out


def collect(source: str, rel_path: str) -> Tuple[SuppressionSet, List[Finding]]:
    """Parse every suppression comment in ``source``.

    Returns the usable suppressions plus REP000 findings for malformed
    ones (missing justification).
    """
    suppressions = SuppressionSet()
    problems: List[Finding] = []
    lines = source.splitlines()
    for lineno, text, comment_only in _comments(source):
        match = _PATTERN.search(text)
        if match is None:
            continue
        why = (match.group("why") or "").strip()
        if not why:
            problems.append(
                Finding(
                    rule=META_RULE,
                    message=(
                        "suppression without justification: write "
                        "`# repro: allow[CODE] -- <why this is intentional>`"
                    ),
                    file=rel_path,
                    line=lineno,
                )
            )
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if match.group("scope"):
            suppressions.file_wide.append(
                Suppression(codes=codes, line=0, justification=why, file_scope=True)
            )
            continue
        # A comment-only line covers the next *code* line (the comment may
        # wrap over several lines); a trailing comment covers its own line.
        target = lineno
        if comment_only:
            target = lineno + 1
            while target <= len(lines) and (
                not lines[target - 1].strip()
                or lines[target - 1].lstrip().startswith("#")
            ):
                target += 1
        suppressions.by_line.setdefault(target, []).append(
            Suppression(codes=codes, line=target, justification=why)
        )
    return suppressions, problems


def _comments(source: str) -> List[Tuple[int, str, bool]]:
    """``(line, comment_text, is_comment_only_line)`` for every real comment.

    Tokenizing (instead of regex over raw lines) keeps suppression syntax
    shown inside docstrings — like the examples above — inert.
    """
    out: List[Tuple[int, str, bool]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out  # unparseable files are reported by the engine already
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comment_only = token.line[: token.start[1]].strip() == ""
            out.append((token.start[0], token.string, comment_only))
    return out


__all__ = ["Suppression", "SuppressionSet", "collect", "META_RULE"]
