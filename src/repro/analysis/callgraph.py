"""Project-wide call graph for interprocedural rules.

The PR 5 rules see one file at a time, so a handler that calls a helper
which calls ``time.sleep`` slips through. This module turns the
:class:`~repro.analysis.context.Project` file set into a best-effort call
graph over *project-local* calls, which the transitive rules (REP002,
REP004, REP007) walk.

Resolution is deliberately conservative — a call that cannot be pinned to
a project function adds **no** edge (under-approximation). The resolved
forms are the ones that dominate this tree:

- ``f(...)`` — a module-level function, an imported project function
  (``from repro.x import f``), or a project class (→ ``Class.__init__``);
- ``self.m(...)`` — a method on the enclosing class or a project-resolved
  base class;
- ``mod.f(...)`` — through an ``import repro.x as mod`` alias;
- ``x.m(...)`` — when ``x`` is a parameter or local whose project class is
  known from an annotation or a ``x = Class(...)`` assignment, or a
  ``self.attr.m(...)`` whose attribute type was recorded in ``__init__``
  (assignment or annotation).

Entry points — the roots the transitive rules report at — are every
function defined under ``repro/services/`` plus every ``on_*`` /
``handle_*`` (and underscore-prefixed) method anywhere on the sim path:
those are the functions the container invokes on the dispatch thread.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.context import Project, SourceFile

#: Method-name prefixes the container/runtime invokes as dispatch callbacks.
HANDLER_PREFIXES: Tuple[str, ...] = ("on_", "_on_", "handle_", "_handle_")

#: Modules whose functions are entry points wholesale: service code runs
#: only when the container dispatches into it.
SERVICE_PREFIX = "repro/services/"


def module_name(rel: str) -> str:
    """``repro/container/gossip.py`` → ``repro.container.gossip``."""
    name = rel[:-3] if rel.endswith(".py") else rel
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # module.Class.method or module.function
    rel: str  # file, relative to the scan root
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # enclosing class, unqualified

    @property
    def short(self) -> str:
        """``Class.method`` / ``function`` — the display form."""
        parts = self.qualname.split(".")
        if self.class_name is not None:
            return ".".join(parts[-2:])
        return parts[-1]


@dataclass
class CallSite:
    """One resolved project-local call."""

    caller: str  # qualname
    callee: str  # qualname
    rel: str
    lineno: int


@dataclass
class ClassInfo:
    qualname: str
    rel: str
    bases: List[str] = field(default_factory=list)  # qualnames, best effort
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # self.x -> class qualname


class _ModuleScope:
    """Name-resolution context of one module."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: local alias -> fully qualified target ("repro.x" or "repro.x.f")
        self.imports: Dict[str, str] = {}
        #: names defined at module level (functions/classes) -> qualname
        self.defs: Dict[str, str] = {}


class CallGraph:
    """Functions, classes, and resolved project-local call edges."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: List[CallSite] = []
        #: caller qualname -> list of CallSite
        self.out_edges: Dict[str, List[CallSite]] = {}

    # -- queries -----------------------------------------------------------
    def callees(self, qualname: str) -> List[CallSite]:
        return self.out_edges.get(qualname, [])

    def functions_in(self, rel: str) -> List[FunctionInfo]:
        return sorted(
            (f for f in self.functions.values() if f.rel == rel),
            key=lambda f: f.lineno,
        )

    def entry_points(self) -> List[FunctionInfo]:
        """Dispatch-path roots: service functions + handler-named methods."""
        out = []
        for info in self.functions.values():
            bare = info.qualname.rsplit(".", 1)[-1]
            if info.rel.startswith(SERVICE_PREFIX):
                if not bare.startswith("__"):
                    out.append(info)
            elif info.class_name is not None and bare.startswith(HANDLER_PREFIXES):
                out.append(info)
        return sorted(out, key=lambda f: (f.rel, f.lineno))

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        scopes: Dict[str, _ModuleScope] = {}
        project_modules: Set[str] = {module_name(f.rel) for f in project.files}
        # Pass 1: index every function/class and the import table per module.
        for file in project.files:
            scopes[file.rel] = _index_module(graph, file, project_modules)
        _resolve_bases(graph)
        # Pass 2: record self-attribute types, then resolve calls.
        for file in project.files:
            _collect_attr_types(graph, file, scopes[file.rel])
        for file in project.files:
            _resolve_calls(graph, file, scopes[file.rel])
        for site in graph.calls:
            graph.out_edges.setdefault(site.caller, []).append(site)
        return graph


def build_callgraph(project: Project) -> CallGraph:
    return CallGraph.build(project)


# -- pass 1: indexing ---------------------------------------------------------


def _index_module(
    graph: CallGraph, file: SourceFile, project_modules: Set[str]
) -> _ModuleScope:
    module = module_name(file.rel)
    scope = _ModuleScope(module)
    for node in file.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _record_import(scope, node, project_modules)
    # Imports can also appear inside functions (late imports); honor them.
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and node not in file.tree.body:
            _record_import(scope, node, project_modules)
    for node in file.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module}.{node.name}"
            scope.defs[node.name] = qual
            graph.functions[qual] = FunctionInfo(
                qualname=qual, rel=file.rel, lineno=node.lineno, node=node
            )
        elif isinstance(node, ast.ClassDef):
            qual = f"{module}.{node.name}"
            scope.defs[node.name] = qual
            info = ClassInfo(qualname=qual, rel=file.rel)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qual = f"{qual}.{item.name}"
                    info.methods[item.name] = method_qual
                    graph.functions[method_qual] = FunctionInfo(
                        qualname=method_qual,
                        rel=file.rel,
                        lineno=item.lineno,
                        node=item,
                        class_name=node.name,
                    )
            info.bases = [
                b for b in (_base_name(base) for base in node.bases) if b
            ]
            graph.classes[qual] = info
    return scope


def _record_import(
    scope: _ModuleScope, node: ast.stmt, project_modules: Set[str]
) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] == "repro":
                scope.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    scope.imports[alias.asname] = alias.name
    elif isinstance(node, ast.ImportFrom) and node.module:
        base = node.module
        if node.level:  # relative import: resolve against this module
            parts = scope.module.split(".")
            base = ".".join(parts[: len(parts) - node.level] + [node.module])
        if base.split(".")[0] != "repro" and not base.startswith("repro"):
            if base not in project_modules:
                return
        for alias in node.names:
            scope.imports[alias.asname or alias.name] = f"{base}.{alias.name}"


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        value = _base_name(node.value)
        return f"{value}.{node.attr}" if value else None
    return None


def _resolve_bases(graph: CallGraph) -> None:
    """Rewrite base-name strings into class qualnames where possible."""
    by_short: Dict[str, List[str]] = {}
    for qual in graph.classes:
        by_short.setdefault(qual.rsplit(".", 1)[-1], []).append(qual)
    for info in graph.classes.values():
        resolved = []
        for base in info.bases:
            short = base.rsplit(".", 1)[-1]
            candidates = by_short.get(short, [])
            if len(candidates) == 1:
                resolved.append(candidates[0])
        info.bases = resolved


def _mro_method(graph: CallGraph, class_qual: str, method: str) -> Optional[str]:
    """Find ``method`` on ``class_qual`` or its project-resolved bases."""
    seen: Set[str] = set()
    stack = [class_qual]
    while stack:
        qual = stack.pop(0)
        if qual in seen:
            continue
        seen.add(qual)
        info = graph.classes.get(qual)
        if info is None:
            continue
        if method in info.methods:
            return info.methods[method]
        stack.extend(info.bases)
    return None


# -- pass 2: type hints and call resolution -----------------------------------


def _annotation_class(
    graph: CallGraph, scope: _ModuleScope, node: Optional[ast.expr]
) -> Optional[str]:
    """Resolve an annotation expression to a project class qualname."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip().strip('"')
    else:
        name = _base_name(node) or ""
    if not name:
        return None
    # Optional[X] / "X" — take the bare trailing identifier chain.
    name = name.rsplit("[", 1)[-1].rstrip("]")
    return _lookup_class(graph, scope, name)


def _lookup_class(
    graph: CallGraph, scope: _ModuleScope, name: str
) -> Optional[str]:
    if not name:
        return None
    head = name.split(".")[0]
    target = scope.defs.get(name) or scope.imports.get(name)
    if target is None and head in scope.imports:
        target = scope.imports[head] + name[len(head):]
    if target is None:
        target = name if name in graph.classes else None
    if target is not None and target in graph.classes:
        return target
    return None


def _constructed_class(
    graph: CallGraph, scope: _ModuleScope, node: ast.expr
) -> Optional[str]:
    """``Class(...)`` / ``mod.Class(...)`` → class qualname, else None."""
    if not isinstance(node, ast.Call):
        return None
    name = _base_name(node.func)
    if name is None:
        return None
    return _lookup_class(graph, scope, name)


def _collect_attr_types(
    graph: CallGraph, file: SourceFile, scope: _ModuleScope
) -> None:
    """Record ``self.attr`` project-class types from assignments and
    annotations in every method body."""
    for node in file.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = graph.classes.get(f"{scope.module}.{node.name}")
        if info is None:
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                target = None
                value_class = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value_class = _constructed_class(graph, scope, stmt.value)
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    value_class = _annotation_class(graph, scope, stmt.annotation)
                    if value_class is None and stmt.value is not None:
                        value_class = _constructed_class(graph, scope, stmt.value)
                if (
                    target is not None
                    and value_class is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_types.setdefault(target.attr, value_class)


class _FunctionResolver(ast.NodeVisitor):
    """Resolve the calls inside one function body."""

    def __init__(
        self,
        graph: CallGraph,
        scope: _ModuleScope,
        info: FunctionInfo,
        class_qual: Optional[str],
    ) -> None:
        self.graph = graph
        self.scope = scope
        self.info = info
        self.class_qual = class_qual
        #: local variable -> project class qualname
        self.local_types: Dict[str, str] = {}
        args = info.node.args  # type: ignore[attr-defined]
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cls = _annotation_class(graph, scope, arg.annotation)
            if cls is not None:
                self.local_types[arg.arg] = cls

    def visit_Assign(self, node: ast.Assign) -> None:
        cls = _constructed_class(self.graph, self.scope, node.value)
        if cls is not None and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.local_types[target.id] = cls
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        cls = _annotation_class(self.graph, self.scope, node.annotation)
        if cls is not None and isinstance(node.target, ast.Name):
            self.local_types[node.target.id] = cls
        self.generic_visit(node)

    # Nested defs get their own FunctionInfo pass? They are not indexed as
    # project functions; treat their bodies as part of the enclosing
    # function (closures run when called, but edges still flow through the
    # enclosing function in practice for this tree).

    def visit_Call(self, node: ast.Call) -> None:
        callee = self.resolve(node.func)
        if callee is not None:
            self.graph.calls.append(
                CallSite(
                    caller=self.info.qualname,
                    callee=callee,
                    rel=self.info.rel,
                    lineno=node.lineno,
                )
            )
        self.generic_visit(node)

    def resolve(self, func: ast.expr) -> Optional[str]:
        graph, scope = self.graph, self.scope
        if isinstance(func, ast.Name):
            target = scope.defs.get(func.id) or scope.imports.get(func.id)
            if target is None:
                return None
            if target in graph.functions:
                return target
            if target in graph.classes:
                return _mro_method(graph, target, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        method = func.attr
        # self.m(...)
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if self.class_qual is not None:
                return _mro_method(graph, self.class_qual, method)
            return None
        # mod.f(...) / mod.Class(...) via import alias, incl. dotted chains.
        dotted = _base_name(receiver)
        if dotted is not None:
            head = dotted.split(".")[0]
            if head in scope.imports:
                prefix = scope.imports[head] + dotted[len(head):]
                target = f"{prefix}.{method}"
                if target in graph.functions:
                    return target
                if target in graph.classes:
                    return _mro_method(graph, target, "__init__")
        # x.m(...) for a typed local/parameter.
        if isinstance(receiver, ast.Name):
            cls = self.local_types.get(receiver.id)
            if cls is not None:
                return _mro_method(graph, cls, method)
        # self.attr.m(...) through the recorded attribute types.
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and self.class_qual is not None
        ):
            seen: Set[str] = set()
            stack = [self.class_qual]
            while stack:
                qual = stack.pop(0)
                if qual in seen:
                    continue
                seen.add(qual)
                info = graph.classes.get(qual)
                if info is None:
                    continue
                cls = info.attr_types.get(receiver.attr)
                if cls is not None:
                    return _mro_method(graph, cls, method)
                stack.extend(info.bases)
        return None


def _resolve_calls(graph: CallGraph, file: SourceFile, scope: _ModuleScope) -> None:
    for qual, info in list(graph.functions.items()):
        if info.rel != file.rel:
            continue
        class_qual = (
            qual.rsplit(".", 2)[0] + "." + info.class_name
            if info.class_name is not None
            else None
        )
        resolver = _FunctionResolver(graph, scope, info, class_qual)
        for stmt in info.node.body:  # type: ignore[attr-defined]
            resolver.visit(stmt)


def iter_calls_under(
    info: FunctionInfo, node: ast.AST
) -> Iterable[ast.Call]:
    """Every Call node inside ``node`` (helper for rules that need
    positional context, e.g. REP007's with-block scoping)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "build_callgraph",
    "module_name",
    "HANDLER_PREFIXES",
    "SERVICE_PREFIX",
]
