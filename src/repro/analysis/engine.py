"""The analysis engine: load files once, run every rule, apply suppressions.

The engine is the only component that knows about suppressions — rules
yield raw findings and the engine decides what they mean:

- a finding with a matching, justified suppression is kept but marked
  ``suppressed`` (audit trail, not silence);
- a suppression with no justification is itself a REP000 error;
- a suppression that never matched anything becomes a warning, so stale
  waivers surface instead of rotting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.context import Project, SourceFile
from repro.analysis.findings import Finding, Report
from repro.analysis.rules import Rule, all_rules
from repro.analysis.suppressions import META_RULE


def discover_files(root: Path, paths: Optional[Sequence[Path]] = None) -> List[Path]:
    """Every ``*.py`` under ``paths`` (default: the whole root), sorted."""
    targets = [root] if not paths else list(paths)
    seen = {}
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            seen[target.resolve()] = None
            continue
        for path in sorted(target.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            seen[path.resolve()] = None
    return sorted(seen)


class Analyzer:
    """One configured analysis run."""

    def __init__(
        self,
        root: Path,
        rules: Optional[Iterable[Rule]] = None,
        tests_dir: Optional[Path] = None,
        interprocedural: bool = True,
        baseline: Optional[Path] = None,
    ) -> None:
        self.root = Path(root).resolve()
        self.rules: List[Rule] = (
            list(rules) if rules is not None else [cls() for cls in all_rules()]
        )
        if tests_dir is None:
            # Conventional layout: <repo>/src/repro next to <repo>/tests.
            candidate = self.root.parent / "tests"
            tests_dir = candidate if candidate.is_dir() else None
        self.tests_dir = tests_dir
        self.interprocedural = interprocedural
        self.baseline = baseline

    def run(self, paths: Optional[Sequence[Path]] = None) -> Report:
        files = [
            SourceFile.load(path, self.root)
            for path in discover_files(self.root, paths)
        ]
        project = Project(
            root=self.root,
            files=files,
            tests_dir=self.tests_dir,
            interprocedural=self.interprocedural,
        )
        findings: List[Finding] = []
        for file in files:
            findings.extend(file.parse_problems)
            for rule in self.rules:
                findings.extend(rule.check_file(project, file))
        for rule in self.rules:
            findings.extend(rule.check_project(project))
        self._apply_suppressions(project, findings)
        findings.extend(self._unused_suppressions(project))
        findings.sort(key=lambda f: (f.file, f.line, f.rule, f.column))
        if self.baseline is not None and self.baseline.is_file():
            from repro.analysis.baseline import apply_baseline, load_baseline

            apply_baseline(findings, load_baseline(self.baseline))
        return Report(
            root=str(self.root), files_scanned=len(files), findings=findings
        )

    def _apply_suppressions(self, project: Project, findings: List[Finding]) -> None:
        for finding in findings:
            if finding.rule == META_RULE:
                continue  # the meta-rule cannot be waived
            file = project.file(finding.file)
            if file is None:
                continue
            suppression = file.suppressions.apply(finding.rule, finding.line)
            if suppression is not None:
                finding.suppressed = True
                finding.justification = suppression.justification

    def _unused_suppressions(self, project: Project) -> List[Finding]:
        out: List[Finding] = []
        for file in project.files:
            for suppression in file.suppressions.all():
                if suppression.used:
                    continue
                codes = ",".join(suppression.codes)
                out.append(
                    Finding(
                        rule=META_RULE,
                        message=(
                            f"suppression allow[{codes}] never matched a "
                            f"finding — stale waiver, remove it"
                        ),
                        file=file.rel,
                        line=suppression.line or 1,
                        severity="warning",
                    )
                )
        return out


def run_analysis(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    tests_dir: Optional[Path] = None,
    interprocedural: bool = True,
    baseline: Optional[Path] = None,
) -> Report:
    """Convenience one-shot entry point (used by the CLIs and tests)."""
    return Analyzer(
        root,
        tests_dir=tests_dir,
        interprocedural=interprocedural,
        baseline=baseline,
    ).run(paths)


__all__ = ["Analyzer", "run_analysis", "discover_files"]
