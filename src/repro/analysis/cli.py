"""Command line for the architectural checker.

    python -m repro.analysis [check] [PATHS...] [--root DIR] [--format text|json]
    python -m repro.analysis --list-rules

Exit status: 0 when no unsuppressed error findings, 1 otherwise, 2 on
usage errors. The JSON format is the machine-readable report consumed by
the ``lint-and-analyze`` CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, cast

from repro.analysis.engine import run_analysis
from repro.analysis.rules import all_rules


def _default_root() -> Path:
    """``src`` when invoked from a repo checkout, else the package parent."""
    package_root = Path(__file__).resolve().parent.parent.parent
    return package_root


def _update_schema_lock(root: Path, paths: Optional[List[Path]]) -> int:
    from repro.analysis import schemas as schemalock
    from repro.analysis.context import Project, SourceFile
    from repro.analysis.engine import discover_files

    files = [SourceFile.load(p, root) for p in discover_files(root, paths)]
    project = Project(root=root, files=files)
    lock = schemalock.compute_lock(project)
    if lock is None:
        print(
            f"error: no {schemalock.REGISTRY_FILE} in this tree — nothing to lock",
            file=sys.stderr,
        )
        return 2
    if lock["unmapped"]:
        names = ", ".join(lock["unmapped"])  # type: ignore[arg-type]
        print(
            f"error: kinds without a resolvable wire_registry entry: {names}",
            file=sys.stderr,
        )
        return 1
    del lock["unmapped"]  # resolved-empty; keep the committed file minimal
    target = schemalock.default_lock_path(root)
    schemalock.write_lock(target, lock)
    kinds = cast(dict, lock["kinds"])
    print(f"wrote {target} locking {len(kinds)} kind(s) + frame header")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Architectural lint for the middleware tree (REP001-REP004)",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="check",
        choices=["check"],
        help="subcommand (only 'check' for now)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: <root>/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="scan root containing the repro/ package (default: autodetected src/)",
    )
    parser.add_argument(
        "--tests-dir",
        type=Path,
        default=None,
        help="test-suite directory for cross-checks (default: <root>/../tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--no-interprocedural",
        action="store_true",
        help="skip the call-graph passes (transitive REP002/REP004, REP007)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file of known findings to gate against "
            "(default: autodiscovered analysis-baseline.json; "
            "--baseline '' disables)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run's unsuppressed findings and exit",
    )
    parser.add_argument(
        "--update-schema-lock",
        action="store_true",
        help="regenerate schemas.lock.json from the current wire schemas and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in all_rules():
            print(f"{rule_class.code}  {rule_class.summary}")
        return 0

    root = (args.root or _default_root()).resolve()
    if not root.is_dir():
        print(f"error: scan root {root} is not a directory", file=sys.stderr)
        return 2
    if args.paths:
        paths = [Path(p).resolve() for p in args.paths]
        for path in paths:
            if not path.exists():
                print(f"error: no such path {path}", file=sys.stderr)
                return 2
    else:
        default_target = root / "repro"
        paths = [default_target] if default_target.is_dir() else None

    if args.update_schema_lock:
        return _update_schema_lock(root, paths)

    from repro.analysis.baseline import baseline_path, build_baseline, write_baseline

    if args.baseline is not None:
        baseline = args.baseline if str(args.baseline) else None
    else:
        baseline = baseline_path(root)

    report = run_analysis(
        root,
        paths=paths,
        tests_dir=args.tests_dir,
        interprocedural=not args.no_interprocedural,
        baseline=None if args.update_baseline else baseline,
    )

    if args.update_baseline:
        target = baseline or baseline_path(root)
        write_baseline(target, build_baseline(report.findings))
        covered = sum(
            1 for f in report.findings if not f.suppressed and f.severity == "error"
        )
        print(f"wrote {target} covering {covered} finding(s)")
        return 0

    if args.output_format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = report.to_dict()["counts"]
        print(
            f"{report.files_scanned} files scanned: "
            f"{counts['unsuppressed']} finding(s), "
            f"{counts['suppressed']} suppressed"
        )
    return 0 if report.ok else 1


__all__ = ["main"]
