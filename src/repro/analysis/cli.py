"""Command line for the architectural checker.

    python -m repro.analysis [check] [PATHS...] [--root DIR] [--format text|json]
    python -m repro.analysis --list-rules

Exit status: 0 when no unsuppressed error findings, 1 otherwise, 2 on
usage errors. The JSON format is the machine-readable report consumed by
the ``lint-and-analyze`` CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import run_analysis
from repro.analysis.rules import all_rules


def _default_root() -> Path:
    """``src`` when invoked from a repo checkout, else the package parent."""
    package_root = Path(__file__).resolve().parent.parent.parent
    return package_root


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Architectural lint for the middleware tree (REP001-REP004)",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="check",
        choices=["check"],
        help="subcommand (only 'check' for now)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: <root>/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="scan root containing the repro/ package (default: autodetected src/)",
    )
    parser.add_argument(
        "--tests-dir",
        type=Path,
        default=None,
        help="test-suite directory for cross-checks (default: <root>/../tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in all_rules():
            print(f"{rule_class.code}  {rule_class.summary}")
        return 0

    root = (args.root or _default_root()).resolve()
    if not root.is_dir():
        print(f"error: scan root {root} is not a directory", file=sys.stderr)
        return 2
    if args.paths:
        paths = [Path(p).resolve() for p in args.paths]
        for path in paths:
            if not path.exists():
                print(f"error: no such path {path}", file=sys.stderr)
                return 2
    else:
        default_target = root / "repro"
        paths = [default_target] if default_target.is_dir() else None

    report = run_analysis(root, paths=paths, tests_dir=args.tests_dir)

    if args.output_format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = report.to_dict()["counts"]
        print(
            f"{report.files_scanned} files scanned: "
            f"{counts['unsuppressed']} finding(s), "
            f"{counts['suppressed']} suppressed"
        )
    return 0 if report.ok else 1


__all__ = ["main"]
