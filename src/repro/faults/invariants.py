"""Runtime invariants checked around a chaos campaign.

A checker attaches *before* the faults fire, records everything observable
(service lifecycle transitions chain through
:attr:`~repro.container.lifecycle.ServiceRecord.observer`), and is asked
afterwards — once every injected fault has healed and the domain had time
to settle — whether the middleware's contracts held:

1. **Lifecycle legality** — no service ever took a transition outside the
   ``_TRANSITIONS`` table, and no escalated service silently resurrected.
2. **Invocation termination** — every in-flight invocation terminated with
   a result or a defined error; no call handle leaks forever.
3. **Directory convergence** — after heal, every running container on an
   up node sees every other such container alive, and sees the providers
   it actually offers.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.container.lifecycle import (
    ServiceRecord,
    ServiceState,
    is_legal_transition,
)
from repro.runtime.simruntime import SimRuntime


class InvariantChecker:
    """Observes a :class:`SimRuntime` and validates §3 contracts.

    Usage::

        checker = InvariantChecker(runtime)   # after services installed
        campaign.run()
        violations = checker.check()
        assert violations == []
    """

    def __init__(self, runtime: SimRuntime, attach: bool = True):
        self._runtime = runtime
        #: Every observed lifecycle transition: (container, service, old, new).
        self.transitions: List[Tuple[str, str, ServiceState, ServiceState]] = []
        self.violations: List[str] = []
        #: Per-container flight-recorder dumps, captured by :meth:`check`
        #: when violations exist — the moments before the failure.
        self.flight_dumps: dict = {}
        if attach:
            self.attach()

    # -- observation ----------------------------------------------------------
    def attach(self) -> None:
        """Chain onto the transition observer of every installed service."""
        for container_id, container in self._runtime.containers.items():
            for record in container.services():
                self._watch(container_id, record)

    def _watch(self, container_id: str, record: ServiceRecord) -> None:
        previous = record.observer

        def observe(rec: ServiceRecord, old: ServiceState, new: ServiceState) -> None:
            if previous is not None:
                previous(rec, old, new)
            self.transitions.append((container_id, rec.name, old, new))
            if not is_legal_transition(old, new):
                self.violations.append(
                    f"{container_id}/{rec.name}: illegal transition "
                    f"{old.value} -> {new.value}"
                )
            if rec.escalated and new == ServiceState.RUNNING:
                self.violations.append(
                    f"{container_id}/{rec.name}: escalated service resurrected"
                )

        record.observer = observe

    # -- verdicts ------------------------------------------------------------
    def check(self, expect_converged: bool = True) -> List[str]:
        """All post-campaign checks; returns accumulated violations.

        On any violation the flight recorders are dumped into
        :attr:`flight_dumps` (and :meth:`dump_json` renders them) so the
        failure is diagnosable after the fact."""
        self.check_invocations_terminated()
        if expect_converged:
            self.check_directory_converged()
        self.check_escalations_final()
        if self.violations:
            self.flight_dumps = {
                container_id: container.recorder.dump()
                for container_id, container in sorted(
                    self._runtime.containers.items()
                )
            }
        return self.violations

    def dump_json(self, indent: int = 2) -> str:
        """Violations plus the captured flight-recorder dumps as JSON."""
        import json

        return json.dumps(
            {"violations": self.violations, "flight_recorders": self.flight_dumps},
            indent=indent,
            default=str,
        )

    def check_invocations_terminated(self) -> List[str]:
        for container_id, container in self._runtime.containers.items():
            pending = container.invocations.pending_calls()
            for handle in pending:
                self.violations.append(
                    f"{container_id}: invocation {handle.function!r} "
                    f"({handle.call_id}) never terminated"
                )
        return self.violations

    def check_directory_converged(self) -> List[str]:
        """Every running container on an up node must see every other one
        alive, with its running services listed."""
        reachable = {
            cid: c
            for cid, c in self._runtime.containers.items()
            if c.running and self._runtime.network.attach(c.config.node).up
        }
        for a_id, a in reachable.items():
            for b_id, b in reachable.items():
                if a_id == b_id:
                    continue
                record = a.directory.record(b_id)
                if record is None or not record.alive:
                    self.violations.append(
                        f"directory of {a_id} does not see {b_id} alive after heal"
                    )
                    continue
                running = {r.name for r in b.services() if r.is_running}
                if running - set(record.services):
                    self.violations.append(
                        f"directory of {a_id} is missing services "
                        f"{sorted(running - set(record.services))} of {b_id}"
                    )
        return self.violations

    def check_escalations_final(self) -> List[str]:
        for container_id, container in self._runtime.containers.items():
            for record in container.services():
                if record.escalated and record.state != ServiceState.FAILED:
                    self.violations.append(
                        f"{container_id}/{record.name}: escalated but in state "
                        f"{record.state.value}"
                    )
        return self.violations


__all__ = ["InvariantChecker"]
