"""Runtime invariants checked around a chaos campaign.

A checker attaches *before* the faults fire, records everything observable
(service lifecycle transitions chain through
:attr:`~repro.container.lifecycle.ServiceRecord.observer`), and is asked
afterwards — once every injected fault has healed and the domain had time
to settle — whether the middleware's contracts held:

1. **Lifecycle legality** — no service ever took a transition outside the
   ``_TRANSITIONS`` table, and no escalated service silently resurrected.
2. **Invocation termination** — every in-flight invocation terminated with
   a result or a defined error; no call handle leaks forever.
3. **Directory convergence** — after heal, every running container on an
   up node sees every other such container alive, and sees the providers
   it actually offers.
4. **Control-plane liveness under attack** — armed with
   :meth:`~InvariantChecker.watch_control_liveness`, the checker samples
   pairwise aliveness while the campaign (attacks included) runs: a
   running container on an up node seen *dead* by a peer is a starvation
   violation. :meth:`~InvariantChecker.check_rpc_p99` bounds RPC tail
   latency over the same window.

Each violation is also recorded *structured* in :attr:`records`, with the
dominant attacking source id and band (from the victim's admission and
reliability-abuse counters) attributed — so an attack test can assert not
just that something was dropped but *who* caused it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.container.lifecycle import (
    ServiceRecord,
    ServiceState,
    is_legal_transition,
)
from repro.runtime.simruntime import SimRuntime


class InvariantChecker:
    """Observes a :class:`SimRuntime` and validates §3 contracts.

    Usage::

        checker = InvariantChecker(runtime)   # after services installed
        campaign.run()
        violations = checker.check()
        assert violations == []
    """

    def __init__(self, runtime: SimRuntime, attach: bool = True):
        self._runtime = runtime
        #: Every observed lifecycle transition: (container, service, old, new).
        self.transitions: List[Tuple[str, str, ServiceState, ServiceState]] = []
        self.violations: List[str] = []
        #: Structured violation records: dicts with ``message``, the victim
        #: ``container``, and — when the victim's counters point at one —
        #: the dominant ``attacker`` source id and ``band``.
        self.records: List[dict] = []
        #: (container_a, container_b, time) liveness samples where a saw b
        #: falsely dead (filled by :meth:`watch_control_liveness`).
        self.false_dead_samples: List[Tuple[str, str, float]] = []
        self._liveness_watch = False
        #: Per-container flight-recorder dumps, captured by :meth:`check`
        #: when violations exist — the moments before the failure.
        self.flight_dumps: dict = {}
        #: Attached runtime-verification monitors (``repro.verify``) whose
        #: spec violations :meth:`check` folds into the verdict, with a
        #: per-monitor cursor so repeated checks never double-count.
        self._monitors: List[tuple] = []
        if attach:
            self.attach()

    # -- observation ----------------------------------------------------------
    def attach(self) -> None:
        """Chain onto the transition observer of every installed service."""
        for container_id, container in self._runtime.containers.items():
            for record in container.services():
                self._watch(container_id, record)

    def _watch(self, container_id: str, record: ServiceRecord) -> None:
        previous = record.observer

        def observe(rec: ServiceRecord, old: ServiceState, new: ServiceState) -> None:
            if previous is not None:
                previous(rec, old, new)
            self.transitions.append((container_id, rec.name, old, new))
            if not is_legal_transition(old, new):
                self._violate(
                    f"{container_id}/{rec.name}: illegal transition "
                    f"{old.value} -> {new.value}",
                    container=container_id,
                )
            if rec.escalated and new == ServiceState.RUNNING:
                self._violate(
                    f"{container_id}/{rec.name}: escalated service resurrected",
                    container=container_id,
                )

        record.observer = observe

    def attach_monitor(self, monitor) -> None:
        """Fold a runtime-verification monitor's spec violations into this
        checker's verdict: :meth:`check` finishes the monitor at current
        virtual time and converts every *error*-severity
        :class:`~repro.verify.spec.Violation` into a checker violation
        (attacker attribution included, same as the hand-written checks).
        Accepts a :class:`~repro.verify.FleetMonitor` or a bare
        :class:`~repro.verify.MonitorEngine`."""
        self._monitors.append([monitor, 0])

    def _consume_monitors(self) -> None:
        for entry in self._monitors:
            monitor, cursor = entry
            monitor.finish(self._runtime.sim.now())
            fresh = monitor.violations[cursor:]
            entry[1] = len(monitor.violations)
            for violation in fresh:
                if violation.severity != "error":
                    continue
                self._violate(
                    f"spec {violation.spec} [{violation.key!r}] "
                    f"{violation.reason} at t={violation.time:.6f} "
                    f"on {violation.container}: {violation.message}",
                    container=violation.container,
                )

    def watch_control_liveness(self, interval: float = 0.25) -> None:
        """Start sampling pairwise directory liveness on the virtual clock.

        Call before the campaign runs. Every ``interval`` seconds, each
        running container on an up node is checked against every peer's
        directory; a peer that sees it *dead* (control-plane starvation —
        its heartbeats lost to an attack or overload) is a violation,
        attributed to the dominant attacker in the observer's counters.
        """
        if self._liveness_watch:
            return
        self._liveness_watch = True

        def sample():
            now = self._runtime.sim.now()
            containers = self._runtime.containers
            healthy = {
                cid
                for cid, c in containers.items()
                if c.running and self._runtime.network.attach(c.config.node).up
            }
            for a_id in healthy:
                a = containers[a_id]
                for b_id in healthy:
                    if a_id == b_id:
                        continue
                    record = a.directory.record(b_id)
                    if record is not None and not record.alive:
                        self.false_dead_samples.append((a_id, b_id, now))
            self._runtime.sim.schedule(interval, sample)

        self._runtime.sim.schedule(interval, sample)

    # -- attribution ----------------------------------------------------------
    def _attacker_of(self, container_id: str) -> Tuple[Optional[str], Optional[str]]:
        """Dominant (attacker source id, band) seen by ``container_id``'s
        defenses, judged by drop/abuse/malformed counter volume."""
        container = self._runtime.containers.get(container_id)
        if container is None:
            return None, None
        per_source: dict = {}
        per_band: dict = {}
        for (kind, name, label_set), metric in container.metrics.items():
            if kind != "counter":
                continue
            labels = dict(label_set)
            source = labels.get("source") or labels.get("peer")
            if source is None:
                continue
            if name in ("admission_drops", "malformed_frames", "reliability_abuse"):
                per_source[source] = per_source.get(source, 0) + metric.value
                band = labels.get("band")
                if band is not None:
                    key = (source, band)
                    per_band[key] = per_band.get(key, 0) + metric.value
        if not per_source:
            return None, None
        attacker = max(sorted(per_source), key=lambda s: per_source[s])
        bands = {b: v for (s, b), v in per_band.items() if s == attacker}
        band = max(sorted(bands), key=lambda b: bands[b]) if bands else None
        return attacker, band

    def _violate(self, message: str, container: Optional[str] = None) -> None:
        self.violations.append(message)
        attacker, band = (
            self._attacker_of(container) if container is not None else (None, None)
        )
        self.records.append(
            {
                "message": message,
                "container": container,
                "attacker": attacker,
                "band": band,
            }
        )

    # -- verdicts ------------------------------------------------------------
    def check(self, expect_converged: bool = True) -> List[str]:
        """All post-campaign checks; returns accumulated violations.

        On any violation the flight recorders are dumped into
        :attr:`flight_dumps` (and :meth:`dump_json` renders them) so the
        failure is diagnosable after the fact."""
        self.check_invocations_terminated()
        if expect_converged:
            self.check_directory_converged()
        self.check_escalations_final()
        if self._liveness_watch:
            self.check_control_liveness()
        if self._monitors:
            self._consume_monitors()
        if self.violations:
            self.flight_dumps = {
                container_id: container.recorder.dump()
                for container_id, container in sorted(
                    self._runtime.containers.items()
                )
            }
        return self.violations

    def dump_json(self, indent: int = 2) -> str:
        """Violations plus the captured flight-recorder dumps as JSON."""
        import json

        return json.dumps(
            {"violations": self.violations, "flight_recorders": self.flight_dumps},
            indent=indent,
            default=str,
        )

    def check_invocations_terminated(self) -> List[str]:
        for container_id, container in self._runtime.containers.items():
            pending = container.invocations.pending_calls()
            for handle in pending:
                self._violate(
                    f"{container_id}: invocation {handle.function!r} "
                    f"({handle.call_id}) never terminated",
                    container=container_id,
                )
        return self.violations

    def check_control_liveness(self, tolerated_samples: int = 0) -> List[str]:
        """Judge the liveness samples collected by
        :meth:`watch_control_liveness`: any (observer, victim) pair seen
        falsely dead more than ``tolerated_samples`` times is a control-
        plane starvation violation, attributed to the dominant attacker in
        the *observer's* counters (it is the observer whose ingress lost
        the heartbeats)."""
        pair_counts: dict = {}
        for a_id, b_id, _ in self.false_dead_samples:
            pair_counts[(a_id, b_id)] = pair_counts.get((a_id, b_id), 0) + 1
        for (a_id, b_id), count in sorted(pair_counts.items()):
            if count > tolerated_samples:
                self._violate(
                    f"{a_id} saw {b_id} falsely dead in {count} liveness "
                    f"samples (control-plane starvation)",
                    container=a_id,
                )
        return self.violations

    def check_rpc_p99(self, bound: float) -> List[str]:
        """Fleet-wide RPC p99 latency must stay under ``bound`` seconds —
        the 'bounded tail under attack' contract. Uses each container's
        ``rpc_latency`` histogram; containers that made no calls pass."""
        for container_id, container in sorted(self._runtime.containers.items()):
            values = container.metrics.histogram_values("rpc_latency")
            if not values:
                continue
            ordered = sorted(values)
            p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
            if p99 > bound:
                self._violate(
                    f"{container_id}: rpc p99 {p99:.4f}s exceeds bound "
                    f"{bound:.4f}s",
                    container=container_id,
                )
        return self.violations

    def check_directory_converged(self) -> List[str]:
        """Every running container on an up node must see every other one
        *in its control scope* alive, with its running services listed.

        In a federated fleet a container only holds full records for its
        own zone: cross-zone pairs are exempt from the record check, and
        instead every backbone member (relay/ground) must hold a summary of
        each foreign zone that has a live relay (UAV → relay → ground)."""
        reachable = {
            cid: c
            for cid, c in self._runtime.containers.items()
            if c.running and self._runtime.network.attach(c.config.node).up
        }
        for a_id, a in reachable.items():
            a_zone = a.config.fleet.zone
            for b_id, b in reachable.items():
                if a_id == b_id:
                    continue
                b_zone = b.config.fleet.zone
                if a_zone != b_zone:
                    # Different control groups (zoned vs flat, or different
                    # zones): no full record is ever expected.
                    continue
                record = a.directory.record(b_id)
                if record is None or not record.alive:
                    self._violate(
                        f"directory of {a_id} does not see {b_id} alive after heal",
                        container=a_id,
                    )
                    continue
                running = {r.name for r in b.services() if r.is_running}
                if running - set(record.services):
                    self._violate(
                        f"directory of {a_id} is missing services "
                        f"{sorted(running - set(record.services))} of {b_id}",
                        container=a_id,
                    )
        # Federation: backbone members must know every relayed foreign zone.
        relayed_zones = {
            c.config.fleet.zone
            for c in reachable.values()
            if c.config.fleet.backbone_member
        }
        for a_id, a in reachable.items():
            if not a.config.fleet.backbone_member:
                continue
            for zone in sorted(relayed_zones - {a.config.fleet.zone}):
                if zone not in a.directory.zone_summaries:
                    self._violate(
                        f"backbone member {a_id} holds no summary of zone "
                        f"{zone!r} after heal",
                        container=a_id,
                    )
        return self.violations

    def check_escalations_final(self) -> List[str]:
        for container_id, container in self._runtime.containers.items():
            for record in container.services():
                if record.escalated and record.state != ServiceState.FAILED:
                    self._violate(
                        f"{container_id}/{record.name}: escalated but in state "
                        f"{record.state.value}",
                        container=container_id,
                    )
        return self.violations


__all__ = ["InvariantChecker"]
