"""Fault injection for the failover experiments (E7).

Scripted faults against a :class:`~repro.runtime.SimRuntime`: service
crashes, whole-container/node crashes and link-quality changes, scheduled in
virtual time.
"""

from repro.faults.inject import FaultInjector

__all__ = ["FaultInjector"]
