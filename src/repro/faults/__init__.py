"""Fault injection for the failover experiments (E7) and chaos campaigns.

Scripted faults against a :class:`~repro.runtime.SimRuntime`: service
crashes, whole-container/node crashes and link-quality changes, scheduled
in virtual time (:class:`FaultInjector`); seeded randomized campaigns
composing them (:class:`ChaosCampaign`), with the §3 contracts validated
afterwards by :class:`InvariantChecker`.
"""

from repro.faults.chaos import ChaosCampaign, ChaosProfile
from repro.faults.inject import FaultEvent, FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.personas import (
    AttackerPersona,
    Flooder,
    GarbageFrameInjector,
    MaliciousNacker,
    ReplayInjector,
)

__all__ = [
    "FaultInjector",
    "FaultEvent",
    "ChaosCampaign",
    "ChaosProfile",
    "InvariantChecker",
    "AttackerPersona",
    "Flooder",
    "MaliciousNacker",
    "ReplayInjector",
    "GarbageFrameInjector",
]
