"""Scripted fault injection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.simruntime import SimRuntime
from repro.simnet.models import LinkModel


@dataclass
class FaultEvent:
    """One injected fault, for the experiment log."""

    time: float
    kind: str
    target: str


class FaultInjector:
    """Schedules faults against a simulation runtime.

    All methods take a virtual-time delay and return immediately; the fault
    fires when the simulation reaches that instant. ``log`` records what
    actually fired, for assertions.

    Link faults may overlap (two degradations of the same link, a
    degradation inside a partition window …). The injector keeps one
    *baseline* model per link — captured when the first fault touches it —
    and a count of active faults; a heal only restores the baseline once
    the last overlapping fault has expired, so heals are idempotent and
    overlapping windows cannot clobber each other's restore state.
    """

    def __init__(self, runtime: SimRuntime):
        self._runtime = runtime
        self.log: List[FaultEvent] = []
        # Canonical (min, max) node pair -> number of active link faults.
        self._link_active: Dict[Tuple[str, str], int] = {}
        # Canonical pair -> the pre-fault model to restore on final heal.
        self._link_baseline: Dict[Tuple[str, str], LinkModel] = {}

    # -- service-level faults -----------------------------------------------------
    def crash_service(self, delay: float, container_id: str, service: str) -> None:
        """Make a service fail as if its handler had raised (§3 watching)."""

        def fire():
            container = self._runtime.container(container_id)
            container.service_failed(service, "injected crash")
            self._log("crash_service", f"{container_id}/{service}")

        self._runtime.sim.schedule(delay, fire)

    # -- container/node-level faults --------------------------------------------------
    def crash_container(self, delay: float, container_id: str) -> None:
        """Kill a container without a BYE — peers must detect it by
        heartbeat timeout (the hard failure path)."""

        def fire():
            container = self._runtime.container(container_id)
            node = container.config.node
            # Silence the node: nothing in or out, no clean shutdown.
            self._runtime.network.set_node_up(node, False)
            self._log("crash_container", container_id)

        self._runtime.sim.schedule(delay, fire)

    def stop_container(self, delay: float, container_id: str) -> None:
        """Cleanly stop a container (sends BYE — the fast failure path)."""

        def fire():
            self._runtime.container(container_id).stop()
            self._log("stop_container", container_id)

        self._runtime.sim.schedule(delay, fire)

    def restore_node(self, delay: float, node: str) -> None:
        def fire():
            self._runtime.network.set_node_up(node, True)
            self._log("restore_node", node)

        self._runtime.sim.schedule(delay, fire)

    # -- network-level faults --------------------------------------------------------
    def degrade_link(
        self,
        delay: float,
        src: str,
        dst: str,
        loss: float,
        duration: Optional[float] = None,
    ) -> None:
        """Raise the loss rate of a link, optionally restoring it later."""

        def fire():
            current = self._runtime.network.link_for(src, dst)
            degraded = LinkModel(
                latency=current.latency,
                jitter=current.jitter,
                loss=loss,
                bandwidth_bps=current.bandwidth_bps,
                mtu=current.mtu,
            )
            self._impose_link(src, dst, degraded)
            self._log("degrade_link", f"{src}<->{dst} loss={loss}")
            if duration is not None:
                def restore():
                    if self._release_link(src, dst):
                        self._log("restore_link", f"{src}<->{dst}")
                    else:
                        # Another fault still holds the link degraded; its
                        # heal will restore the baseline.
                        self._log("restore_deferred", f"{src}<->{dst}")

                self._runtime.sim.schedule(duration, restore)

        self._runtime.sim.schedule(delay, fire)

    def flap_link(
        self,
        delay: float,
        src: str,
        dst: str,
        loss: float,
        down: float,
        up: float,
        cycles: int,
    ) -> None:
        """Repeatedly degrade (``down`` seconds) and heal (``up`` seconds)
        a link — the radio-shadow flapping pattern."""
        t = delay
        for _ in range(cycles):
            self.degrade_link(t, src, dst, loss, duration=down)
            t += down + up

    def partition(self, delay: float, side_a: List[str], side_b: List[str],
                  duration: Optional[float] = None) -> None:
        """Split the network: nodes in ``side_a`` cannot reach ``side_b``
        (and vice versa) until ``duration`` passes (or forever).

        Models the §1 scenario of the UAV flying out of radio range of the
        ground segment.
        """

        def fire():
            for a in side_a:
                for b in side_b:
                    current = self._runtime.network.link_for(a, b)
                    dead = LinkModel(
                        latency=current.latency,
                        jitter=current.jitter,
                        loss=1.0,
                        bandwidth_bps=current.bandwidth_bps,
                        mtu=current.mtu,
                    )
                    self._impose_link(a, b, dead)
            self._log("partition", f"{side_a} | {side_b}")
            if duration is not None:
                def heal():
                    for a in side_a:
                        for b in side_b:
                            self._release_link(a, b)
                    self._log("heal", f"{side_a} | {side_b}")

                self._runtime.sim.schedule(duration, heal)

        self._runtime.sim.schedule(delay, fire)

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _impose_link(self, src: str, dst: str, model: LinkModel) -> None:
        key = self._link_key(src, dst)
        if self._link_active.get(key, 0) == 0:
            self._link_baseline[key] = self._runtime.network.link_for(src, dst)
        self._link_active[key] = self._link_active.get(key, 0) + 1
        self._runtime.network.set_link(src, dst, model)

    def _release_link(self, src: str, dst: str) -> bool:
        """Drop one active fault on the link; restore the baseline (and
        return True) only when it was the last one."""
        key = self._link_key(src, dst)
        remaining = self._link_active.get(key, 0) - 1
        if remaining > 0:
            self._link_active[key] = remaining
            return False
        self._link_active.pop(key, None)
        baseline = self._link_baseline.pop(key, None)
        if baseline is not None:
            self._runtime.network.set_link(src, dst, baseline)
        return True

    def _log(self, kind: str, target: str) -> None:
        self.log.append(
            FaultEvent(time=self._runtime.sim.now(), kind=kind, target=target)
        )


__all__ = ["FaultInjector", "FaultEvent"]
