"""Scripted fault injection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.simruntime import SimRuntime
from repro.simnet.models import LinkModel


@dataclass
class FaultEvent:
    """One injected fault, for the experiment log."""

    time: float
    kind: str
    target: str


class FaultInjector:
    """Schedules faults against a simulation runtime.

    All methods take a virtual-time delay and return immediately; the fault
    fires when the simulation reaches that instant. ``log`` records what
    actually fired, for assertions.
    """

    def __init__(self, runtime: SimRuntime):
        self._runtime = runtime
        self.log: List[FaultEvent] = []

    # -- service-level faults -----------------------------------------------------
    def crash_service(self, delay: float, container_id: str, service: str) -> None:
        """Make a service fail as if its handler had raised (§3 watching)."""

        def fire():
            container = self._runtime.container(container_id)
            container.service_failed(service, "injected crash")
            self._log("crash_service", f"{container_id}/{service}")

        self._runtime.sim.schedule(delay, fire)

    # -- container/node-level faults --------------------------------------------------
    def crash_container(self, delay: float, container_id: str) -> None:
        """Kill a container without a BYE — peers must detect it by
        heartbeat timeout (the hard failure path)."""

        def fire():
            container = self._runtime.container(container_id)
            node = container.config.node
            # Silence the node: nothing in or out, no clean shutdown.
            self._runtime.network.set_node_up(node, False)
            self._log("crash_container", container_id)

        self._runtime.sim.schedule(delay, fire)

    def stop_container(self, delay: float, container_id: str) -> None:
        """Cleanly stop a container (sends BYE — the fast failure path)."""

        def fire():
            self._runtime.container(container_id).stop()
            self._log("stop_container", container_id)

        self._runtime.sim.schedule(delay, fire)

    def restore_node(self, delay: float, node: str) -> None:
        def fire():
            self._runtime.network.set_node_up(node, True)
            self._log("restore_node", node)

        self._runtime.sim.schedule(delay, fire)

    # -- network-level faults --------------------------------------------------------
    def degrade_link(
        self,
        delay: float,
        src: str,
        dst: str,
        loss: float,
        duration: Optional[float] = None,
    ) -> None:
        """Raise the loss rate of a link, optionally restoring it later."""

        def fire():
            previous = self._runtime.network.link_for(src, dst)
            degraded = LinkModel(
                latency=previous.latency,
                jitter=previous.jitter,
                loss=loss,
                bandwidth_bps=previous.bandwidth_bps,
                mtu=previous.mtu,
            )
            self._runtime.network.set_link(src, dst, degraded)
            self._log("degrade_link", f"{src}<->{dst} loss={loss}")
            if duration is not None:
                def restore():
                    self._runtime.network.set_link(src, dst, previous)
                    self._log("restore_link", f"{src}<->{dst}")

                self._runtime.sim.schedule(duration, restore)

        self._runtime.sim.schedule(delay, fire)

    def partition(self, delay: float, side_a: List[str], side_b: List[str],
                  duration: Optional[float] = None) -> None:
        """Split the network: nodes in ``side_a`` cannot reach ``side_b``
        (and vice versa) until ``duration`` passes (or forever).

        Models the §1 scenario of the UAV flying out of radio range of the
        ground segment.
        """

        def fire():
            previous = {}
            for a in side_a:
                for b in side_b:
                    previous[(a, b)] = self._runtime.network.link_for(a, b)
                    dead = LinkModel(
                        latency=previous[(a, b)].latency,
                        jitter=previous[(a, b)].jitter,
                        loss=1.0,
                        bandwidth_bps=previous[(a, b)].bandwidth_bps,
                        mtu=previous[(a, b)].mtu,
                    )
                    self._runtime.network.set_link(a, b, dead)
            self._log("partition", f"{side_a} | {side_b}")
            if duration is not None:
                def heal():
                    for (a, b), model in previous.items():
                        self._runtime.network.set_link(a, b, model)
                    self._log("heal", f"{side_a} | {side_b}")

                self._runtime.sim.schedule(duration, heal)

        self._runtime.sim.schedule(delay, fire)

    # -- internals -----------------------------------------------------------
    def _log(self, kind: str, target: str) -> None:
        self.log.append(
            FaultEvent(time=self._runtime.sim.now(), kind=kind, target=target)
        )


__all__ = ["FaultInjector", "FaultEvent"]
