"""Attacker personas: adversarial traffic sources for chaos campaigns.

Where :class:`~repro.faults.inject.FaultInjector` breaks the *network*
(loss, partitions, crashes), a persona breaks the *protocol contract*: it
attaches its own NIC to the simulated LAN — it is not a container, runs no
services and obeys no middleware rules — and speaks just enough of the wire
format to abuse a victim:

- :class:`Flooder` joins the domain politely (forged ANNOUNCE/HEARTBEAT so
  the victim's directory knows its address), then firehoses well-formed
  reliable-channel frames. Every admitted frame costs the victim an ACK on
  the control band plus dispatch work — the amplification the ingress
  token buckets exist to deny.
- :class:`MaliciousNacker` forges NACKs that *claim to come from a
  legitimate peer*, asking the victim to retransmit its in-flight frames.
  One small NACK can trigger a window's worth of retransmissions — the
  NACK budget + exponential penalty exists to cap exactly this.
- :class:`ReplayInjector` re-sends ancient sequence numbers under a
  legitimate peer's identity. An unhardened receiver re-ACKs every
  duplicate; the replay window drops them unacknowledged.
- :class:`GarbageFrameInjector` alternates undecodable byte blobs with
  well-formed frames carrying garbage payloads, exercising every decoder
  rejection path; the quarantine scorer is its counterpart.

Personas are deterministic: all randomness comes from a fork of the
experiment seed, all timing from the virtual clock, so an attack replays
bit-identically. They compose with :class:`~repro.faults.chaos.ChaosCampaign`
via its ``personas`` argument, which draws their attack windows from the
campaign seed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.container.config import CONTAINER_PORT
from repro.container.records import encode_announce, encode_heartbeat
from repro.protocol.frames import Frame, FrameFlags, MessageKind
from repro.protocol.reliability import encode_nack
from repro.runtime.simruntime import SimRuntime
from repro.simnet.addressing import Address
from repro.transport.sim import SimTransport
from repro.util.rng import SeededRng

#: Port the attacker NIC binds — any value distinct from CONTAINER_PORT.
ATTACKER_PORT = 47666


class AttackerPersona:
    """Base: one adversarial traffic source aimed at one victim container.

    Parameters
    ----------
    runtime:
        The experiment under attack.
    target:
        Victim container id; frames are unicast at its node/port.
    identity:
        Source id stamped into (non-spoofed) frames; also the node name the
        attacker NIC attaches under.
    start / duration:
        Attack window in virtual seconds (overridden by a campaign draw
        when scheduled through :class:`~repro.faults.chaos.ChaosCampaign`).
    rate:
        Frames per second, sent in bursts of ``burst`` per tick.
    rng:
        Deterministic stream; defaults to a fork of the experiment seed
        keyed by persona name and target.
    """

    name = "attacker"

    def __init__(
        self,
        runtime: SimRuntime,
        target: str,
        identity: Optional[str] = None,
        start: float = 1.0,
        duration: float = 5.0,
        rate: float = 2000.0,
        burst: int = 8,
        rng: Optional[SeededRng] = None,
    ):
        if burst < 1 or rate <= 0:
            raise ValueError("persona rate/burst must be positive")
        self.runtime = runtime
        self.target = target
        self.identity = identity or f"mal-{self.name}"
        self.start = start
        self.duration = duration
        self.rate = rate
        self.burst = burst
        self.rng = rng or runtime.rng.fork(f"persona:{self.name}:{target}")
        self.frames_sent = 0
        self.bytes_sent = 0
        self._interval = burst / rate
        self._end = 0.0
        self._launched = False
        self._transport = SimTransport(runtime.network, self.identity)
        # Attackers ignore everything sent back at them.
        self._transport.open(ATTACKER_PORT, lambda payload, source: None)

    # -- scheduling ------------------------------------------------------------
    def launch(self) -> None:
        """Arm the attack window on the virtual clock; idempotent."""
        if self._launched:
            return
        self._launched = True
        self._end = self.start + self.duration
        self.runtime.sim.schedule(
            max(0.0, self.start - self.runtime.sim.now()), self._tick
        )

    def _tick(self) -> None:
        if self.runtime.sim.now() >= self._end:
            return
        self.fire()
        self.runtime.sim.schedule(self._interval, self._tick)

    # -- plumbing --------------------------------------------------------------
    @property
    def victim_address(self) -> Address:
        victim = self.runtime.container(self.target)
        return Address(victim.config.node, victim.config.port)

    def emit(self, frame: Frame) -> None:
        payload = frame.encode()
        self._transport.send_bytes(self.victim_address, payload)
        self.frames_sent += 1
        self.bytes_sent += len(payload)

    def emit_raw(self, payload: bytes) -> None:
        self._transport.send_bytes(self.victim_address, payload)
        self.frames_sent += 1
        self.bytes_sent += len(payload)

    def fire(self) -> None:
        """One burst of adversarial traffic; subclasses implement."""
        raise NotImplementedError

    def describe(self) -> str:
        return (
            f"{self.name} -> {self.target} "
            f"[{self.start:.2f}s..{self._end or self.start + self.duration:.2f}s] "
            f"@ {self.rate:.0f}/s"
        )


class Flooder(AttackerPersona):
    """Volumetric flood of well-formed reliable-channel frames.

    Joins the directory first (forged ANNOUNCE, refreshed HEARTBEATs) so
    the victim can route ACKs back — which is precisely the amplification:
    undefended, every flood frame buys one band-0 ACK plus dispatch work.
    """

    name = "flooder"
    #: Directory beacons (announce/heartbeat) refresh this often so the
    #: victim keeps believing the attacker is alive.
    BEACON_INTERVAL = 0.25

    def __init__(self, *args, kind: MessageKind = MessageKind.EVENT, **kwargs):
        super().__init__(*args, **kwargs)
        self.kind = kind
        self._seq = 0
        self._last_beacon = -1.0

    def _beacon_frames(self) -> List[Frame]:
        doc = {
            "container": self.identity,
            "node": self.identity,
            "port": ATTACKER_PORT,
            "incarnation": 1,
            "services": [],
            "failed_services": [],
            "variables": [],
            "events": [],
            "functions": [],
            "files": [],
        }
        hb = {
            "container": self.identity,
            "node": self.identity,
            "port": ATTACKER_PORT,
            "incarnation": 1,
            "load": 0,
            "restarts": 0,
        }
        return [
            Frame(
                kind=MessageKind.ANNOUNCE,
                source=self.identity,
                payload=encode_announce(doc),
            ),
            Frame(
                kind=MessageKind.HEARTBEAT,
                source=self.identity,
                payload=encode_heartbeat(hb),
            ),
        ]

    def fire(self) -> None:
        now = self.runtime.sim.now()
        if now - self._last_beacon >= self.BEACON_INTERVAL:
            self._last_beacon = now
            for frame in self._beacon_frames():
                self.emit(frame)
        from repro.container.links import RELIABLE_CHANNEL

        for _ in range(self.burst):
            self._seq += 1
            self.emit(
                Frame(
                    kind=self.kind,
                    source=self.identity,
                    payload=self.rng.bytes(8),
                    channel=RELIABLE_CHANNEL,
                    seq=self._seq,
                    flags=int(FrameFlags.RELIABLE),
                )
            )


class MaliciousNacker(AttackerPersona):
    """Forged NACKs under a legitimate peer's identity.

    ``spoof`` is the peer whose reliable stream *from the victim* gets
    poked: each NACK asks the victim to retransmit a random slice of its
    in-flight window to that peer. ~20 bytes in, up to a full window of
    retransmissions out — unless the NACK budget slams shut.
    """

    name = "nacker"

    def __init__(self, *args, spoof: str, seq_span: int = 256, **kwargs):
        super().__init__(*args, **kwargs)
        self.spoof = spoof
        self.seq_span = seq_span

    def fire(self) -> None:
        from repro.container.links import RELIABLE_CHANNEL

        for _ in range(self.burst):
            base = self.rng.randint(1, self.seq_span)
            seqs = list(range(base, base + self.rng.randint(4, 16)))
            self.emit(
                Frame(
                    kind=MessageKind.NACK,
                    source=self.spoof,
                    payload=encode_nack(seqs),
                    channel=RELIABLE_CHANNEL,
                )
            )


class ReplayInjector(AttackerPersona):
    """Replays ancient sequence numbers under a legitimate peer's identity.

    Each replayed duplicate makes an unhardened receiver emit a fresh ACK —
    free control-band amplification off a captured frame. The replay window
    (drop without re-ACK) and the duplicate-ACK budget are the defenses.
    """

    name = "replayer"

    def __init__(
        self,
        *args,
        spoof: str,
        kind: MessageKind = MessageKind.EVENT,
        seq_span: int = 64,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.spoof = spoof
        self.kind = kind
        self.seq_span = seq_span

    def fire(self) -> None:
        from repro.container.links import RELIABLE_CHANNEL

        for _ in range(self.burst):
            self.emit(
                Frame(
                    kind=self.kind,
                    source=self.spoof,
                    payload=b"replayed",
                    channel=RELIABLE_CHANNEL,
                    seq=self.rng.randint(1, self.seq_span),
                    flags=int(FrameFlags.RELIABLE) | int(FrameFlags.RETRANSMIT),
                )
            )


class GarbageFrameInjector(AttackerPersona):
    """Hostile bytes: undecodable datagrams and garbage-payload frames.

    Exercises both decode-rejection tiers: datagrams that fail
    ``Frame.decode`` (attributed to the *network address* — the source id
    is unreadable) and well-formed frames whose payload fails the primitive
    decoders (attributed to the forged source id). Both feed quarantine
    scoring; neither may crash ingress.
    """

    name = "garbler"

    def fire(self) -> None:
        for _ in range(self.burst):
            if self.rng.random() < 0.5:
                self.emit_raw(self.rng.bytes(self.rng.randint(1, 64)))
            else:
                kind = self.rng.choice(
                    [
                        MessageKind.ANNOUNCE,
                        MessageKind.HEARTBEAT,
                        MessageKind.VAR_SAMPLE,
                        MessageKind.EVENT,
                        MessageKind.RPC_REQUEST,
                        MessageKind.ACK,
                    ]
                )
                self.emit(
                    Frame(
                        kind=kind,
                        source=self.identity,
                        payload=self.rng.bytes(self.rng.randint(1, 32)),
                    )
                )


PERSONAS = {
    "flooder": Flooder,
    "nacker": MaliciousNacker,
    "replayer": ReplayInjector,
    "garbler": GarbageFrameInjector,
}

__all__ = [
    "AttackerPersona",
    "Flooder",
    "MaliciousNacker",
    "ReplayInjector",
    "GarbageFrameInjector",
    "PERSONAS",
    "ATTACKER_PORT",
]
