"""Seeded chaos campaigns: randomized fault schedules over a SimRuntime.

A :class:`ChaosCampaign` draws a whole fault schedule — service crash
storms, hard container crashes with outages, link flapping and rolling
network partitions — from a :class:`~repro.util.rng.SeededRng`, then plays
it through the scripted :class:`~repro.faults.inject.FaultInjector`
primitives. Every draw derives from the experiment seed, so a campaign is
bit-reproducible: the same seed injects the same faults at the same
virtual instants.

Every injected fault heals (outages end, flaps stop, partitions merge), so
after :meth:`run` returns the domain has had ``settle`` seconds of calm —
the window in which :class:`~repro.faults.invariants.InvariantChecker`
expects the directory to reconverge and supervised services to be healed
or escalated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faults.inject import FaultEvent, FaultInjector
from repro.runtime.simruntime import SimRuntime
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class ChaosProfile:
    """Shape of one campaign: how much of each fault class to draw.

    All times are virtual seconds; pair fields are uniform draw ranges.
    """

    #: Faults fire inside [start, start + duration].
    start: float = 2.0
    duration: float = 20.0

    #: Service crash storms: bursts of injected service failures.
    crash_storms: int = 2
    storm_size: Tuple[int, int] = (1, 3)
    #: Crashes of one storm spread over this many seconds.
    storm_spread: float = 0.3

    #: Hard container crashes (node silenced, no BYE) with a bounded outage.
    container_crashes: int = 1
    outage: Tuple[float, float] = (1.5, 3.0)

    #: Link flapping: repeated degrade/heal cycles on a random node pair.
    link_flaps: int = 2
    flap_loss: float = 1.0
    flap_down: Tuple[float, float] = (0.2, 0.6)
    flap_up: Tuple[float, float] = (0.2, 0.6)
    flap_cycles: Tuple[int, int] = (2, 4)

    #: Rolling partitions: sequential splits of the node set.
    partitions: int = 1
    partition_duration: Tuple[float, float] = (1.5, 3.0)
    partition_gap: Tuple[float, float] = (0.5, 1.5)


class ChaosCampaign:
    """Draws and executes one seeded fault schedule.

    Parameters
    ----------
    runtime:
        The experiment; construct the campaign *after* installing services
        (the schedule targets what is installed at draw time).
    profile:
        Fault mix (:class:`ChaosProfile`).
    rng:
        Override the random stream; defaults to a fork of the runtime's
        experiment seed keyed by ``label``.
    protected:
        Container ids never targeted by crash faults (e.g. the observer
        side of an experiment). Their links still flap and partition —
        those heal by construction.
    personas:
        Attacker personas (:mod:`repro.faults.personas`) to schedule
        alongside the faults. Each persona keeps its own target, rate and
        duration, but its *start* is drawn from the campaign seed inside
        the fault window, so attacks land at reproducible-yet-arbitrary
        phases of the chaos.
    """

    def __init__(
        self,
        runtime: SimRuntime,
        profile: Optional[ChaosProfile] = None,
        rng: Optional[SeededRng] = None,
        label: str = "chaos",
        protected: Sequence[str] = (),
        personas: Sequence[object] = (),
    ):
        self.runtime = runtime
        self.profile = profile or ChaosProfile()
        self.rng = rng if rng is not None else runtime.rng.fork(f"chaos:{label}")
        self.injector = FaultInjector(runtime)
        self.protected = set(protected)
        self.personas = list(personas)
        #: Human-readable drawn schedule (filled by :meth:`schedule`).
        self.plan: List[str] = []
        #: Virtual time by which every drawn fault has healed.
        self.horizon: float = 0.0
        self._scheduled = False

    # -- schedule drawing ------------------------------------------------------
    def schedule(self) -> List[str]:
        """Draw the whole fault schedule; idempotent."""
        if self._scheduled:
            return self.plan
        self._scheduled = True
        p = self.profile
        self.horizon = p.start + p.duration
        self._draw_crash_storms()
        self._draw_container_crashes()
        self._draw_link_flaps()
        self._draw_partitions()
        self._draw_attacks()
        return self.plan

    def _eligible_services(self) -> List[Tuple[str, str]]:
        pairs = []
        for container_id, container in sorted(self.runtime.containers.items()):
            if container_id in self.protected:
                continue
            for record in container.services():
                pairs.append((container_id, record.name))
        return pairs

    def _eligible_containers(self) -> List[str]:
        return sorted(set(self.runtime.containers) - self.protected)

    def _nodes(self) -> List[str]:
        return sorted(
            {c.config.node for c in self.runtime.containers.values()}
        )

    def _window(self) -> float:
        p = self.profile
        return self.rng.uniform(p.start, p.start + p.duration)

    def _draw_crash_storms(self) -> None:
        p = self.profile
        targets = self._eligible_services()
        if not targets:
            return
        for _ in range(p.crash_storms):
            at = self._window()
            size = min(self.rng.randint(*p.storm_size), len(targets))
            victims = self.rng.sample(targets, size)
            for container_id, service in victims:
                offset = self.rng.uniform(0.0, p.storm_spread)
                self.injector.crash_service(at + offset, container_id, service)
                self.plan.append(
                    f"t={at + offset:.2f} crash_service {container_id}/{service}"
                )

    def _draw_container_crashes(self) -> None:
        p = self.profile
        pool = self._eligible_containers()
        if not pool:
            return
        count = min(p.container_crashes, len(pool))
        victims = self.rng.sample(pool, count)
        for container_id in victims:
            at = self._window()
            outage = self.rng.uniform(*p.outage)
            node = self.runtime.container(container_id).config.node
            self.injector.crash_container(at, container_id)
            self.injector.restore_node(at + outage, node)
            self.horizon = max(self.horizon, at + outage)
            self.plan.append(
                f"t={at:.2f} crash_container {container_id} (outage {outage:.2f}s)"
            )

    def _draw_link_flaps(self) -> None:
        p = self.profile
        nodes = self._nodes()
        if len(nodes) < 2:
            return
        for _ in range(p.link_flaps):
            src, dst = self.rng.sample(nodes, 2)
            at = self._window()
            cycles = self.rng.randint(*p.flap_cycles)
            t = at
            for _ in range(cycles):
                down = self.rng.uniform(*p.flap_down)
                up = self.rng.uniform(*p.flap_up)
                self.injector.degrade_link(t, src, dst, p.flap_loss, duration=down)
                t += down + up
            self.horizon = max(self.horizon, t)
            self.plan.append(
                f"t={at:.2f} flap_link {src}<->{dst} x{cycles} until {t:.2f}"
            )

    def _draw_partitions(self) -> None:
        p = self.profile
        nodes = self._nodes()
        if len(nodes) < 2:
            return
        at = self._window()
        for _ in range(p.partitions):
            shuffled = list(nodes)
            self.rng.shuffle(shuffled)
            cut = self.rng.randint(1, len(shuffled) - 1)
            side_a, side_b = shuffled[:cut], shuffled[cut:]
            duration = self.rng.uniform(*p.partition_duration)
            self.injector.partition(at, side_a, side_b, duration=duration)
            self.plan.append(
                f"t={at:.2f} partition {side_a} | {side_b} for {duration:.2f}s"
            )
            self.horizon = max(self.horizon, at + duration)
            # Rolling: the next partition begins after this one heals.
            at += duration + self.rng.uniform(*p.partition_gap)

    def _draw_attacks(self) -> None:
        p = self.profile
        for persona in self.personas:
            # Draw the attack phase, keeping the whole window inside the
            # campaign (so invariants are judged after the attack ends).
            latest = max(p.start, p.start + p.duration - persona.duration)
            persona.start = self.rng.uniform(p.start, latest)
            persona.launch()
            self.horizon = max(self.horizon, persona.start + persona.duration)
            self.plan.append(f"t={persona.start:.2f} attack {persona.describe()}")

    # -- execution ------------------------------------------------------------
    def run(self, settle: float = 6.0) -> List[FaultEvent]:
        """Draw (if needed) and play the campaign, then let the domain
        settle; returns the injector's log of what actually fired."""
        self.schedule()
        target = self.horizon + settle
        remaining = target - self.runtime.sim.now()
        if remaining > 0:
            self.runtime.run_for(remaining)
        return self.injector.log


__all__ = ["ChaosCampaign", "ChaosProfile"]
