"""The deterministic simulation runtime.

One :class:`SimRuntime` is one experiment: a virtual-time kernel, a
simulated LAN and any number of service containers (one per node). Runs are
bit-reproducible for a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.container.config import ContainerConfig
from repro.container.container import ServiceContainer
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Span, build_span_tree
from repro.sim.kernel import Simulator
from repro.simnet.addressing import BACKBONE_ZONE
from repro.simnet.models import LinkModel
from repro.simnet.network import SimNetwork
from repro.transport.frame_transport import FrameTransport
from repro.transport.sim import SimTransport
from repro.util.errors import ConfigurationError
from repro.util.rng import SeededRng


class SimRuntime:
    """Experiment harness: simulator + network + containers.

    Example
    -------
    >>> runtime = SimRuntime(seed=7)
    >>> c1 = runtime.add_container("fcs", node="node-a")
    >>> c2 = runtime.add_container("payload", node="node-b")
    >>> runtime.start()
    >>> runtime.run_for(5.0)  # five virtual seconds
    """

    def __init__(
        self,
        seed: int = 1,
        default_link: Optional[LinkModel] = None,
        supports_multicast: bool = True,
        optimized_network: bool = True,
        zone_isolation: bool = False,
    ):
        self.sim = Simulator()
        self.rng = SeededRng(seed)
        self.network = SimNetwork(
            self.sim,
            self.rng.fork("network"),
            default_link=default_link,
            supports_multicast=supports_multicast,
            optimized=optimized_network,
        )
        if zone_isolation:
            # Radio-range model: multicast only reaches a node's own zones.
            self.network.set_zone_isolation(True)
        self.containers: Dict[str, ServiceContainer] = {}
        #: Fleet-wide runtime-verification monitor, set by
        #: :meth:`enable_verification`.
        self.monitor = None
        self._started = False

    # -- topology ----------------------------------------------------------
    def add_container(
        self,
        container_id: str,
        node: Optional[str] = None,
        config: Optional[ContainerConfig] = None,
        **config_overrides,
    ) -> ServiceContainer:
        """Create a container on ``node`` (defaults to a same-named node)."""
        if container_id in self.containers:
            raise ConfigurationError(f"container {container_id!r} already exists")
        node = node or container_id
        if config is None:
            config = ContainerConfig(
                container_id=container_id, node=node, **config_overrides
            )
        raw = SimTransport(self.network, node)
        transport = FrameTransport(raw, clock=self.sim, source=container_id)
        container = ServiceContainer(
            config=config,
            clock=self.sim,
            timers=self.sim,
            transport=transport,
            # Supervision jitter draws from the experiment seed: runs stay
            # bit-reproducible and containers never back off in lockstep.
            rng=self.rng.fork(f"supervisor:{container_id}"),
        )
        fleet = config.fleet
        if fleet.zone is not None:
            self.network.add_node_to_zone(node, fleet.zone)
        if fleet.backbone_member:
            self.network.add_node_to_zone(node, BACKBONE_ZONE)
        self.containers[container_id] = container
        if self._started:
            container.start()
        return container

    def container(self, container_id: str) -> ServiceContainer:
        return self.containers[container_id]

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        """Start every container (staggered by a tick to avoid lockstep)."""
        self._started = True
        for i, container in enumerate(self.containers.values()):
            # A tiny stagger mirrors real boots and prevents synchronized
            # announce storms from aliasing in the statistics.
            self.sim.schedule(i * 0.001, container.start)

    def stop(self) -> None:
        for container in self.containers.values():
            if container.running:
                container.stop()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_for(self, duration: float) -> float:
        return self.sim.run_for(duration)

    def settle(self, duration: Optional[float] = None) -> float:
        """Run long enough for discovery to converge (a couple of announce
        intervals by default)."""
        if duration is None:
            duration = 2.5 * max(
                c.config.announce_interval for c in self.containers.values()
            )
        return self.run_for(duration)

    def run_until(self, predicate, timeout: float, poll: float = 0.05) -> bool:
        """Advance virtual time until ``predicate()`` is true or ``timeout``
        virtual seconds pass. Returns whether the predicate held."""
        deadline = self.sim.now() + timeout
        while self.sim.now() < deadline:
            if predicate():
                return True
            self.run_for(poll)
        return predicate()

    # -- observability ------------------------------------------------------
    def enable_tracing(self) -> None:
        """Turn on causal tracing in every (current) container."""
        for container in self.containers.values():
            container.tracer.enabled = True

    def enable_payload_sanitizer(
        self, mode: str = "checksum", strict: bool = False
    ) -> None:
        """Arm the payload-aliasing sanitizer in every (current) container.

        ``checksum`` detects post-publish mutation at the next checkpoint;
        ``freeze`` makes local subscribers' copies raise at the mutation
        site. ``strict`` escalates detections to PayloadMutationError.
        """
        for container in self.containers.values():
            container.payload_sanitizer.configure(mode, strict)

    def enable_admission(self, policy=None) -> None:
        """Arm ingress admission control in every (current) container.

        ``policy`` defaults to :data:`~repro.protocol.admission.HARDENED_ADMISSION`
        (rate limits + quarantine + band-weighted ingress scheduling).
        """
        from repro.protocol.admission import HARDENED_ADMISSION

        for container in self.containers.values():
            container.admission.configure(policy or HARDENED_ADMISSION)

    def harden_reliability(self, hardening=None) -> None:
        """Arm the reliability abuse defenses (NACK budgets, ACK-flood
        rejection, replay windows) on every existing and future stream."""
        from repro.protocol.reliability import ReliabilityHardening

        armed = hardening or ReliabilityHardening(enabled=True)
        for container in self.containers.values():
            container.links.set_hardening(armed)

    def enable_verification(self, specs=None, tracing: bool = False):
        """Arm runtime-verification monitors over every current container.

        ``specs`` defaults to :func:`~repro.verify.library.standard_specs`;
        ``tracing=True`` additionally mirrors the span stream into the
        monitors (enable tracing separately). Returns the
        :class:`~repro.verify.FleetMonitor`; read ``monitor.violations``
        after the run, or let an :class:`~repro.faults.invariants.
        InvariantChecker` fold them in via ``attach_monitor``.
        """
        from repro.verify.monitor import FleetMonitor

        self.monitor = FleetMonitor(specs, tracing=tracing)
        self.monitor.attach_runtime(self)
        return self.monitor

    def verification_report(self) -> Optional[Dict[str, object]]:
        """Finish the armed monitor at current virtual time and summarize;
        None when :meth:`enable_verification` was never called."""
        if self.monitor is None:
            return None
        self.monitor.finish(self.sim.now())
        return self.monitor.report()

    def admission_report(self) -> Dict[str, dict]:
        """Per-container admission/defense summary (only non-idle entries):
        admitted/dropped counts and the currently quarantined sources."""
        report: Dict[str, dict] = {}
        for container_id, container in sorted(self.containers.items()):
            admission = container.admission
            quarantined = admission.quarantined_sources()
            if not (admission.admitted or admission.dropped or quarantined):
                continue
            report[container_id] = {
                "admitted": admission.admitted,
                "dropped": admission.dropped,
                "quarantined": quarantined,
            }
        return report

    def sanitizer_violations(self) -> Dict[str, List[dict]]:
        """Payload-sanitizer violations per container (empty when clean)."""
        return {
            container_id: list(container.payload_sanitizer.violations)
            for container_id, container in sorted(self.containers.items())
            if container.payload_sanitizer.violations
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """One fleet-wide metrics dict: every container's registry merged
        under a ``container=<id>`` label plus the network's ``net.*``
        counters. Deterministically ordered."""
        merged = MetricsRegistry()
        self.network.stats.export(merged)
        for container_id in sorted(self.containers):
            merged.absorb(
                self.containers[container_id].metrics, container=container_id
            )
        return merged.snapshot()

    def trace_spans(self) -> List[Span]:
        """Every span recorded by any container, in deterministic order
        (start time, then container, then span id)."""
        spans: List[Span] = []
        for container_id in sorted(self.containers):
            spans.extend(self.containers[container_id].tracer.spans)
        spans.sort(key=lambda s: (s.start, s.container, s.span_id))
        return spans

    def trace_tree(self) -> List[dict]:
        """The cross-container span forest (see
        :func:`~repro.observability.trace.build_span_tree`)."""
        return build_span_tree(self.trace_spans())

    def flight_dumps(self) -> Dict[str, List[dict]]:
        """Every container's flight-recorder contents, keyed by id."""
        return {
            container_id: container.recorder.dump()
            for container_id, container in sorted(self.containers.items())
        }


__all__ = ["SimRuntime"]
