"""A single-threaded reactor for the wall-clock runtime.

The middleware's sans-io state machines are not thread-safe by design (the
simulation runtime is single-threaded). In the threaded runtime, socket
receive threads and expiring timers all *post* work to one reactor thread,
which is the only thread that ever touches container state — the same
serialization discipline, different clock.
"""

from __future__ import annotations

# repro: allow-file[REP002] -- the reactor IS the wall-clock runtime: its
# Clock-protocol `now()` is backed by time.monotonic by definition; sim-path
# code never imports this module.
import heapq
import itertools
import threading
import time
from typing import Callable, List, Optional, Tuple


class _TimerHandle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _Watcher:
    """A parked ``wait_until`` call: predicate + the event its caller waits
    on. Touched only on the reactor thread once registered."""

    __slots__ = ("predicate", "event", "error", "satisfied")

    def __init__(self, predicate: Callable[[], bool], event: threading.Event):
        self.predicate = predicate
        self.event = event
        self.error: Optional[Exception] = None
        self.satisfied = False


class Reactor:
    """Wall-clock event loop: posted thunks + monotonic-time timers.

    Implements the same ``schedule(delay, fn) -> cancellable`` protocol as
    :class:`repro.sim.Simulator`, so containers cannot tell the difference.
    """

    def __init__(self, name: str = "reactor", lock_recorder=None):
        self._queue: List[Tuple[float, int, _TimerHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        lock = threading.Lock()
        if lock_recorder is not None:
            # Lock-order sanitizer: the wrapped lock feeds the acquisition
            # graph; plain threading.Lock otherwise (zero overhead).
            lock = lock_recorder.wrap(lock, f"{name}.queue")
        self._lock = lock
        self._wakeup = threading.Condition(lock)
        self._stopped = False
        self._errors: List[Exception] = []
        #: Parked wait_until calls, re-evaluated after every executed
        #: callback. Reactor-thread-only once registered.
        self._watchers: List[_Watcher] = []
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- Clock protocol ----------------------------------------------------
    def now(self) -> float:
        return time.monotonic()

    # -- timer service --------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> _TimerHandle:
        """Run ``fn`` on the reactor thread after ``delay`` seconds."""
        handle = _TimerHandle()
        when = time.monotonic() + max(0.0, delay)
        with self._wakeup:
            if self._stopped:
                handle.cancelled = True
                return handle
            heapq.heappush(self._queue, (when, next(self._seq), handle, fn))
            self._wakeup.notify()
        return handle

    def post(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the reactor thread as soon as possible."""
        self.schedule(0.0, fn)

    def call_blocking(self, fn: Callable[[], object], timeout: float = 5.0):
        """Run ``fn`` on the reactor thread and wait for its result.

        The bridge for application threads (examples, tests) into the
        reactor's serialization domain. Raises whatever ``fn`` raised.
        """
        done = threading.Event()
        box: dict = {}

        def run():
            try:
                box["result"] = fn()
            except Exception as exc:  # noqa: BLE001 — re-raised in the caller
                box["error"] = exc
            finally:
                done.set()

        self.post(run)
        if not done.wait(timeout):
            raise TimeoutError("reactor call timed out")
        if "error" in box:
            raise box["error"]
        return box.get("result")

    def wait_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Park the calling (application) thread until ``predicate`` —
        always evaluated on the reactor thread — holds, or ``timeout``
        elapses; returns the predicate's final truth either way.

        Wakeup-driven, not polled: the predicate is checked once at
        registration and then again right after every callback the reactor
        executes (container state only changes inside callbacks), so the
        caller wakes within one callback of the state flip instead of at
        the next poll tick.
        """
        satisfied = threading.Event()
        watcher = _Watcher(predicate, satisfied)

        def register() -> None:
            if not self._eval_watcher(watcher):
                self._watchers.append(watcher)

        self.post(register)
        satisfied.wait(timeout)
        if watcher.error is not None:
            raise watcher.error
        if watcher.satisfied:
            return True
        if self._stopped:
            return False

        # Timed out: deregister and take one final authoritative sample on
        # the reactor thread (the predicate may have just turned true).
        def final() -> bool:
            if watcher in self._watchers:
                self._watchers.remove(watcher)
            return bool(predicate())

        return bool(self.call_blocking(final))

    def _eval_watcher(self, watcher: _Watcher) -> bool:
        """Evaluate one watcher on the reactor thread; True = finished
        (satisfied or errored), False = keep parked."""
        try:
            done = bool(watcher.predicate())
        except Exception as exc:  # noqa: BLE001 — re-raised by the waiter
            watcher.error = exc
            watcher.event.set()
            return True
        if done:
            watcher.satisfied = True
            watcher.event.set()
            return True
        return False

    def _check_watchers(self) -> None:
        self._watchers = [w for w in self._watchers if not self._eval_watcher(w)]

    # -- lifecycle ------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        with self._wakeup:
            self._stopped = True
            self._wakeup.notify()
        self._thread.join(timeout)

    @property
    def errors(self) -> List[Exception]:
        """Exceptions raised by posted thunks (kept, never swallowed silently)."""
        return list(self._errors)

    # -- the loop ---------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._stopped:
                    if self._queue:
                        when = self._queue[0][0]
                        wait = when - time.monotonic()
                        if wait <= 0:
                            break
                        self._wakeup.wait(timeout=wait)
                    else:
                        self._wakeup.wait(timeout=0.5)
                if self._stopped:
                    # Wake every parked waiter so no wait_until caller
                    # sleeps out its full timeout against a dead reactor.
                    for watcher in self._watchers:
                        watcher.event.set()
                    self._watchers.clear()
                    return
                _, _, handle, fn = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 — record and keep serving
                self._errors.append(exc)
            if self._watchers:
                self._check_watchers()


__all__ = ["Reactor"]
