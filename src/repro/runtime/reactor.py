"""A single-threaded reactor for the wall-clock runtime.

The middleware's sans-io state machines are not thread-safe by design (the
simulation runtime is single-threaded). In the threaded runtime, socket
receive threads and expiring timers all *post* work to one reactor thread,
which is the only thread that ever touches container state — the same
serialization discipline, different clock.
"""

from __future__ import annotations

# repro: allow-file[REP002] -- the reactor IS the wall-clock runtime: its
# Clock-protocol `now()` is backed by time.monotonic by definition; sim-path
# code never imports this module.
import heapq
import itertools
import threading
import time
from typing import Callable, List, Tuple


class _TimerHandle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Reactor:
    """Wall-clock event loop: posted thunks + monotonic-time timers.

    Implements the same ``schedule(delay, fn) -> cancellable`` protocol as
    :class:`repro.sim.Simulator`, so containers cannot tell the difference.
    """

    def __init__(self, name: str = "reactor", lock_recorder=None):
        self._queue: List[Tuple[float, int, _TimerHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        lock = threading.Lock()
        if lock_recorder is not None:
            # Lock-order sanitizer: the wrapped lock feeds the acquisition
            # graph; plain threading.Lock otherwise (zero overhead).
            lock = lock_recorder.wrap(lock, f"{name}.queue")
        self._lock = lock
        self._wakeup = threading.Condition(lock)
        self._stopped = False
        self._errors: List[Exception] = []
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- Clock protocol ----------------------------------------------------
    def now(self) -> float:
        return time.monotonic()

    # -- timer service --------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> _TimerHandle:
        """Run ``fn`` on the reactor thread after ``delay`` seconds."""
        handle = _TimerHandle()
        when = time.monotonic() + max(0.0, delay)
        with self._wakeup:
            if self._stopped:
                handle.cancelled = True
                return handle
            heapq.heappush(self._queue, (when, next(self._seq), handle, fn))
            self._wakeup.notify()
        return handle

    def post(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the reactor thread as soon as possible."""
        self.schedule(0.0, fn)

    def call_blocking(self, fn: Callable[[], object], timeout: float = 5.0):
        """Run ``fn`` on the reactor thread and wait for its result.

        The bridge for application threads (examples, tests) into the
        reactor's serialization domain. Raises whatever ``fn`` raised.
        """
        done = threading.Event()
        box: dict = {}

        def run():
            try:
                box["result"] = fn()
            except Exception as exc:  # noqa: BLE001 — re-raised in the caller
                box["error"] = exc
            finally:
                done.set()

        self.post(run)
        if not done.wait(timeout):
            raise TimeoutError("reactor call timed out")
        if "error" in box:
            raise box["error"]
        return box.get("result")

    # -- lifecycle ------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        with self._wakeup:
            self._stopped = True
            self._wakeup.notify()
        self._thread.join(timeout)

    @property
    def errors(self) -> List[Exception]:
        """Exceptions raised by posted thunks (kept, never swallowed silently)."""
        return list(self._errors)

    # -- the loop ---------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._stopped:
                    if self._queue:
                        when = self._queue[0][0]
                        wait = when - time.monotonic()
                        if wait <= 0:
                            break
                        self._wakeup.wait(timeout=wait)
                    else:
                        self._wakeup.wait(timeout=0.5)
                if self._stopped:
                    return
                _, _, handle, fn = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 — record and keep serving
                self._errors.append(exc)


__all__ = ["Reactor"]
