"""Runtimes: bind the sans-io middleware to an execution environment.

- :class:`SimRuntime` — deterministic virtual time over the simulated
  network (the default for tests and benchmarks);
- :class:`ThreadedRuntime` — wall-clock threads over real UDP loopback
  sockets (demonstrates the same code on a real transport).
"""

from repro.runtime.simruntime import SimRuntime
from repro.runtime.threaded import ThreadedRuntime

__all__ = ["SimRuntime", "ThreadedRuntime"]
