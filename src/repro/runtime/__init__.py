"""Runtimes: bind the sans-io middleware to an execution environment.

- :class:`SimRuntime` — deterministic virtual time over the simulated
  network (the default for tests and benchmarks);
- :class:`ThreadedRuntime` — wall-clock threads over real UDP loopback
  sockets (demonstrates the same code on a real transport);
- :class:`AsyncRuntime` — wall-clock asyncio loop over batch-I/O UDP
  sockets (the high-throughput data plane; same serialization-domain
  contract as the threaded runtime).
"""

from repro.runtime.async_runtime import AsyncRuntime
from repro.runtime.simruntime import SimRuntime
from repro.runtime.threaded import ThreadedRuntime

__all__ = ["SimRuntime", "ThreadedRuntime", "AsyncRuntime"]
