"""The wall-clock runtime: real threads, real UDP sockets.

The same containers, primitives and services as :class:`SimRuntime`, driven
by a :class:`~repro.runtime.reactor.Reactor` (one serialization thread) with
datagrams moving over loopback UDP sockets. This is the configuration the
paper's C# prototype ran in — minus the embedded boards.
"""

from __future__ import annotations
import time
from typing import Callable, Dict, Optional

from repro.analysis.sanitizers.lockorder import LockOrderRecorder
from repro.container.config import ContainerConfig
from repro.container.container import ServiceContainer
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import FlightRecorder
from repro.runtime.reactor import Reactor
from repro.transport.frame_transport import FrameTransport
from repro.transport.udp import UdpNetwork
from repro.util.errors import ConfigurationError


class ThreadedRuntime:
    """Wall-clock harness: reactor + UDP loopback network + containers."""

    def __init__(self, host: str = "127.0.0.1", lock_sanitizer: bool = False):
        #: Lock-order sanitizer state is runtime-level, not per-container:
        #: lock acquisition order is a property of the whole process.
        self.lock_recorder: Optional[LockOrderRecorder] = (
            LockOrderRecorder() if lock_sanitizer else None
        )
        self.reactor = Reactor(lock_recorder=self.lock_recorder)
        self.recorder = FlightRecorder(clock=self.reactor, capacity=256)
        self.metrics = MetricsRegistry()
        self.network = UdpNetwork(host=host, lock_recorder=self.lock_recorder)
        self.containers: Dict[str, ServiceContainer] = {}
        self._started = False

    # -- topology ----------------------------------------------------------
    def add_container(
        self,
        container_id: str,
        node: Optional[str] = None,
        config: Optional[ContainerConfig] = None,
        **config_overrides,
    ) -> ServiceContainer:
        if container_id in self.containers:
            raise ConfigurationError(f"container {container_id!r} already exists")
        node = node or container_id
        if config is None:
            config = ContainerConfig(
                container_id=container_id, node=node, **config_overrides
            )
        raw = UdpTransportOnReactor(self.network.create_transport(node), self.reactor)
        transport = FrameTransport(raw, clock=self.reactor, source=container_id)
        container = ServiceContainer(
            config=config, clock=self.reactor, timers=self.reactor, transport=transport
        )
        self.containers[container_id] = container
        if self._started:
            self.reactor.call_blocking(container.start)
        return container

    def container(self, container_id: str) -> ServiceContainer:
        return self.containers[container_id]

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        self._started = True
        for container in self.containers.values():
            if not container.running:
                self.reactor.call_blocking(container.start)

    def stop(self) -> None:
        for container in self.containers.values():
            if container.running:
                self.reactor.call_blocking(container.stop)
        self.reactor.stop()
        if self.lock_recorder is not None:
            self.lock_recorder.report_into(self.recorder, self.metrics)

    def lock_inversions(self) -> list:
        """Lock-order inversions observed so far (empty without sanitizer)."""
        if self.lock_recorder is None:
            return []
        return list(self.lock_recorder.inversions)

    def run_for(self, duration: float) -> None:
        """Let the system run for ``duration`` wall seconds."""
        # repro: allow[REP004] -- blocks the *application* thread by
        # contract while the reactor keeps serving; never runs on it.
        time.sleep(duration)

    def run_until(self, predicate: Callable[[], bool], timeout: float, poll: float = 0.02) -> bool:
        """Wait until ``predicate`` (evaluated on the reactor thread) holds.

        Wakeup-driven: the reactor re-checks the predicate after every
        callback it executes and signals a condition the application
        thread parks on — no 20 ms polling round-trips. ``poll`` is kept
        for API compatibility and ignored.
        """
        return self.reactor.wait_until(predicate, timeout)

    def on_reactor(self, fn: Callable[[], object], timeout: float = 5.0):
        """Run ``fn`` inside the serialization domain and return its result.

        All interaction with containers/services from application threads
        must go through here.
        """
        return self.reactor.call_blocking(fn, timeout=timeout)


class UdpTransportOnReactor:
    """Wraps :class:`UdpTransport` so receive callbacks run on the reactor
    thread instead of the socket thread — the serialization boundary."""

    def __init__(self, inner, reactor: Reactor):
        self._inner = inner
        self._reactor = reactor

    @property
    def node(self) -> str:
        return self._inner.node

    @property
    def mtu(self) -> int:
        return self._inner.mtu

    def open(self, port: int, receiver):
        return self._inner.open(
            port,
            lambda payload, source: self._reactor.post(
                lambda: receiver(payload, source)
            ),
        )

    def send_bytes(self, destination, payload: bytes) -> None:
        self._inner.send_bytes(destination, payload)

    def join(self, group) -> None:
        self._inner.join(group)

    def leave(self, group) -> None:
        self._inner.leave(group)

    def close(self) -> None:
        self._inner.close()


__all__ = ["ThreadedRuntime", "UdpTransportOnReactor"]
