"""The event-loop wall-clock runtime: one asyncio loop, batch-I/O sockets.

Same containers, primitives and services as :class:`ThreadedRuntime`, same
API surface (``add_container`` / ``start`` / ``run_for`` / ``run_until`` /
``on_reactor`` / ``stop``), different data plane: instead of one blocking
recv thread per container posting one reactor closure per datagram, every
socket is non-blocking on a single asyncio event loop and ingress arrives
in bursts — one loop callback per socket drain, zero cross-thread posts
(see :mod:`repro.transport.udp_async`). The loop thread *is* the
serialization domain; both wall-clock runtimes honor the same contract
(only one thread ever touches container state).

If `uvloop <https://github.com/MagicStack/uvloop>`_ is importable the loop
is built from it (epoll in C instead of Python selectors); otherwise the
stdlib loop is used. Nothing else changes — the choice is invisible above
the runtime.
"""

from __future__ import annotations

# repro: allow-file[REP002] -- the async harness runs on the machine clock
# by design (same contract as runtime/threaded.py); determinism guarantees
# apply to the sim runtime only.
import asyncio
import concurrent.futures
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.analysis.sanitizers.lockorder import LockOrderRecorder
from repro.container.config import ContainerConfig
from repro.container.container import ServiceContainer
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import FlightRecorder
from repro.transport.frame_transport import FrameTransport
from repro.transport.udp import UdpNetwork
from repro.transport.udp_async import RECV_BURST, AsyncUdpTransport
from repro.util.errors import ConfigurationError


def _new_event_loop(use_uvloop: Optional[bool]):
    """Build the loop: uvloop when requested/available, stdlib otherwise."""
    if use_uvloop is not False:
        try:
            import uvloop  # type: ignore

            return uvloop.new_event_loop(), True
        except ImportError:
            if use_uvloop is True:
                raise ConfigurationError(
                    "use_uvloop=True but uvloop is not installed"
                )
    return asyncio.new_event_loop(), False


class _CrossThreadTimer:
    """Timer handle returned when ``schedule`` is called off the loop
    thread: the real ``call_later`` is armed via the loop's threadsafe
    queue, and ``cancel`` works before or after the arm lands."""

    __slots__ = ("cancelled", "inner")

    def __init__(self):
        self.cancelled = False
        self.inner = None

    def cancel(self) -> None:
        self.cancelled = True
        if self.inner is not None:
            self.inner.cancel()


class LoopDomain:
    """The event-loop serialization domain, speaking the same protocol as
    :class:`~repro.runtime.reactor.Reactor`: ``now()`` (Clock),
    ``schedule(delay, fn) -> cancellable`` (timer service), ``post`` and
    ``call_blocking`` (thread bridges). Containers cannot tell the two
    apart — that is the point."""

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._loop_thread_ident: Optional[int] = None
        self._errors: List[Exception] = []
        loop.set_exception_handler(self._on_loop_exception)

    # -- Clock protocol ----------------------------------------------------
    def now(self) -> float:
        return time.monotonic()

    # -- timer service -----------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]):
        """Run ``fn`` on the loop thread after ``delay`` seconds."""
        delay = max(0.0, delay)
        if threading.get_ident() == self._loop_thread_ident:
            return self._loop.call_later(delay, fn)
        handle = _CrossThreadTimer()

        def arm() -> None:
            if not handle.cancelled:
                handle.inner = self._loop.call_later(delay, fn)

        self._loop.call_soon_threadsafe(arm)
        return handle

    def post(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread as soon as possible."""
        self._loop.call_soon_threadsafe(fn)

    def call_blocking(self, fn: Callable[[], object], timeout: float = 5.0):
        """Run ``fn`` inside the serialization domain and wait for its
        result; raises whatever ``fn`` raised. Called *on* the loop thread
        it degenerates to a direct call (blocking there would deadlock)."""
        if threading.get_ident() == self._loop_thread_ident:
            return fn()
        future: concurrent.futures.Future = concurrent.futures.Future()

        def run() -> None:
            try:
                future.set_result(fn())
            except Exception as exc:  # noqa: BLE001 — re-raised in the caller
                future.set_exception(exc)

        self._loop.call_soon_threadsafe(run)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            raise TimeoutError("loop call timed out") from None

    @property
    def errors(self) -> List[Exception]:
        """Exceptions raised by loop callbacks (kept, never swallowed)."""
        return list(self._errors)

    # -- internals ---------------------------------------------------------
    def _note_thread(self) -> None:
        self._loop_thread_ident = threading.get_ident()

    def _on_loop_exception(self, loop, context) -> None:
        exc = context.get("exception")
        if exc is None:
            exc = RuntimeError(context.get("message", "event loop error"))
        self._errors.append(exc)


class AsyncRuntime:
    """Wall-clock harness: asyncio loop + batch-I/O UDP + containers.

    Drop-in alternative to :class:`ThreadedRuntime` — same methods, same
    wire format, same shared-``UdpNetwork`` registry (the two runtimes can
    even interoperate on one network object). Prefer it for throughput:
    ingress is drained in bursts and egress leaves through scatter/gather
    ``sendmsg`` without datagram joins (see docs/performance.md §6).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        base_port: int = 0,
        lock_sanitizer: bool = False,
        use_uvloop: Optional[bool] = None,
        recv_burst: int = RECV_BURST,
    ):
        self.lock_recorder: Optional[LockOrderRecorder] = (
            LockOrderRecorder() if lock_sanitizer else None
        )
        self._loop, self.uses_uvloop = _new_event_loop(use_uvloop)
        self.reactor = LoopDomain(self._loop)
        self.recorder = FlightRecorder(clock=self.reactor, capacity=256)
        self.metrics = MetricsRegistry()
        self.network = UdpNetwork(
            host=host, base_port=base_port, lock_recorder=self.lock_recorder
        )
        self.containers: Dict[str, ServiceContainer] = {}
        self._recv_burst = recv_burst
        self._started = False
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run_loop, name="async-runtime", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        self.reactor._note_thread()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    # -- topology ----------------------------------------------------------
    def add_container(
        self,
        container_id: str,
        node: Optional[str] = None,
        config: Optional[ContainerConfig] = None,
        **config_overrides,
    ) -> ServiceContainer:
        if container_id in self.containers:
            raise ConfigurationError(f"container {container_id!r} already exists")
        node = node or container_id
        if config is None:
            config = ContainerConfig(
                container_id=container_id, node=node, **config_overrides
            )
        raw = AsyncUdpTransport(
            self.network, node, self._loop, recv_burst=self._recv_burst
        )
        transport = FrameTransport(raw, clock=self.reactor, source=container_id)
        container = ServiceContainer(
            config=config, clock=self.reactor, timers=self.reactor,
            transport=transport,
        )
        self.containers[container_id] = container
        if self._started:
            self.reactor.call_blocking(container.start)
        return container

    def container(self, container_id: str) -> ServiceContainer:
        return self.containers[container_id]

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        self._started = True
        for container in self.containers.values():
            if not container.running:
                self.reactor.call_blocking(container.start)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for container in self.containers.values():
            if container.running:
                self.reactor.call_blocking(container.stop)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if self.lock_recorder is not None:
            self.lock_recorder.report_into(self.recorder, self.metrics)

    def lock_inversions(self) -> list:
        """Lock-order inversions observed so far (empty without sanitizer)."""
        if self.lock_recorder is None:
            return []
        return list(self.lock_recorder.inversions)

    def run_for(self, duration: float) -> None:
        """Let the system run for ``duration`` wall seconds."""
        # repro: allow[REP004] -- blocks the *application* thread by
        # contract while the loop keeps serving; never runs on it.
        time.sleep(duration)

    def run_until(
        self, predicate: Callable[[], bool], timeout: float, poll: float = 0.02
    ) -> bool:
        """Wait until ``predicate`` (evaluated on the loop thread) holds.

        The wait lives entirely on the loop: one coroutine re-checks the
        predicate every ``poll`` seconds of loop time — no cross-thread
        call round-trips while waiting.
        """

        async def waiter() -> bool:
            deadline = self._loop.time() + timeout
            while True:
                if predicate():
                    return True
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    return bool(predicate())
                await asyncio.sleep(min(poll, remaining))

        future = asyncio.run_coroutine_threadsafe(waiter(), self._loop)
        try:
            return bool(future.result(timeout + 5.0))
        except concurrent.futures.TimeoutError:  # pragma: no cover — loop wedged
            future.cancel()
            raise TimeoutError("run_until wait timed out") from None

    def on_reactor(self, fn: Callable[[], object], timeout: float = 5.0):
        """Run ``fn`` inside the serialization domain and return its result.

        All interaction with containers/services from application threads
        must go through here — same contract as :class:`ThreadedRuntime`.
        """
        return self.reactor.call_blocking(fn, timeout=timeout)


__all__ = ["AsyncRuntime", "LoopDomain"]
