"""repro — a reproduction of "A Middleware Architecture for Unmanned
Aircraft Avionics" (López et al., Middleware 2007).

A service-oriented publish/subscribe middleware for UAV mission and payload
control: service containers (one per node) host decoupled services that
communicate through four primitives — variables, events, remote invocation
and multicast file transmission — over a pluggable PEPt stack
(Presentation, Encoding, Protocol, Transport) with a pluggable scheduler.

Quickstart::

    from repro import SimRuntime
    from repro.services import GpsService, GroundStationService
    from repro.flight import survey_plan, KinematicUav, GeoPoint

    runtime = SimRuntime(seed=7)
    plan = survey_plan(GeoPoint(41.275, 1.985))
    fcs = runtime.add_container("fcs")
    ground = runtime.add_container("ground")
    fcs.install_service(GpsService(KinematicUav(plan)))
    ground.install_service(GroundStationService())
    runtime.start()
    runtime.run_for(30.0)
"""

from repro.container import ContainerConfig, RestartPolicy, ServiceContainer
from repro.runtime import AsyncRuntime, SimRuntime, ThreadedRuntime
from repro.services import Service, ServiceContext
from repro.util.errors import (
    ConfigurationError,
    EncodingError,
    MiddlewareError,
    NameResolutionError,
    ProtocolError,
    ResourceError,
    ServiceError,
    TimeoutError_,
    TransportError,
)

__version__ = "1.0.0"

__all__ = [
    "SimRuntime",
    "ThreadedRuntime",
    "AsyncRuntime",
    "ServiceContainer",
    "ContainerConfig",
    "RestartPolicy",
    "Service",
    "ServiceContext",
    "MiddlewareError",
    "ConfigurationError",
    "EncodingError",
    "ProtocolError",
    "TransportError",
    "NameResolutionError",
    "ServiceError",
    "ResourceError",
    "TimeoutError_",
    "__version__",
]
