"""The flight recorder: a bounded ring of recent container activity.

Every container keeps the last ``capacity`` entries — frames sent and
received, service lifecycle transitions, escalations and emergencies — so
that when a chaos campaign trips an invariant the investigator gets the
moments *before* the violation, not just the verdict. Dumps are plain
dicts (JSON-serializable by construction) ordered oldest-first.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List

from repro.util.clock import Clock


class FlightRecorder:
    """Fixed-capacity ring buffer of timestamped entries."""

    def __init__(self, clock: Clock, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        # Entries are stored raw as (t, category, fields) and shaped into
        # dicts at dump time: record() sits on the per-frame tx/rx path, so
        # the steady-state cost is one tuple and one deque append.
        self._entries: Deque[tuple] = deque(maxlen=capacity)
        #: Entries recorded over the whole run (the ring only keeps the tail).
        self.recorded = 0

    def record(self, category: str, **fields: object) -> None:
        self.recorded += 1
        self._entries.append((self._clock.now(), category, fields))

    def dump(self) -> List[Dict[str, object]]:
        """The retained entries, oldest first."""
        return [
            {"t": t, "category": category, **fields}
            for t, category, fields in self._entries
        ]

    def dump_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "capacity": self.capacity,
                "recorded": self.recorded,
                "entries": self.dump(),
            },
            indent=indent,
            default=str,
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = ["FlightRecorder"]
