"""The unified metrics registry.

One labeled counter/gauge/histogram API for everything the middleware
counts: per-primitive counters, supervision tallies
(:class:`~repro.util.stats.Tally` is a prefix-scoped view over a registry),
and network statistics (:meth:`~repro.simnet.stats.NetworkStats.export`
syncs into one at snapshot time). ``snapshot()`` flattens the whole
registry into one deterministic dict, and :meth:`MetricsRegistry.absorb`
merges per-container registries under an added label so a runtime can
present a single fleet-wide view.

Instruments are identity objects: ``registry.counter("x")`` always returns
the same :class:`Counter`, so hot paths may cache the handle and skip the
lookup.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.util.stats import summarize

LabelSet = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, str, LabelSet]  # (instrument kind, name, labels)


class Counter:
    """Monotonic count of occurrences."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, by: int = 1) -> int:
        self.value += by
        return self.value


class Gauge:
    """Last-written value of a level (queue depth, bytes on the wire)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Observed sample series, summarized on snapshot."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def summary(self) -> Dict[str, float]:
        return summarize(self.values)


class MetricsRegistry:
    """Factory and store for labeled instruments."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, object] = {}

    # -- instrument accessors -----------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._instrument("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._instrument("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._instrument("histogram", Histogram, name, labels)

    def _instrument(self, kind: str, factory, name: str, labels: Dict[str, str]):
        key = (kind, name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    # -- reads that never create --------------------------------------------
    def counter_value(self, name: str, **labels: str) -> int:
        metric = self._metrics.get(("counter", name, tuple(sorted(labels.items()))))
        return metric.value if metric is not None else 0

    def gauge_value(self, name: str, **labels: str) -> float:
        metric = self._metrics.get(("gauge", name, tuple(sorted(labels.items()))))
        return metric.value if metric is not None else 0.0

    def histogram_values(self, name: str, **labels: str) -> List[float]:
        metric = self._metrics.get(("histogram", name, tuple(sorted(labels.items()))))
        return list(metric.values) if metric is not None else []

    def items(self) -> Iterator[Tuple[MetricKey, object]]:
        return iter(sorted(self._metrics.items()))

    # -- merging ------------------------------------------------------------
    def absorb(self, other: "MetricsRegistry", **labels: str) -> None:
        """Merge ``other`` into this registry, adding ``labels`` to every
        metric (e.g. ``container="fcs"``). Values accumulate."""
        for (kind, name, label_set), metric in other.items():
            merged = dict(label_set)
            merged.update(labels)
            if kind == "counter":
                self.counter(name, **merged).inc(metric.value)
            elif kind == "gauge":
                self.gauge(name, **merged).set(metric.value)
            else:
                target = self.histogram(name, **merged)
                target.values.extend(metric.values)

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One flat, deterministically ordered dict.

        Keys are ``name`` or ``name{k=v,...}``; counters and gauges map to
        their value, histograms to a :func:`~repro.util.stats.summarize`
        dict.
        """
        out: Dict[str, object] = {}
        for (kind, name, label_set), metric in self.items():
            if label_set:
                rendered = ",".join(f"{k}={v}" for k, v in label_set)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            if kind == "histogram":
                out[key] = metric.summary()
            else:
                out[key] = metric.value
        return out

    def clear(self) -> None:
        self._metrics.clear()

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for kind, _, _ in self._metrics:
            kinds[kind] = kinds.get(kind, 0) + 1
        return f"<MetricsRegistry {kinds!r}>"


__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram"]
