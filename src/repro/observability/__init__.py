"""Observability: causal tracing, unified metrics, flight recording.

The container is the choke point for every message a service sends (§3),
which makes it the natural observation post. This package gives each
container a :class:`Tracer` (cross-container span trees in virtual time), a
:class:`MetricsRegistry` (one labeled counter/gauge/histogram API behind a
single ``snapshot()``) and a :class:`FlightRecorder` (a bounded ring of
recent sends/receives/lifecycle transitions, dumped when invariants break).
"""

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.probes import MonitorEvent, ProbeBus
from repro.observability.recorder import FlightRecorder
from repro.observability.trace import (
    Span,
    SpanListener,
    TraceContext,
    Tracer,
    build_span_tree,
    format_span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FlightRecorder",
    "MonitorEvent",
    "ProbeBus",
    "Span",
    "SpanListener",
    "TraceContext",
    "Tracer",
    "build_span_tree",
    "format_span_tree",
]
