"""The monitor-probe stream: structured primitive-level events.

Spans answer "what caused what"; probes answer "what happened, exactly" at
the points the runtime-verification monitors care about: a variable sample
published or served from cache, an event raised or delivered, an RPC
issued or terminated, a reliable frame dispatched, a file revision
completed. Each probe is one :class:`MonitorEvent` — a flat record cheap
enough to mint on the hot path *when someone is listening*.

Nobody listening is the common case, and it costs one attribute read: every
emit site guards on :attr:`ProbeBus.enabled`, which is True exactly while
at least one subscriber is attached. With the bus idle the data path is
behavior-identical to a build without probes at all (the packet-trace
parity test in ``tests/integration/test_verification.py`` pins this).

Probes are a separate stream from the :class:`~repro.observability.trace.Tracer`
on purpose: tracing changes the wire format (context tails) and allocates
span objects per operation, while probes are wire-inert and only exist
in-process. Monitors consume both — probes for primitive-level temporal
specs, spans for causal attribution (a violation records the ambient trace
context when tracing is on).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.util.clock import Clock


class MonitorEvent:
    """One observed fact on the monitored stream.

    ``kind`` is the probe site ("var.publish", "rpc.done", ...), ``name``
    the primitive name at that site, ``key`` the default correlation key
    (the name unless the site supplies something finer), ``container`` the
    observing container, ``time`` the (virtual) clock reading, ``attrs``
    site-specific details.
    """

    __slots__ = ("kind", "name", "key", "container", "time", "attrs")

    def __init__(
        self,
        kind: str,
        name: str,
        container: str,
        time: float,
        key: object = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.kind = kind
        self.name = name
        self.key = key if key is not None else name
        self.container = container
        self.time = time
        self.attrs = attrs if attrs is not None else {}

    def __repr__(self) -> str:  # debugging/test failure output
        return (
            f"MonitorEvent({self.kind!r}, {self.name!r}, key={self.key!r}, "
            f"container={self.container!r}, t={self.time:.6f}, {self.attrs!r})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "key": self.key,
            "container": self.container,
            "time": self.time,
            "attrs": dict(self.attrs),
        }


ProbeListener = Callable[[MonitorEvent], None]


class ProbeBus:
    """Per-container fan-out point for :class:`MonitorEvent`.

    Emit sites guard on :attr:`enabled` (kept equal to "any listener
    attached") so an idle bus costs one attribute read and no allocation.
    """

    __slots__ = ("container_id", "enabled", "_clock", "_listeners")

    def __init__(self, container_id: str, clock: Clock):
        self.container_id = container_id
        self.enabled = False
        self._clock = clock
        self._listeners: List[ProbeListener] = []

    def subscribe(self, listener: ProbeListener) -> ProbeListener:
        """Attach ``listener`` (called synchronously per event) and arm the
        bus. Returns the listener for symmetric unsubscribe."""
        self._listeners.append(listener)
        self.enabled = True
        return listener

    def unsubscribe(self, listener: ProbeListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)
        self.enabled = bool(self._listeners)

    def emit(
        self,
        kind: str,
        name: str,
        key: object = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Mint one event and hand it to every listener. Call only behind
        an ``enabled`` check — the guard is the hot-path contract."""
        event = MonitorEvent(
            kind, name, self.container_id, self._clock.now(), key=key, attrs=attrs
        )
        for listener in self._listeners:
            listener(event)


__all__ = ["MonitorEvent", "ProbeBus", "ProbeListener"]
