"""Causal tracing across containers.

Every container owns one :class:`Tracer`. When tracing is enabled, the
primitives open a :class:`Span` per publish/call/deliver and the container
propagates the active :class:`TraceContext` through its scheduler, so work
triggered by a remote message (an RPC executing, an event callback firing)
is recorded as a child of the span that caused it — even across containers,
because the context rides the wire as an optional payload tail (see
``primitives/wire.py``).

Ids are minted from per-tracer counters seeded by the container id, so a
seeded simulation produces bit-identical span trees on every run (the
replay-determinism contract from PR 1).

Tracing is **disabled by default**: with ``enabled = False`` every tracer
call is a cheap no-op and wire frames are byte-identical to the untraced
format.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Dict, List, Optional

from repro.util.clock import Clock


@dataclass(frozen=True)
class TraceContext:
    """What crosses the wire: enough to parent the receiver's spans."""

    trace_id: str
    span_id: str

    def to_doc(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_doc(doc: Dict[str, str]) -> "TraceContext":
        return TraceContext(trace_id=doc["trace_id"], span_id=doc["span_id"])


@dataclass
class Span:
    """One timed operation inside a trace (virtual-time stamps)."""

    trace_id: str
    span_id: str
    parent_id: str  # "" for a trace root
    name: str
    kind: str
    container: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "container": self.container,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


#: Span-stream listeners receive ``(span, phase)`` with phase ``"start"``
#: (the span just opened; end is still None) or ``"finish"``.
SpanListener = Callable[[Span, str], None]


class Tracer:
    """Per-container span factory and ambient-context holder.

    The *current* context is whatever span the container is logically
    inside right now; ``ServiceContainer.submit`` captures it when work is
    queued and restores it when the task runs, which is what chains a
    callback's spans to the message that scheduled it.

    External consumers (runtime-verification monitors, exporters) observe
    the span stream through :meth:`subscribe` rather than polling
    ``self.spans`` — the stable hook fires synchronously on span start and
    finish. With tracing disabled no listener ever fires and the disabled
    fast path is untouched (``start_span`` still returns before minting
    anything); the packet-trace parity test pins that a subscribed-but-
    disabled tracer leaves wire traffic byte-identical.
    """

    def __init__(self, container_id: str, clock: Clock, enabled: bool = False):
        self.container_id = container_id
        self.enabled = enabled
        self._clock = clock
        self.spans: List[Span] = []
        self.current: Optional[TraceContext] = None
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._listeners: List[SpanListener] = []

    # -- span-stream subscription -------------------------------------------
    def subscribe(self, listener: SpanListener) -> SpanListener:
        """Attach ``listener`` to the span stream (called synchronously with
        ``(span, "start"|"finish")`` while tracing is enabled). Returns the
        listener for symmetric :meth:`unsubscribe`."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: SpanListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- span lifecycle -----------------------------------------------------
    def start_span(
        self,
        name: str,
        kind: str,
        parent: Optional[TraceContext] = None,
        **attrs: object,
    ) -> Optional[Span]:
        """Open a span (child of ``parent``, else of the current context,
        else a new trace root). Returns None when tracing is disabled."""
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current
        if parent is None:
            trace_id = f"{self.container_id}-t{next(self._trace_ids)}"
            parent_id = ""
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=f"{self.container_id}-s{next(self._span_ids)}",
            parent_id=parent_id,
            name=name,
            kind=kind,
            container=self.container_id,
            start=self._clock.now(),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        if self._listeners:
            for listener in self._listeners:
                listener(span, "start")
        return span

    def finish(self, span: Optional[Span]) -> None:
        if span is not None and span.end is None:
            span.end = self._clock.now()
            if self._listeners:
                for listener in self._listeners:
                    listener(span, "finish")

    @staticmethod
    def context_of(span: Optional[Span]) -> Optional[TraceContext]:
        return span.context() if span is not None else None

    # -- ambient context ----------------------------------------------------
    def activate(self, context: Optional[TraceContext]) -> "ContextManager":
        """Make ``context`` current for the duration; None is a no-op (the
        surrounding context, if any, stays active).

        Returns a shared inert manager for None — the disabled-tracing
        case sits on every publish/deliver hot path, so it must not
        allocate a generator per call.
        """
        if context is None:
            return _NULL_ACTIVATION
        return _Activation(self, context)

    # -- export -------------------------------------------------------------
    def export(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.spans]

    def clear(self) -> None:
        self.spans.clear()


class _Activation:
    """Swap the tracer's ambient context for the duration of a block."""

    __slots__ = ("_tracer", "_context", "_previous")

    def __init__(self, tracer: Tracer, context: TraceContext):
        self._tracer = tracer
        self._context = context
        self._previous = None

    def __enter__(self):
        self._previous = self._tracer.current
        self._tracer.current = self._context
        return None

    def __exit__(self, exc_type, exc, tb):
        self._tracer.current = self._previous
        return False


#: Stateless, so one instance serves every disabled-tracing block.
_NULL_ACTIVATION: ContextManager = nullcontext()


def build_span_tree(spans: List[Span]) -> List[Dict[str, object]]:
    """Reassemble spans (possibly from several tracers) into root trees.

    Each node is the span's ``to_dict()`` plus a ``children`` list; children
    sort by (start, span_id) so trees are deterministic. A span whose parent
    is unknown (e.g. the parent's container was never collected) becomes a
    root — the tree never silently drops spans.
    """
    nodes = {
        span.span_id: {**span.to_dict(), "children": []} for span in spans
    }
    roots = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    def order(node):
        return (node["start"], node["span_id"])
    for node in nodes.values():
        node["children"].sort(key=order)
    roots.sort(key=order)
    return roots


def format_span_tree(roots: List[Dict[str, object]]) -> List[str]:
    """Human-readable indented rendering of :func:`build_span_tree`."""
    lines: List[str] = []

    def visit(node: Dict[str, object], depth: int) -> None:
        duration = (
            f"{(node['end'] - node['start']) * 1e3:.3f} ms"
            if node["end"] is not None
            else "open"
        )
        lines.append(
            f"{'  ' * depth}t={node['start']:.6f} [{node['container']}] "
            f"{node['kind']} {node['name']} ({duration})"
        )
        for child in node["children"]:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return lines


__all__ = [
    "TraceContext",
    "Span",
    "SpanListener",
    "Tracer",
    "build_span_tree",
    "format_span_tree",
]
