"""The discrete-event simulator.

A classic calendar-queue kernel: callbacks are scheduled at absolute virtual
times and executed in (time, insertion-order) order. Ties are broken by
insertion order, which — combined with seeded RNGs everywhere — makes whole
experiments bit-reproducible.

Cancelled timers stay in the heap (removing an arbitrary heap entry is
O(n)), but the kernel tracks the cancelled count so :attr:`Simulator.pending`
is O(1), and compacts the heap in place once cancelled entries outnumber
live ones — long chaos campaigns cancel retransmit timers by the thousands
and must not grow the queue unboundedly.

Fleet-scale missions push O(100k+) in-flight events through this loop, so
the event record is a plain ``__slots__`` class (no dataclass descriptor
machinery on the heap's comparison path) and :meth:`Simulator.run` binds its
hot names once per call instead of once per event.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

#: Never bother compacting queues smaller than this.
_COMPACT_MIN_QUEUE = 64


class _ScheduledEvent:
    """One heap entry. Ordered by (time, seq): seq is the insertion order,
    so same-instant events execute deterministically FIFO."""

    __slots__ = ("time", "seq", "callback", "cancelled", "done")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Set once the event has executed or been dropped from the heap, so
        #: a late cancel() cannot decrement the live-event accounting twice.
        self.done = False

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class TimerHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Simulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if not event.done:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.time


class Simulator:
    """Single-threaded virtual-time event loop.

    Also implements the :class:`repro.util.Clock` protocol, so components can
    be handed the simulator itself as their time source.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: List[_ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._events_executed = 0
        #: Cancelled-but-still-heaped entries; pending = len(queue) - this.
        self._cancelled = 0

    # -- Clock protocol ----------------------------------------------------
    def now(self) -> float:
        return self._now

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = _ScheduledEvent(when, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return TimerHandle(event, self)

    def schedule_fire(self, when: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`TimerHandle` is
        allocated. The network's delivery path schedules hundreds of
        thousands of never-cancelled events per fleet mission; skipping the
        handle object is a measurable win and changes no ordering."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = _ScheduledEvent(when, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)

    def call_soon(self, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at the current time, after already-queued events
        scheduled for this instant."""
        return self.schedule(0.0, callback)

    # -- cancellation accounting -------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN_QUEUE
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (run() may be
        iterating over the same list object)."""
        for event in self._queue:
            if event.cancelled:
                event.done = True
        self._queue[:] = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # -- execution ---------------------------------------------------------
    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending(self) -> int:
        return len(self._queue) - self._cancelled

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                event.done = True
                self._cancelled -= 1
                continue
            event.done = True
            self._now = event.time
            self._events_executed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed. Returns the final virtual time.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue drains earlier, so periodic measurements line up.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    event.done = True
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(queue)
                event.done = True
                self._now = event.time
                self._events_executed += 1
                executed += 1
                event.callback()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` virtual seconds from the current time."""
        return self.run(until=self._now + duration)


__all__ = ["Simulator", "TimerHandle"]
