"""Deterministic discrete-event simulation kernel.

This is the substrate the paper's testbed (a LAN of embedded boards) is
replaced with: a single-threaded virtual-time event loop. All middleware
protocol code is written sans-io against :class:`repro.util.Clock` and timer
callbacks, so the identical logic also runs under the threaded runtime.
"""

from repro.sim.kernel import Simulator, TimerHandle

__all__ = ["Simulator", "TimerHandle"]
