"""Ablation — §4.2/§7: network "reservation of time slots" for events.

The paper's future-work plan is real-time support; §4.2 already names the
mechanism: reserving network time for events. This ablation measures event
latency while a bulk file transfer saturates a slow (2 Mbit/s) uplink,
with and without the container's priority egress shaper.

Expected shape: unshaped, events queue in the NIC behind hundreds of file
chunks (FIFO) and latency explodes; shaped (egress rate just below the
uplink), events overtake the bulk queue inside the container and latency
stays near the unloaded baseline. The transfer still completes — it just
loses the contended microseconds.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import fmt_ms, print_table, run_benchmark, summarize

from repro import Service, SimRuntime
from repro.encoding.types import BYTES, StructType
from repro.simnet.models import LinkModel
from repro.util.rng import SeededRng

UPLINK_BPS = 2_000_000.0  # a radio-modem-class link
SHAPED_RATE = UPLINK_BPS * 0.95
EVENTS = 100
FILE_SIZE = 256 * 1024
SCHEMA = StructType("E", [("data", BYTES)])


class EventSide(Service):
    def __init__(self):
        super().__init__("events")

    def on_start(self):
        self.handle = self.ctx.provide_event("shape.evt", SCHEMA)


class Sink(Service):
    def __init__(self):
        super().__init__("sink")
        self.latencies = []
        self.file_done_at = None

    def on_start(self):
        self.ctx.subscribe_event(
            "shape.evt", lambda v, t: self.latencies.append(self.ctx.now() - t)
        )
        self.ctx.subscribe_file(
            "shape.bulk",
            on_complete=lambda d, r: setattr(self, "file_done_at", self.ctx.now()),
        )


def run_one(egress_rate, with_load: bool, seed=14):
    link = LinkModel(latency=0.002, jitter=0.0, loss=0.0, bandwidth_bps=UPLINK_BPS)
    runtime = SimRuntime(seed=seed, default_link=link)
    kw = dict(egress_rate_bps=egress_rate, file_chunk_interval=0.0005,
              liveness_timeout=5.0, heartbeat_interval=0.5)
    a = runtime.add_container("uav", **kw)
    b = runtime.add_container("ground", **kw)
    source = EventSide()
    sink = Sink()
    a.install_service(source)
    b.install_service(sink)
    runtime.start()
    runtime.run_for(4.0)
    if with_load:
        a.files.publish("shape.bulk", SeededRng(seed).bytes(1024) * (FILE_SIZE // 1024),
                        service="events")
    payload = SeededRng(seed).bytes(32)
    for _ in range(EVENTS):
        source.handle.raise_event({"data": payload})
        runtime.run_for(0.02)
    runtime.run_for(20.0)
    return {
        "latency": summarize(sink.latencies),
        "delivered": len(sink.latencies),
        "file_done": sink.file_done_at is not None,
    }


def run_experiment():
    baseline = run_one(None, with_load=False)
    unshaped = run_one(None, with_load=True)
    shaped = run_one(SHAPED_RATE, with_load=True)
    rows = [
        ["no load (baseline)", fmt_ms(baseline["latency"]["p50"]),
         fmt_ms(baseline["latency"]["p99"]), "-"],
        ["bulk load, unshaped", fmt_ms(unshaped["latency"]["p50"]),
         fmt_ms(unshaped["latency"]["p99"]), "yes" if unshaped["file_done"] else "no"],
        ["bulk load, shaped", fmt_ms(shaped["latency"]["p50"]),
         fmt_ms(shaped["latency"]["p99"]), "yes" if shaped["file_done"] else "no"],
    ]
    print_table(
        "Ablation: event latency under bulk transfer on a 2 Mbit/s uplink",
        ["configuration", "event p50 ms", "event p99 ms", "transfer done"],
        rows,
    )
    return baseline, unshaped, shaped


def test_egress_shaping(benchmark):
    baseline, unshaped, shaped = run_benchmark(benchmark, run_experiment)
    for r in (baseline, unshaped, shaped):
        assert r["delivered"] == EVENTS
    # The bulk transfer completed in both loaded configurations.
    assert unshaped["file_done"] and shaped["file_done"]
    # Unshaped: file chunks ahead of events on the uplink hurt the tail.
    assert unshaped["latency"]["p99"] > baseline["latency"]["p99"] * 2
    # Shaped: the tail returns close to the unloaded baseline.
    assert shaped["latency"]["p99"] < unshaped["latency"]["p99"] / 2
    benchmark.extra_info["event_p99_ms"] = {
        "baseline": baseline["latency"]["p99"] * 1e3,
        "unshaped": unshaped["latency"]["p99"] * 1e3,
        "shaped": shaped["latency"]["p99"] * 1e3,
    }


if __name__ == "__main__":
    run_experiment()
