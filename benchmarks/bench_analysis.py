"""Static-analysis cost — local-only pass vs the interprocedural engine.

The interprocedural layer (call graph + fixpoint dataflow + static
lock-order + schema lockfile) runs on every CI push, so its cost is a tax
on every change. This benchmark measures that tax directly: the full rule
set over ``src/repro`` with the interprocedural pass disabled (per-file
AST walks only) and enabled, wall-clock min-of-reps.

The acceptance gate — interprocedural must stay under **3x** the
local-only pass — is a budget for the whole project-level layer: the call
graph is built once per run and shared by every rule through
``Project.callgraph()``, so blowing the budget means a rule started doing
per-rule quadratic work, not that the tree grew.

Writes ``BENCH_analysis.json``; ``--smoke`` asserts the gate and skips
the JSON (CI).
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, write_bench_json

from repro.analysis import Analyzer

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

FULL_REPS = 5
SMOKE_REPS = 3
MAX_RATIO = 3.0


def run_once(interprocedural: bool) -> dict:
    analyzer = Analyzer(
        SRC_ROOT, interprocedural=interprocedural, baseline=None
    )
    start = time.perf_counter()
    report = analyzer.run()
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "files": report.files_scanned,
        "findings": len(report.findings),
    }


def run_experiment(reps: int) -> dict:
    results = {}
    for mode, interprocedural in (("local", False), ("interprocedural", True)):
        runs = [run_once(interprocedural) for _ in range(reps)]
        best = min(runs, key=lambda r: r["wall_s"])
        results[mode] = best
    results["ratio"] = (
        results["interprocedural"]["wall_s"] / results["local"]["wall_s"]
    )
    return results


def render(results: dict) -> None:
    rows = [
        [
            mode,
            f"{results[mode]['wall_s'] * 1e3:.1f}",
            results[mode]["files"],
            results[mode]["findings"],
        ]
        for mode in ("local", "interprocedural")
    ]
    rows.append(["ratio", f"{results['ratio']:.2f}x", "", ""])
    print_table(
        "analysis cost: local vs interprocedural",
        ["mode", "wall_ms", "files", "findings"],
        rows,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer reps, assert the <%.0fx gate, no JSON (CI)" % MAX_RATIO,
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="skip writing BENCH_analysis.json",
    )
    args = parser.parse_args(argv)

    results = run_experiment(SMOKE_REPS if args.smoke else FULL_REPS)
    render(results)

    if args.smoke:
        if results["ratio"] >= MAX_RATIO:
            print(
                f"\nsmoke FAIL: interprocedural pass is "
                f"{results['ratio']:.2f}x local (budget {MAX_RATIO:.0f}x)"
            )
            return 1
        print(
            f"\nsmoke OK: interprocedural pass is {results['ratio']:.2f}x "
            f"local (budget {MAX_RATIO:.0f}x)"
        )
        return 0

    if not args.no_json:
        write_bench_json("analysis", results)
    return 0


def test_analysis_cost(benchmark):
    results = run_benchmark(benchmark, lambda: run_experiment(1))
    assert results["ratio"] < MAX_RATIO


if __name__ == "__main__":
    sys.exit(main())
