"""Codec microbenchmark: interpreted BinaryCodec vs schema-compiled plans.

Measures encode and decode separately over the real primitive payload
schemas (variables, events, RPC, file transfer, the announce control-plane
message) and a large mostly-fixed-width telemetry struct that exercises the
compiler's run coalescing. Every timed pair is also *checked*: the compiled
codec must produce byte-identical output and decode to equal values, so a
wire-format divergence fails the benchmark run itself (CI runs this with a
tiny iteration count as a smoke test).

Standalone run writes machine-readable results to ``BENCH_codec.json`` at
the repo root; ``--iters N`` / ``REPRO_BENCH_ITERS`` scale the work.
"""

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from exphelpers import print_table, run_benchmark, write_bench_json

from repro.container import records
from repro.encoding.binary import BinaryCodec
from repro.encoding.compiled import CompiledCodec
from repro.encoding.types import (
    FLOAT32,
    FLOAT64,
    STRING,
    UINT8,
    UINT16,
    UINT32,
    StructType,
    VectorType,
)
from repro.primitives import wire

INTERPRETED = BinaryCodec()
COMPILED = CompiledCodec()

#: A realistic vehicle-state snapshot: one string, then a long run of
#: fixed-width fields the compiler coalesces into a single struct call.
TELEMETRY_SCHEMA = StructType(
    "TelemetrySnapshot",
    [
        ("vehicle", STRING),
        ("timestamp", FLOAT64),
        (
            "position",
            StructType(
                "Pos", [("lat", FLOAT64), ("lon", FLOAT64), ("alt", FLOAT64)]
            ),
        ),
        ("attitude", VectorType(FLOAT64, 4)),
        ("velocity", VectorType(FLOAT64, 3)),
        ("gyro", VectorType(FLOAT32, 3)),
        ("accel", VectorType(FLOAT32, 3)),
        ("battery_mv", UINT16),
        ("mode", UINT8),
        ("link_quality", UINT8),
        ("channels", VectorType(UINT16, 16)),
        ("flags", UINT32),
    ],
)

TELEMETRY_DOC = {
    "vehicle": "uav-alpha-1",
    "timestamp": 1234.5625,
    "position": {"lat": 41.275, "lon": 1.985, "alt": 312.5},
    "attitude": [0.7071, 0.0, 0.7071, 0.0],
    "velocity": [12.5, -0.25, 1.125],
    "gyro": [0.5, -0.5, 0.0],
    "accel": [0.0, 0.25, -9.8125],
    "battery_mv": 11100,
    "mode": 2,
    "link_quality": 87,
    "channels": list(range(1000, 1016)),
    "flags": 0x13,
}

#: (label, schema, representative document) — the frames the middleware
#: actually moves, with payload sizes matching the other experiments.
CASES = [
    (
        "VarSample",
        wire.VAR_SAMPLE_SCHEMA,
        {"name": "ahrs.attitude", "timestamp": 12.5, "value": b"z" * 64},
    ),
    (
        "EventMessage",
        wire.EVENT_MESSAGE_SCHEMA,
        {"name": "mission.waypoint_reached", "timestamp": 99.25, "value": b"y" * 32},
    ),
    (
        "RpcRequest",
        wire.RPC_REQUEST_SCHEMA,
        {"call_id": "c1-42", "function": "camera.take_photo", "args": b"x" * 48},
    ),
    (
        "RpcResponse",
        wire.RPC_RESPONSE_SCHEMA,
        {"call_id": "c1-42", "ok": True, "error": "", "result": b"r" * 96},
    ),
    (
        "FileChunk",
        wire.FILE_CHUNK_SCHEMA,
        {
            "name": "imagery/photo-0042.pgm",
            "revision": 3,
            "index": 17,
            "total": 180,
            "data": b"p" * 512,
        },
    ),
    (
        "FileNack",
        wire.FILE_NACK_SCHEMA,
        {
            "name": "imagery/photo-0042.pgm",
            "subscriber": "ground-station",
            "revision": 3,
            "missing": [{"start": 4, "end": 9}, {"start": 40, "end": 41}],
        },
    ),
    (
        "Announce",
        records.ANNOUNCE_SCHEMA,
        {
            "container": "payload-1",
            "node": "10.0.0.7",
            "port": 4500,
            "incarnation": 2,
            "services": ["camera", "videoproc", "storage"],
            "failed_services": [],
            "variables": [
                {
                    "name": "gps.position",
                    "datatype": "struct Pos { float64 lat; float64 lon; }",
                    "validity": 1.0,
                    "period": 0.1,
                }
            ],
            "events": [{"name": "camera.photo_taken", "datatype": "string"}],
            "functions": [
                {"name": "camera.take_photo", "params": ["string"], "result": "bytes"}
            ],
            "files": [
                {
                    "name": "imagery/photo-0042.pgm",
                    "revision": 3,
                    "size": 91125,
                    "chunk_size": 512,
                }
            ],
        },
    ),
    ("TelemetrySnapshot", TELEMETRY_SCHEMA, TELEMETRY_DOC),
]


def _best_of(fn, n, repeats=5):
    """Min-of-repeats wall time for n calls — minima are stable against
    scheduler noise where means are not."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def check_equivalence():
    """Compiled must be byte-identical and value-identical on every case."""
    for label, schema, doc in CASES:
        reference = INTERPRETED.encode(schema, doc)
        compiled = COMPILED.encode(schema, doc)
        if compiled != reference:
            raise AssertionError(
                f"{label}: compiled bytes diverge from interpreted "
                f"({compiled!r} != {reference!r})"
            )
        if COMPILED.decode(schema, reference) != INTERPRETED.decode(schema, reference):
            raise AssertionError(f"{label}: compiled decode diverges")


def run_case(label, schema, doc, iters):
    encoded = INTERPRETED.encode(schema, doc)
    result = {
        "bytes": len(encoded),
        "iters": iters,
        "interp_encode_s": _best_of(lambda: INTERPRETED.encode(schema, doc), iters),
        "compiled_encode_s": _best_of(lambda: COMPILED.encode(schema, doc), iters),
        "interp_decode_s": _best_of(lambda: INTERPRETED.decode(schema, encoded), iters),
        "compiled_decode_s": _best_of(lambda: COMPILED.decode(schema, encoded), iters),
    }
    result["encode_speedup"] = result["interp_encode_s"] / result["compiled_encode_s"]
    result["decode_speedup"] = result["interp_decode_s"] / result["compiled_decode_s"]
    result["roundtrip_speedup"] = (
        result["interp_encode_s"] + result["interp_decode_s"]
    ) / (result["compiled_encode_s"] + result["compiled_decode_s"])
    return result


def run_experiment(iters=20_000, write_json=True):
    check_equivalence()
    per_case = {}
    rows = []
    for label, schema, doc in CASES:
        r = run_case(label, schema, doc, iters)
        per_case[label] = r
        rows.append(
            [
                label,
                r["bytes"],
                f"{r['encode_speedup']:.2f}x",
                f"{r['decode_speedup']:.2f}x",
                f"{r['roundtrip_speedup']:.2f}x",
            ]
        )
    totals = {
        key: sum(r[key] for r in per_case.values())
        for key in (
            "interp_encode_s",
            "compiled_encode_s",
            "interp_decode_s",
            "compiled_decode_s",
        )
    }
    overall = {
        "encode_speedup": totals["interp_encode_s"] / totals["compiled_encode_s"],
        "decode_speedup": totals["interp_decode_s"] / totals["compiled_decode_s"],
        "roundtrip_speedup": (totals["interp_encode_s"] + totals["interp_decode_s"])
        / (totals["compiled_encode_s"] + totals["compiled_decode_s"]),
    }
    rows.append(
        [
            "OVERALL",
            "-",
            f"{overall['encode_speedup']:.2f}x",
            f"{overall['decode_speedup']:.2f}x",
            f"{overall['roundtrip_speedup']:.2f}x",
        ]
    )
    print_table(
        f"Compiled vs interpreted codec ({iters} iterations, min-of-5)",
        ["schema", "bytes", "encode", "decode", "roundtrip"],
        rows,
    )
    payload = {
        "experiment": "codec",
        "iters": iters,
        "cases": per_case,
        "overall": overall,
    }
    if write_json:
        path = write_bench_json("codec", payload)
        print(f"\nwrote {path}")
    return payload


# -- pytest entry points --------------------------------------------------------


def test_compiled_output_identical_to_interpreted():
    check_equivalence()


def test_compiled_codec_speedup(benchmark):
    result = run_benchmark(
        benchmark, lambda: run_experiment(iters=4_000, write_json=False)
    )
    benchmark.extra_info.update(result["overall"])
    # The acceptance bar is >= 2x on the full run (see BENCH_codec.json);
    # assert a conservative floor here so a loaded CI box doesn't flake.
    assert result["overall"]["roundtrip_speedup"] > 1.3


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--iters",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_ITERS", "20000")),
        help="timing iterations per measurement (default 20000)",
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="skip writing BENCH_codec.json (smoke runs)",
    )
    args = parser.parse_args()
    run_experiment(iters=args.iters, write_json=not args.no_json)
