"""Shared machinery for the experiment benchmarks.

Each ``bench_*.py`` file reproduces one experiment from DESIGN.md's index.
Files are runnable standalone (``python benchmarks/bench_x.py`` prints the
full table) and as pytest-benchmark targets (``pytest benchmarks/
--benchmark-only``), where the benchmarked callable runs the experiment's
headline configuration and the table lands in ``extra_info``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import Service
from repro.util.stats import percentile, summarize  # noqa: F401 — re-export

#: Repo root — machine-readable benchmark results land here.
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: Dict[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    One file per benchmark keeps the perf trajectory diffable across PRs;
    keys are sorted so reruns produce byte-stable output for equal numbers.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


class Recorder(Service):
    """A service that records deliveries with virtual receive timestamps."""

    def __init__(self, name: str, setup: Optional[Callable] = None):
        super().__init__(name)
        self._setup = setup
        self.received: List[tuple] = []  # (recv_time, kind, value, sent_time)

    def on_start(self):
        if self._setup is not None:
            self._setup(self)

    def record(self, kind: str, value, sent_time: float):
        self.received.append((self.ctx.now(), kind, value, sent_time))

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        return [
            recv - sent
            for recv, k, _, sent in self.received
            if kind is None or k == kind
        ]


def latencies_of(pairs: Sequence[tuple]) -> List[float]:
    """Per-message latencies from ``(recv_time, sent_time)`` pairs — the
    shape every Recorder-style service accumulates."""
    return [recv - sent for recv, sent in pairs]


def summarize_latencies(pairs: Sequence[tuple]) -> Dict[str, float]:
    """:func:`summarize` over :func:`latencies_of` — the benchmark one-liner."""
    return summarize(latencies_of(pairs))


def spread(counts: Sequence[float]) -> Dict[str, float]:
    """min/mean of a per-subscriber count list (fan-out uniformity)."""
    return {"min": min(counts), "mean": sum(counts) / len(counts)}


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render and print a fixed-width table; returns the rendered text."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.0f}"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def run_benchmark(benchmark, fn: Callable[[], Any]):
    """Run ``fn`` once under pytest-benchmark (experiments are deterministic,
    repeated rounds only repeat identical virtual-time runs)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
